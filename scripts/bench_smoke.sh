#!/usr/bin/env bash
# Wall-clock guardrail for the experiments binary.
#
#   check (default) — if a recorded baseline exists at the repo root,
#       time each smoke target (best of two runs) and fail when any
#       exceeds its recorded wall-clock by more than max_regression_pct.
#       Without a recorded file the check is skipped, not failed, so
#       fresh clones and foreign machines stay green until they record
#       their own baseline.
#   record — re-measure the smoke targets *and* the full `all --jobs 1`
#       run, then rewrite the baseline file. Run on the reference
#       machine after intentional performance changes.
#
# The baseline file defaults to the newest BENCH_PR*.json present
# (BENCH_PR10.json for a fresh record); override with BENCH_BASE=...
set -euo pipefail
cd "$(dirname "$0")/.."

EXP=target/release/experiments
BASE=${BENCH_BASE:-BENCH_PR10.json}
SMOKE_TARGETS=(fig14 fig5 energy adaptive fleet health)
# The federated sweep is sized for the 10M-job acceptance run; smoke
# timing uses a 2M-job stream so best-of-two stays under ~10 s.
FLEET_SMOKE_JOBS=2000000
FLEET_FULL_JOBS=10000000
MAX_REGRESSION_PCT=20

if [ ! -x "$EXP" ]; then
    echo "missing $EXP; run: cargo build --offline --release" >&2
    exit 1
fi

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

# Best-of-two wall time for one target, in ms (two runs smooth over
# one-off scheduler noise; the 20% margin absorbs the rest).
time_target() {
    local t=$1 best="" s e d
    local -a extra=()
    [ "$t" = fleet ] && extra=(--fleet-jobs "$FLEET_SMOKE_JOBS")
    for _ in 1 2; do
        s=$(now_ms)
        "$EXP" "$t" --jobs 1 "${extra[@]}" > /dev/null
        e=$(now_ms)
        d=$(( e - s ))
        if [ -z "$best" ] || [ "$d" -lt "$best" ]; then best=$d; fi
    done
    echo "$best"
}

record() {
    declare -A wall
    for t in "${SMOKE_TARGETS[@]}"; do
        wall[$t]=$(time_target "$t")
        echo "recorded $t: ${wall[$t]} ms"
    done

    # New-feature overhead gate, applied once at record time: fig5 (the
    # shared node-model hot path) must not slow by more than 5% against
    # the previous PR's baseline. The per-run 20% check above stays
    # loose to absorb machine noise; this tighter bar is only asserted
    # on the reference machine where both numbers are comparable.
    # If the machine state drifted since the previous baseline was
    # recorded (container reallocation, thermal state), the stored
    # number is not comparable; re-time the previous PR's binary
    # side-by-side and pass it as BENCH_PREV_FIG5_MS=<ms>.
    local prev prev_fig5
    prev=$(ls BENCH_PR*.json 2>/dev/null | grep -vx "$BASE" | sort -V | tail -1 || true)
    if [ -n "$prev" ]; then
        prev_fig5=${BENCH_PREV_FIG5_MS:-$(sed -n 's/.*"fig5_wall_ms": *\([0-9]*\).*/\1/p' "$prev")}
        if [ -n "$prev_fig5" ]; then
            local limit=$(( prev_fig5 * 105 / 100 ))
            if [ "${wall[fig5]}" -gt "$limit" ]; then
                echo "OVERHEAD: fig5 took ${wall[fig5]} ms vs ${prev_fig5} ms in $prev (limit ${limit} ms = +5%)"
                return 1
            fi
            echo "fig5 overhead vs $prev: ${wall[fig5]} ms vs ${prev_fig5} ms (limit ${limit} ms, +5%)"
        fi
    fi

    local dir full_s full_e full_ms ops ops_per_sec
    dir=$(mktemp -d)
    trap 'rm -rf "$dir"' RETURN
    full_s=$(now_ms)
    "$EXP" all --jobs 1 --metrics "$dir" > /dev/null
    full_e=$(now_ms)
    full_ms=$(( full_e - full_s ))
    # Total simulated memory operations: the sum of every per-run
    # `.ops` counter in the metrics export.
    ops=$(grep '\.ops"' "$dir/all.metrics.jsonl" \
        | sed 's/.*"value"://; s/}//' \
        | awk '{s+=$1} END {print s+0}')
    ops_per_sec=$(( ops * 1000 / full_ms ))
    echo "recorded full run: ${full_ms} ms, ${ops} simulated ops, ${ops_per_sec} ops/s"

    # Federation throughput at acceptance scale: the 10M-job fleet
    # sweep (both placement policies) on a single worker, in jobs/s.
    local fleet_s fleet_e fleet_ms fleet_jps
    fleet_s=$(now_ms)
    "$EXP" fleet --jobs 1 --fleet-jobs "$FLEET_FULL_JOBS" > /dev/null
    fleet_e=$(now_ms)
    fleet_ms=$(( fleet_e - fleet_s ))
    fleet_jps=$(( FLEET_FULL_JOBS * 1000 / fleet_ms ))
    echo "recorded fleet run: ${fleet_ms} ms for ${FLEET_FULL_JOBS} jobs, ${fleet_jps} jobs/s"

    {
        echo '{'
        echo "  \"recorded_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
        echo "  \"host\": \"$(uname -sm)\","
        echo "  \"max_regression_pct\": ${MAX_REGRESSION_PCT},"
        echo '  "smoke": {'
        local first=1
        for t in "${SMOKE_TARGETS[@]}"; do
            [ "$first" = 1 ] || echo ','
            first=0
            printf '    "%s_wall_ms": %d' "$t" "${wall[$t]}"
        done
        echo ''
        echo '  },'
        echo '  "full_run": {'
        echo '    "args": "all --jobs 1",'
        echo "    \"wall_ms\": ${full_ms},"
        echo "    \"simulated_mem_ops\": ${ops},"
        echo "    \"ops_per_sec\": ${ops_per_sec}"
        echo '  },'
        echo '  "fleet_run": {'
        echo "    \"args\": \"fleet --jobs 1 --fleet-jobs ${FLEET_FULL_JOBS}\","
        echo "    \"wall_ms\": ${fleet_ms},"
        echo "    \"jobs\": ${FLEET_FULL_JOBS},"
        echo "    \"jobs_per_sec\": ${fleet_jps}"
        echo '  }'
        echo '}'
    } > "$BASE"
    echo "wrote $BASE"
}

# Simulator throughput across every recorded baseline, oldest first:
# one line per BENCH_PR*.json with its full-run ops/s and the ratio to
# the previous row. Reads only the recorded files — nothing is re-run —
# so the table is a provenance trail, not a measurement. Ratios between
# PRs recorded on different machine states (thermal drift, container
# moves) compare what the files say, no more.
trend_table() {
    local files f ops_s prev=""
    files=$(ls BENCH_PR*.json 2>/dev/null | sort -V || true)
    [ -z "$files" ] && return 0
    echo "ops/s trend across recorded baselines:"
    for f in $files; do
        ops_s=$(sed -n 's/.*"ops_per_sec": *\([0-9]*\).*/\1/p' "$f")
        if [ -z "$ops_s" ]; then
            printf '  %-16s (no full-run ops/s recorded)\n' "$f"
            continue
        fi
        if [ -n "$prev" ] && [ "$prev" -gt 0 ]; then
            printf '  %-16s %10d ops/s  (%s.%02dx vs prev)\n' "$f" "$ops_s" \
                "$(( ops_s / prev ))" "$(( (ops_s * 100 / prev) % 100 ))"
        else
            printf '  %-16s %10d ops/s\n' "$f" "$ops_s"
        fi
        prev=$ops_s
    done
}

check() {
    if [ ! -f "$BASE" ] && [ -z "${BENCH_BASE:-}" ]; then
        # Fall back to the newest recorded baseline of an earlier PR.
        local latest
        latest=$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -1 || true)
        [ -n "$latest" ] && BASE=$latest
    fi
    trend_table
    if [ ! -f "$BASE" ]; then
        echo "no $BASE recorded; skipping bench smoke"
        return 0
    fi
    local pct fail=0 t rec got limit
    pct=$(sed -n 's/.*"max_regression_pct": *\([0-9]*\).*/\1/p' "$BASE")
    pct=${pct:-$MAX_REGRESSION_PCT}
    for t in "${SMOKE_TARGETS[@]}"; do
        rec=$(sed -n 's/.*"'"$t"'_wall_ms": *\([0-9]*\).*/\1/p' "$BASE")
        if [ -z "$rec" ]; then
            echo "$t: no recorded wall-clock; skipping"
            continue
        fi
        got=$(time_target "$t")
        limit=$(( rec * (100 + pct) / 100 ))
        if [ "$got" -gt "$limit" ]; then
            echo "REGRESSION: $t took ${got} ms, recorded ${rec} ms (limit ${limit} ms = +${pct}%)"
            fail=1
        else
            echo "$t: ${got} ms (recorded ${rec} ms, limit ${limit} ms)"
        fi
    done

    # Throughput gate: re-run the full `all --jobs 1` sweep once and
    # hold its ops/s to within max_regression_pct of the newest
    # baseline. One run (not best-of-two) keeps check() affordable;
    # the same tolerance absorbs the extra noise.
    local rec_ops_s dir full_s full_e full_ms ops got_ops_s floor
    rec_ops_s=$(sed -n 's/.*"ops_per_sec": *\([0-9]*\).*/\1/p' "$BASE")
    if [ -n "$rec_ops_s" ] && [ "$rec_ops_s" -gt 0 ]; then
        dir=$(mktemp -d)
        full_s=$(now_ms)
        "$EXP" all --jobs 1 --metrics "$dir" > /dev/null
        full_e=$(now_ms)
        full_ms=$(( full_e - full_s ))
        ops=$(grep '\.ops"' "$dir/all.metrics.jsonl" \
            | sed 's/.*"value"://; s/}//' \
            | awk '{s+=$1} END {print s+0}')
        rm -rf "$dir"
        got_ops_s=$(( ops * 1000 / full_ms ))
        floor=$(( rec_ops_s * (100 - pct) / 100 ))
        if [ "$got_ops_s" -lt "$floor" ]; then
            echo "REGRESSION: full run sustained ${got_ops_s} ops/s, recorded ${rec_ops_s} ops/s (floor ${floor} ops/s = -${pct}%)"
            fail=1
        else
            echo "full run: ${got_ops_s} ops/s (recorded ${rec_ops_s} ops/s, floor ${floor} ops/s)"
        fi
    fi
    return $fail
}

case "${1:-check}" in
    record) record ;;
    check) check ;;
    *) echo "usage: $0 [check|record]" >&2; exit 2 ;;
esac
