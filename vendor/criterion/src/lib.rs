//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use: `Criterion`,
//! `bench_function`, `benchmark_group` (with `sample_size`/`finish`),
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!`
//! macros. Timing is a plain wall-clock loop — no statistics, plots,
//! or CLI parsing — and each benchmark prints one `name: time/iter`
//! line. Good enough to keep benches compiling and to give order-of-
//! magnitude numbers offline.

#![forbid(unsafe_code)]
// Stand-in for an external crate: exempt from first-party lint policy.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Target measurement time per benchmark (after warm-up).
const MEASURE: Duration = Duration::from_millis(200);
const WARMUP: Duration = Duration::from_millis(50);

/// Re-export so `criterion::black_box` works like upstream.
pub use std::hint::black_box;

/// The bench harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named group; ids are prefixed with the group name.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in harness is purely
    /// time-budgeted, so the count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call `iter` with
/// the code under test.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` in a warm-up + measurement loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_end = Instant::now() + WARMUP;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_end {
            black_box(routine());
            warm_iters += 1;
        }
        // Batch so the clock is read ~1k times, not once per iter.
        let batch = (warm_iters / 50).max(1);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < MEASURE {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("{id}: no iterations recorded");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    if ns >= 1_000_000.0 {
        println!("{id}: {:.3} ms/iter ({} iters)", ns / 1e6, b.iters_done);
    } else if ns >= 1_000.0 {
        println!("{id}: {:.3} µs/iter ({} iters)", ns / 1e3, b.iters_done);
    } else {
        println!("{id}: {ns:.1} ns/iter ({} iters)", b.iters_done);
    }
}

/// Collect bench functions into a runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        c.bench_function("smoke_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(black_box(3));
                x
            });
        });
    }

    #[test]
    fn groups_prefix_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    criterion_group!(test_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("macro_smoke", |b| b.iter(|| black_box(2u32.pow(10))));
    }

    #[test]
    fn macro_group_invocable() {
        test_group();
    }
}
