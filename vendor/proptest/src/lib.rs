//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate
//! re-implements the narrow API surface the workspace's property tests
//! use: the `proptest!` / `prop_assert*` / `prop_oneof!` macros, the
//! `Strategy` trait with `prop_map` and `boxed`, range/tuple/`Just`
//! strategies, `any::<T>()`, and the `collection` / `array` helpers.
//!
//! Unlike real proptest there is no shrinking: a failing case reports
//! the generated inputs and panics. Case generation is fully
//! deterministic — the RNG seed is derived from the test's name and
//! the case index — so failures reproduce across runs.

#![forbid(unsafe_code)]
// Stand-in for an external crate: exempt from first-party lint policy.
#![allow(clippy::all)]

pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG handed to strategies. Deterministic per (test, case).
    pub type TestRng = rand::rngs::StdRng;

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner knobs. Only `cases` is consulted.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive `case` until `config.cases` cases have executed.
    /// Rejected cases (`prop_assume!`) are retried with fresh inputs,
    /// up to a bounded number of attempts. Failures panic with the
    /// message assembled by the `proptest!` macro (inputs included).
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut executed: u32 = 0;
        let mut attempt: u64 = 0;
        let max_attempts = config.cases as u64 * 16 + 256;
        while executed < config.cases {
            attempt += 1;
            if attempt > max_attempts {
                panic!(
                    "proptest '{name}': too many rejected cases \
                     ({executed}/{} executed after {attempt} attempts)",
                    config.cases
                );
            }
            let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed (case {executed}):\n{msg}")
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.random_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Copy,
        Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Copy,
        RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_via_standard {
        ($($t:ty),+) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random::<$t>()
                }
            })+
        };
    }

    arbitrary_via_standard!(
        bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64
    );

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::{BTreeMap, HashSet};
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct HashSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut set = HashSet::with_capacity(n);
            // Duplicates shrink the set; retry a bounded number of
            // times to reach the target length.
            for _ in 0..(n * 16 + 64) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.elem.generate(rng));
            }
            set
        }
    }

    /// A `HashSet` of (up to) `size` elements drawn from `elem`.
    pub fn hash_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            let mut map = BTreeMap::new();
            for _ in 0..(n * 16 + 64) {
                if map.len() >= n {
                    break;
                }
                map.insert(self.keys.generate(rng), self.values.generate(rng));
            }
            map
        }
    }

    /// A `BTreeMap` of (up to) `size` entries with keys from `keys`
    /// and values from `values`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            keys,
            values,
            size: size.into(),
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct ArrayStrategy<S, const N: usize> {
        elem: S,
    }

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.elem.generate(rng))
        }
    }

    /// A `[T; 32]` with every element drawn from `elem`.
    pub fn uniform32<S: Strategy>(elem: S) -> ArrayStrategy<S, 32> {
        ArrayStrategy { elem }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { .. }`
/// item expands to a `#[test]` that runs the body over generated
/// inputs. An optional `#![proptest_config(..)]` header sets the case
/// count for every test in the block.
#[macro_export]
macro_rules! proptest {
    (@body $cfg:expr;) => {};
    (@body $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __inputs = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                            ::std::format!("{}\n  inputs: {}", __msg, __inputs),
                        ))
                    }
                    __other => __other,
                }
            });
        }
        $crate::proptest!(@body $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::proptest!(@body $cfg; $($items)*);
    };
    ($($items:tt)*) => {
        $crate::proptest!(@body $crate::test_runner::ProptestConfig::default(); $($items)*);
    };
}

/// Assert a property holds; on failure the case (with its inputs) is
/// reported and the test fails. Usable only inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __left,
                    __right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    __left,
                    __right,
                ),
            ));
        }
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = crate::test_runner::TestRng::seed_from_u64(7);
        let strat = (0u32..10, 5u64..=6, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((5..=6).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn collections_honour_size_ranges() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = crate::test_runner::TestRng::seed_from_u64(11);
        for _ in 0..50 {
            let v = crate::collection::vec(0u8..255, 3..9).generate(&mut rng);
            assert!((3..9).contains(&v.len()), "len {}", v.len());
            let s = crate::collection::hash_set(0u64..1_000_000, 2..40).generate(&mut rng);
            assert!(s.len() <= 39);
            let m = crate::collection::btree_map(0usize..40, 1u8..=255, 1..=8).generate(&mut rng);
            assert!((1..=8).contains(&m.len()));
        }
    }

    #[test]
    fn oneof_reaches_every_arm() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let mut rng = crate::test_runner::TestRng::seed_from_u64(3);
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u32..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            if flag {
                prop_assert_eq!(x, x);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn mapped_and_boxed_strategies(v in crate::collection::vec((0u64..50, any::<u8>()).prop_map(|(a, b)| a + b as u64), 1..20)) {
            prop_assert!(!v.is_empty());
            for x in &v {
                prop_assert!(*x < 50 + 255 + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'failing_property' failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn failing_property(x in 10u32..20) {
                prop_assert!(x < 10, "x was {}", x);
            }
        }
        failing_property();
    }
}
