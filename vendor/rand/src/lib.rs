//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small API subset it actually uses: the
//! [`Rng`] extension trait (`random`, `random_range`, `random_bool`,
//! `fill`), [`SeedableRng`] with `seed_from_u64`, and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, high quality, and fully reproducible
//! across runs and platforms (the simulators' bit-determinism tests
//! rely on that).
//!
//! This is NOT the real `rand` crate; only the surface the Hetero-DMR
//! reproduction calls is implemented.

#![forbid(unsafe_code)]
// Stand-in for an external crate: exempt from first-party lint policy.
#![allow(clippy::all)]

/// The low-level generator interface: raw random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a standard type (`u8`…`u64`,
    /// `usize`, floats in `[0, 1)`, `bool`).
    fn random<T: distr::StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R2>(&mut self, range: R2) -> T
    where
        R2: distr::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against 53-bit uniform; p == 1.0 must always win.
        p >= 1.0 || distr::unit_f64(self.next_u64()) < p
    }

    /// Fills `dest` (a byte slice) with random data.
    fn fill<T: distr::Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it with SplitMix64
    /// (the conventional construction for xoshiro-family seeds).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public for reuse in tests/tools).
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// The next SplitMix64 output.
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let word = |i: usize| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                u64::from_le_bytes(b)
            };
            let mut s = [word(0), word(1), word(2), word(3)];
            if s == [0; 4] {
                // The all-zero state is a fixed point; remix it.
                let mut sm = SplitMix64(0x5EED_5EED_5EED_5EED);
                s = [sm.next(), sm.next(), sm.next(), sm.next()];
            }
            StdRng { s }
        }
    }
}

/// Distribution plumbing behind [`Rng`]'s generic methods.
pub mod distr {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Converts 64 random bits into a uniform `f32` in `[0, 1)`.
    pub fn unit_f32(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Types `Rng::random` can produce.
    pub trait StandardSample: Sized {
        /// A uniformly random value.
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl StandardSample for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl StandardSample for u128 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl StandardSample for i128 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
            u128::sample_standard(rng) as i128
        }
    }

    impl StandardSample for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardSample for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl StandardSample for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            unit_f32(rng.next_u64())
        }
    }

    /// Integer types `Rng::random_range` supports.
    pub trait UniformInt: Copy {
        /// The width of `lo..=hi` minus one, as a `u64` span.
        fn span_inclusive(lo: Self, hi: Self) -> u64;
        /// `lo` advanced by `offset`.
        fn offset_from(lo: Self, offset: u64) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty => $u:ty),*) => {$(
            impl UniformInt for $t {
                fn span_inclusive(lo: $t, hi: $t) -> u64 {
                    (hi as $u).wrapping_sub(lo as $u) as u64
                }
                fn offset_from(lo: $t, offset: u64) -> $t {
                    (lo as $u).wrapping_add(offset as $u) as $t
                }
            }
        )*};
    }

    uniform_int!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    /// Uniform integer in `[0, bound]` (inclusive) without modulo bias,
    /// via widening-multiply rejection (Lemire's method).
    fn below_inclusive<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        if bound == u64::MAX {
            return rng.next_u64();
        }
        let n = bound + 1;
        // Zone of full n-multiples within 2^64.
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = rng.next_u64();
            let (hi, lo) = {
                let wide = u128::from(v) * u128::from(n);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo <= zone {
                return hi;
            }
        }
    }

    /// Ranges `Rng::random_range` accepts.
    pub trait SampleRange<T> {
        /// One uniform sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: UniformInt + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            let span = T::span_inclusive(self.start, self.end) - 1;
            T::offset_from(self.start, below_inclusive(rng, span))
        }
    }

    impl<T: UniformInt + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "cannot sample empty range");
            let span = T::span_inclusive(lo, hi);
            T::offset_from(lo, below_inclusive(rng, span))
        }
    }

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
            // Floating rounding can land exactly on `end`; stay inside.
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "cannot sample empty range");
            lo + unit_f64(rng.next_u64()) * (hi - lo)
        }
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            let v = self.start + unit_f32(rng.next_u64()) * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    /// Buffers `Rng::fill` can populate.
    pub trait Fill {
        /// Overwrites `self` with random data.
        fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl Fill for [u8] {
        fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            rng.fill_bytes(self);
        }
    }

    impl<const N: usize> Fill for [u8; N] {
        fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            rng.fill_bytes(self);
        }
    }
}

// Re-exports matching the real crate's module layout closely enough
// for the workspace's `use` statements.
pub use distr::{Fill, SampleRange, StandardSample};

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = rng.random_range(5..=7);
            assert!((5..=7).contains(&w));
            let x: usize = rng.random_range(0..1);
            assert_eq!(x, 0);
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let s: i64 = rng.random_range(-50..=-40);
            assert!((-50..=-40).contains(&s));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "coverage {seen:?}");
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn fill_bytes_covers_remainders() {
        let mut rng = StdRng::seed_from_u64(5);
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let mut buf = vec![0u8; len];
            rng.fill(&mut buf[..]);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} stayed zero");
            }
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn takes_dynish<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(6);
        let v = takes_dynish(&mut rng);
        assert!(v < 100);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }
}
