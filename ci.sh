#!/usr/bin/env bash
# Offline CI gate: release build, full test suite, formatting, lints,
# and bench compilation. Everything runs with --offline — the vendored
# stand-in crates under vendor/ are the only dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --offline --workspace --release

echo "== test =="
cargo test --offline --workspace -q

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
# The vendored stand-ins mimic external crate APIs and are exempt from
# first-party lint standards.
# `-D deprecated` keeps the run/run_metered/run_traced shims
# compile-warn only: first-party code must stay on the builder API.
cargo clippy --offline --workspace \
    --exclude rand --exclude proptest --exclude criterion \
    --all-targets -- -D warnings -D deprecated

echo "== benches compile =="
cargo bench --offline --workspace --no-run

echo "== windowed differential (cursor API partition invariance) =="
# Splitting a node run into windows must be byte-identical to the
# single-shot run — SimResult and telemetry both. Runs the node-level
# window suite explicitly so a cursor regression names itself here
# rather than hiding inside the full test sweep above.
cargo test --offline -q -p memsim --test differential windowed -- --nocapture

echo "== batched stepping gate (controller vs frozen reference) =="
# The indexed controller must sustain at least the naive reference's
# ops/s on an identical op sequence (asserts >= 1x internally).
cargo bench --offline -p hdmr-bench --bench stepping

echo "== bench smoke (wall-clock guardrail) =="
# Fails when a smoke target regresses >20% against the newest recorded
# BENCH_PR*.json baseline; skips silently when none is recorded.
./scripts/bench_smoke.sh check

echo "== jobs-invariance (parallel vs serial experiments) =="
# The full evaluation under the parallel runner must produce
# byte-identical stdout and metrics to a serial run.
EXP=target/release/experiments
DET_DIR=$(mktemp -d)
trap 'rm -rf "$DET_DIR"' EXIT
t0=$SECONDS
"$EXP" all --quick --ops 1200 --jobs "$(nproc)" \
    --metrics "$DET_DIR/par" > "$DET_DIR/par.out"
t_par=$((SECONDS - t0))
t0=$SECONDS
"$EXP" all --quick --ops 1200 --jobs 1 \
    --metrics "$DET_DIR/ser" > "$DET_DIR/ser.out"
t_ser=$((SECONDS - t0))
# The stdout summary line embeds the metrics path; normalize it.
sed -i "s|$DET_DIR/par|METRICS|" "$DET_DIR/par.out"
sed -i "s|$DET_DIR/ser|METRICS|" "$DET_DIR/ser.out"
diff -u "$DET_DIR/ser.out" "$DET_DIR/par.out"
diff -u "$DET_DIR/ser/all.metrics.jsonl" "$DET_DIR/par/all.metrics.jsonl"
echo "wall-clock: --jobs $(nproc) ran in ${t_par}s, --jobs 1 in ${t_ser}s"

echo "== windows-invariance (windowed vs unwindowed experiments) =="
# --windows batches the hot loop's telemetry flushes; stdout and the
# metrics export must be byte-identical to the unwindowed serial run.
"$EXP" all --quick --ops 1200 --jobs 1 --windows 7 \
    --metrics "$DET_DIR/win" > "$DET_DIR/win.out"
sed -i "s|$DET_DIR/win|METRICS|" "$DET_DIR/win.out"
diff -u "$DET_DIR/ser.out" "$DET_DIR/win.out"
diff -u "$DET_DIR/ser/all.metrics.jsonl" "$DET_DIR/win/all.metrics.jsonl"

echo "== trace + drift report smoke =="
# A traced single-target run must be byte-identical across --jobs
# (the 'all' sweep is excluded: its shared model cache makes which
# target pays each simulation schedule-dependent), the Chrome trace
# must parse and nest, and the drift report must come back clean
# against the reference figures in results/.
"$EXP" fig5 --quick --metrics "$DET_DIR/rep" --trace "$DET_DIR/rep" \
    > /dev/null
"$EXP" fig5 --quick --jobs 1 --trace "$DET_DIR/rep1" > /dev/null
diff -u "$DET_DIR/rep1/fig5.trace.json" "$DET_DIR/rep/fig5.trace.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
    "$DET_DIR/rep/fig5.trace.json"
"$EXP" report "$DET_DIR/rep" --out "$DET_DIR/rep/report.md"
grep -q "## Paper drift" "$DET_DIR/rep/report.md"

echo "== power/energy smoke =="
# The residency-model targets must run, their report must render the
# Power/energy section, and the drift table must stay clean (the new
# summary gauges add no reference comparisons).
"$EXP" energy --quick --metrics "$DET_DIR/energy" > /dev/null
"$EXP" report "$DET_DIR/energy" --out "$DET_DIR/energy/report.md"
grep -q "## Power/energy" "$DET_DIR/energy/report.md"
grep -q "0 breach(es)" "$DET_DIR/energy/report.md"
"$EXP" configurator --quick > "$DET_DIR/configurator.out"
grep -q "meet all requirements" "$DET_DIR/configurator.out"

echo "== fleet federation smoke =="
# The federated sweep must report both placement policies on a reduced
# stream, render its report section, and stay drift-clean. Full scale
# (10M jobs) is covered by the bench record, not the CI gate.
"$EXP" fleet --quick --fleet-jobs 200000 --metrics "$DET_DIR/fleet" \
    > "$DET_DIR/fleet.out"
grep -q "placement capacity_weighted:" "$DET_DIR/fleet.out"
grep -q "placement margin_aware:" "$DET_DIR/fleet.out"
grep -q "margin-aware over capacity-weighted placement" "$DET_DIR/fleet.out"
"$EXP" report "$DET_DIR/fleet" --out "$DET_DIR/fleet/report.md"
grep -q "## Fleet federation" "$DET_DIR/fleet/report.md"
grep -q "0 breach(es)" "$DET_DIR/fleet/report.md"

echo "== adaptive governor smoke =="
# The closed-loop ablation must run (its internal asserts cover the
# safety envelope and the UE headline), its report section must render,
# and the drift table must stay clean.
"$EXP" adaptive --quick --metrics "$DET_DIR/adaptive" > "$DET_DIR/adaptive.out"
grep -q "0 envelope violations" "$DET_DIR/adaptive.out"
"$EXP" report "$DET_DIR/adaptive" --out "$DET_DIR/adaptive/report.md"
grep -q "## Adaptive margin" "$DET_DIR/adaptive/report.md"
grep -q "0 breach(es)" "$DET_DIR/adaptive/report.md"

echo "== health plane smoke =="
# The streaming health plane: the run must open incidents and print the
# CUSUM-leads-retreat headline (the target's internal assert enforces a
# lead of >= 1 epoch), the series and incident exports must be
# byte-identical between the parallel and serial runs, the report must
# render the Health section, and the drift table must stay clean.
"$EXP" health --quick --metrics "$DET_DIR/health" \
    --series "$DET_DIR/health" > "$DET_DIR/health.out"
grep -q "incident ledger" "$DET_DIR/health.out"
grep -q "before the governor's UE retreat" "$DET_DIR/health.out"
test -s "$DET_DIR/health/health.incidents.jsonl"
"$EXP" health --quick --jobs 1 --series "$DET_DIR/health1" > /dev/null
diff -u "$DET_DIR/health1/health.series.jsonl" "$DET_DIR/health/health.series.jsonl"
diff -u "$DET_DIR/health1/health.incidents.jsonl" \
    "$DET_DIR/health/health.incidents.jsonl"
"$EXP" report "$DET_DIR/health" --out "$DET_DIR/health/report.md"
grep -q "## Health" "$DET_DIR/health/report.md"
grep -q "0 breach(es)" "$DET_DIR/health/report.md"

echo "CI OK"
