#!/usr/bin/env bash
# Offline CI gate: release build, full test suite, formatting, lints,
# and bench compilation. Everything runs with --offline — the vendored
# stand-in crates under vendor/ are the only dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --offline --workspace --release

echo "== test =="
cargo test --offline --workspace -q

echo "== fmt =="
cargo fmt --all -- --check

echo "== clippy =="
# The vendored stand-ins mimic external crate APIs and are exempt from
# first-party lint standards.
cargo clippy --offline --workspace \
    --exclude rand --exclude proptest --exclude criterion \
    --all-targets -- -D warnings

echo "== benches compile =="
cargo bench --offline --workspace --no-run

echo "CI OK"
