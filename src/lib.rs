//! # hetero-dmr-repro
//!
//! A full reproduction of *"Quantifying Server Memory Frequency Margin
//! and Using It to Improve Performance in HPC Systems"* (ISCA 2021):
//! the frequency-margin characterization study, the Hetero-DMR
//! architecture, and every substrate they need, in pure Rust.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`dram`] — DDR4 device/timing/channel substrate (frequency
//!   transitions, self-refresh, broadcast writes),
//! * [`ecc`] — GF(2⁸) Reed-Solomon, Bamboo-style block codec,
//!   detection-only decode, error injection, SDC budget math,
//! * [`margin`] — the 119-module characterization study as a
//!   statistical model (populations, stress tests, error rates),
//! * [`memsim`] — the gem5/Ramulator stand-in: caches, prefetchers,
//!   FR-FCFS controllers, multi-core node simulation,
//! * [`hetero_dmr`] — the paper's contribution: replication,
//!   heterogeneous read/write modes, recovery protocol, epoch
//!   governor, Monte Carlo margin variability, the design zoo and the
//!   node-level evaluation engine,
//! * [`workloads`] — six HPC benchmark-suite trace models and the
//!   LANL memory-utilization model,
//! * [`scheduler`] — the Grizzly-scale cluster simulator with the
//!   margin-aware job scheduler,
//! * [`energy`] — the CPU+DRAM energy-per-instruction model.
//!
//! # Quickstart
//!
//! ```
//! use hetero_dmr_repro::hetero_dmr::protocol::HeteroDmrChannel;
//! use hetero_dmr_repro::ecc::ErrorModel;
//! use rand::SeedableRng;
//!
//! // A channel with two 1-GiB-of-blocks modules, 25% utilized:
//! let mut channel = HeteroDmrChannel::new(1 << 24);
//! let t = channel.set_used_blocks(1 << 22, 0);
//!
//! // Reads are served unsafely fast; a corrupted copy is detected and
//! // recovered from the always-in-spec original, transparently.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (data, outcome, _t) = channel
//!     .read(42, t, Some((&mut rng, ErrorModel::FullBlock)))
//!     .unwrap();
//! assert_eq!(data, [0u8; 64]); // never written → zeros, despite the error
//! assert_eq!(outcome, hetero_dmr_repro::hetero_dmr::ReadOutcome::Recovered);
//! ```

pub use dram;
pub use ecc;
pub use energy;
pub use hetero_dmr;
pub use margin;
pub use memsim;
pub use scheduler;
pub use workloads;
