//! # hetero-dmr-repro
//!
//! A full reproduction of *"Quantifying Server Memory Frequency Margin
//! and Using It to Improve Performance in HPC Systems"* (ISCA 2021):
//! the frequency-margin characterization study, the Hetero-DMR
//! architecture, and every substrate they need, in pure Rust.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`dram`] — DDR4 device/timing/channel substrate (frequency
//!   transitions, self-refresh, broadcast writes),
//! * [`ecc`] — GF(2⁸) Reed-Solomon, Bamboo-style block codec,
//!   detection-only decode, error injection, SDC budget math,
//! * [`margin`] — the 119-module characterization study as a
//!   statistical model (populations, stress tests, error rates),
//! * [`memsim`] — the gem5/Ramulator stand-in: caches, prefetchers,
//!   FR-FCFS controllers, multi-core node simulation,
//! * [`hetero_dmr`] — the paper's contribution: replication,
//!   heterogeneous read/write modes, recovery protocol, epoch
//!   governor, Monte Carlo margin variability, the design zoo and the
//!   node-level evaluation engine,
//! * [`workloads`] — six HPC benchmark-suite trace models and the
//!   LANL memory-utilization model,
//! * [`scheduler`] — the Grizzly-scale cluster simulator with the
//!   margin-aware job scheduler,
//! * [`energy`] — the CPU+DRAM energy-per-instruction model,
//! * [`runner`] — the deterministic parallel experiment engine
//!   (counter-based RNG streams, fixed-size worker pool, per-task
//!   panic isolation),
//! * [`telemetry`] — counters/gauges/histograms, mergeable snapshots,
//!   JSONL export and run manifests.
//!
//! The most commonly combined types are re-exported at the crate root:
//! [`Scenario`]/[`Runner`] (experiment orchestration),
//! [`MemoryConfig`] (validated memory-shape builder),
//! [`ModulePopulation`] (the characterization study),
//! [`ClusterSim`] (the HPC cluster simulator), [`SchedulerConfig`]
//! (validated scheduling policy + speedup table), [`Federation`]
//! (fleet-scale federated scheduling), and [`Registry`] (telemetry).
//!
//! # Quickstart: deterministic parallel experiments
//!
//! Wrap any per-seed computation in [`Scenario`]s and hand them to a
//! [`Runner`]. Results come back in input order with per-task output,
//! telemetry, and panic isolation — and because every RNG stream is
//! derived from `(seed, scenario name)` counters rather than thread
//! identity, the outcome is byte-identical for **any** worker count:
//!
//! ```
//! use hetero_dmr_repro::{ModulePopulation, Runner, Scenario};
//!
//! let scenarios: Vec<Scenario> = ["brand-study", "rank-study"]
//!     .into_iter()
//!     .map(|name| {
//!         Scenario::builder(name)
//!             .derived_seed(0xD1A2) // root seed -> per-task stream
//!             .task(|ctx| {
//!                 let pop = ModulePopulation::paper_study(ctx.seed);
//!                 ctx.say(format!("{} modules", pop.modules().len()));
//!             })
//!             .build()
//!     })
//!     .collect();
//!
//! // `Runner::new(n)` pins the worker count (0 = one per CPU); the
//! // output below is identical for every choice.
//! let outcomes = Runner::new(2).run(scenarios);
//! assert_eq!(outcomes.len(), 2);
//! assert!(outcomes.iter().all(|o| !o.is_failed()));
//! assert_eq!(outcomes[0].name, "brand-study");
//! assert_eq!(outcomes[0].out, "119 modules\n");
//! ```
//!
//! Memory shapes are built (and validated) with the
//! [`MemoryConfig`] builder:
//!
//! ```
//! use hetero_dmr_repro::MemoryConfig;
//!
//! let shape = MemoryConfig::builder()
//!     .channels(4)
//!     .ranks_per_module(2)
//!     .build()
//!     .expect("a power-of-two channel count is valid");
//! assert_eq!(shape.ranks_per_channel(), 4);
//! assert!(MemoryConfig::builder().channels(3).build().is_err());
//! ```
//!
//! Cluster simulations stream jobs through the scheduler's builder
//! entry point — sources are pulled lazily, so traces never need to be
//! materialized (see `scheduler::source` and `workloads::jobs`):
//!
//! ```
//! use hetero_dmr_repro::{ClusterSim, SchedulerConfig};
//! use hetero_dmr_repro::scheduler::{SliceSource, Job};
//!
//! let cluster = ClusterSim::new(64, [0.62, 0.36, 0.02]);
//! let jobs = vec![Job {
//!     id: 0,
//!     submit_s: 0.0,
//!     nodes: 8,
//!     duration_s: 600.0,
//!     mem_utilization: 0.2,
//! }];
//! let outcomes = cluster
//!     .schedule(SliceSource::new(&jobs))
//!     .config(SchedulerConfig::default())
//!     .run();
//! assert_eq!(outcomes.len(), 1);
//! ```

pub use dram;
pub use ecc;
pub use energy;
pub use hetero_dmr;
pub use margin;
pub use memsim;
pub use runner;
pub use scheduler;
pub use telemetry;
pub use workloads;

pub use margin::population::ModulePopulation;
pub use memsim::config::MemoryConfig;
pub use runner::{RunOutcome, RunStatus, Runner, Scenario, ScenarioBuilder, TaskCtx};
pub use scheduler::Cluster as ClusterSim;
pub use scheduler::{Federation, PlacementPolicy, SchedulerConfig, StreamSummary};
pub use telemetry::{Registry, Snapshot};
