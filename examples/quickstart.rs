//! Quickstart: the Hetero-DMR idea in sixty lines.
//!
//! Replicate blocks into a free module, read the copies unsafely fast,
//! and let the always-in-spec originals repair anything the overclock
//! corrupts.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ecc::ErrorModel;
use hetero_dmr::protocol::{HeteroDmrChannel, OpMode};
use hetero_dmr::{EvalConfig, MemoryDesign, NodeModel, UsageBucket};
use memsim::config::HierarchyConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::Suite;

fn main() {
    // ── 1. The protocol, functionally ────────────────────────────────
    // A channel with two modules of 2^20 blocks each, 25 % utilized:
    // replication activates, the channel clocks up, originals go into
    // self-refresh.
    let mut channel = HeteroDmrChannel::new(1 << 20);
    let mut now = channel.set_used_blocks(1 << 18, 0);
    assert_eq!(channel.mode(), OpMode::ReadMode);

    // Writes batch behind a write-mode switch (1 µs frequency
    // transition), then a single broadcast updates original + copy.
    now = channel.begin_write_mode(now).unwrap();
    channel.write(7, &[0xAB; 64], now).unwrap();
    now = channel.begin_read_mode(now).unwrap();

    // A clean read is served from the unsafely fast copy.
    let (data, outcome, t) = channel.read::<StdRng>(7, now, None).unwrap();
    assert_eq!(data, [0xAB; 64]);
    println!("fast read   : {outcome:?}");

    // Corrupt the copy arbitrarily — whole block of garbage — and read
    // again: detection-only ECC flags it, the channel drops to spec,
    // re-reads the original, repairs the copy, and speeds back up.
    let mut rng = StdRng::seed_from_u64(1);
    let (data, outcome, t2) = channel
        .read(7, t, Some((&mut rng, ErrorModel::FullBlock)))
        .unwrap();
    assert_eq!(
        data, [0xAB; 64],
        "the written value survives any error model"
    );
    println!(
        "corrupt read: {outcome:?} (cost: {} frequency transitions)",
        channel.transitions()
    );
    println!(
        "governor    : {} error(s) this epoch, budget {}",
        channel.governor().errors_this_epoch(),
        channel.governor().threshold()
    );
    let _ = t2;

    // ── 2. The performance story, simulated ──────────────────────────
    println!("\nsimulating HPCG on Hierarchy1 (small run)...");
    let model = NodeModel::new(
        HierarchyConfig::hierarchy1(),
        EvalConfig {
            ops_per_core: 8_000,
            seed: 1,
            windows: 1,
        },
    );
    let hdmr = model.normalized(
        MemoryDesign::HeteroDmr { margin_mts: 800 },
        Suite::Hpcg,
        UsageBucket::Low,
    );
    let ideal = model.normalized(MemoryDesign::ExploitFreqLat, Suite::Hpcg, UsageBucket::Low);
    println!("Exploit Freq+Lat (no protection): {ideal:.3}x over baseline");
    println!("Hetero-DMR@0.8GT/s (full reliability): {hdmr:.3}x over baseline");
}
