//! Node bring-up: the full deployment pipeline on one machine.
//!
//! 1. boot-time profiling measures every module's margin (§III-E),
//! 2. margin-aware selection picks the Free Module per channel and
//!    places the node in a scheduler group (§III-D),
//! 3. the Hetero-DMR protocol serves traffic with full recovery,
//! 4. the cluster scheduler exploits the node's group (§IV-C).
//!
//! ```text
//! cargo run --release --example node_bringup
//! ```

use ecc::ErrorModel;
use hetero_dmr::profiler::{ModuleUnderTest, NodeProfiler};
use hetero_dmr::protocol::HeteroDmrChannel;
use margin::population::ModulePopulation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scheduler::{
    Cluster, GrizzlyTrace, Policy, RunSummary, SchedulerConfig, SliceSource, SpeedupModel,
};

fn main() {
    // ── 1. Boot-time profiling ───────────────────────────────────────
    let population = ModulePopulation::paper_study(0xB007);
    let modules: Vec<ModuleUnderTest> = population
        .mainstream()
        .take(24) // a 12-channel node, 2 modules per channel
        .map(|m| ModuleUnderTest {
            specified: m.spec.organization.specified_rate,
            true_margin_mts: m.true_margin_mts,
        })
        .collect();
    let channels: Vec<Vec<ModuleUnderTest>> = modules.chunks(2).map(<[_]>::to_vec).collect();
    let profile = NodeProfiler::default().profile(&channels);
    println!("profiled channel margins : {:?}", profile.channel_margins);
    println!("fast-module selection    : {:?}", profile.fast_module);
    println!(
        "node margin {} MT/s -> scheduler group {} GT/s",
        profile.node_margin_mts,
        profile.group() as f64 / 1000.0
    );

    // ── 2. Serve traffic with recovery ───────────────────────────────
    let mut rng = StdRng::seed_from_u64(0xB007);
    let mut channel = HeteroDmrChannel::new(1 << 16);
    let mut t = channel.set_used_blocks(1 << 14, 0);
    t = channel.begin_write_mode(t).unwrap();
    for block in 0..128u64 {
        channel.write(block, &[block as u8; 64], t).unwrap();
    }
    t = channel.begin_read_mode(t).unwrap();
    let mut recoveries = 0;
    for i in 0..1_000u64 {
        let block = i % 128;
        let inject = (i % 97 == 0).then_some((&mut rng, ErrorModel::ByteBurst(6)));
        let (data, outcome, end) = channel.read(block, t, inject).unwrap();
        assert_eq!(data, [block as u8; 64]);
        if outcome == hetero_dmr::ReadOutcome::Recovered {
            recoveries += 1;
        }
        t = end;
    }
    println!(
        "\nserved 1000 reads: {} fast+clean, {recoveries} recovered, governor at {}/{} errors",
        channel.stats().fast_reads,
        channel.governor().errors_this_epoch(),
        channel.governor().threshold()
    );

    // ── 3. The node joins the cluster ────────────────────────────────
    let trace = GrizzlyTrace::scaled(6_000, 256).generate(0xB007);
    let conventional = Cluster::conventional(256);
    let upgraded = Cluster::new(256, [0.62, 0.36, 0.02]);
    let run = |cluster: &Cluster, policy: Policy, speedups: SpeedupModel| {
        let config = SchedulerConfig::builder()
            .policy(policy)
            .speedups(speedups)
            .build()
            .expect("speedup tables are valid");
        let outcomes = cluster
            .schedule(SliceSource::new(&trace))
            .config(config)
            .run();
        RunSummary::from_outcomes(&outcomes)
    };
    let base = run(&conventional, Policy::Default, SpeedupModel::conventional());
    let fast = run(
        &upgraded,
        Policy::MarginAware,
        SpeedupModel::hetero_dmr_default(),
    );
    println!(
        "\ncluster of such nodes: turnaround {:.0} s -> {:.0} s ({:.2}x)",
        base.mean_turnaround_s,
        fast.mean_turnaround_s,
        fast.turnaround_speedup_over(&base)
    );
}
