//! Error-injection campaign: throw every modelled error class at the
//! unsafely fast copies, thousands of times, and verify the paper's
//! reliability claim — no injected pattern ever reaches software.
//!
//! ```text
//! cargo run --release --example error_injection [reads-per-class]
//! ```

use ecc::ErrorModel;
use hetero_dmr::governor::EpochGovernor;
use hetero_dmr::protocol::{HeteroDmrChannel, OpMode, ReadOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let per_class: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let mut rng = StdRng::seed_from_u64(0xFA17);

    println!(
        "{:<22} {:>8} {:>11} {:>12}",
        "error model", "reads", "recovered", "data intact"
    );
    for model in ErrorModel::ALL {
        let mut channel = HeteroDmrChannel::new(1 << 16);
        let mut t = channel.set_used_blocks(1 << 14, 0);
        // Write a known pattern to a working set.
        t = channel.begin_write_mode(t).unwrap();
        for block in 0..256u64 {
            channel.write(block, &[block as u8; 64], t).unwrap();
        }
        t = channel.begin_read_mode(t).unwrap();

        let (mut recovered, mut intact) = (0usize, 0usize);
        for i in 0..per_class {
            let block = rng.random_range(0..256u64);
            // Inject on ~half the reads; the rest exercise the fast path.
            let inject = (i % 2 == 0).then_some((&mut rng, model));
            let (data, outcome, end) = channel.read(block, t, inject).unwrap();
            t = end;
            if data == [block as u8; 64] {
                intact += 1;
            }
            if outcome == ReadOutcome::Recovered {
                recovered += 1;
            }
        }
        println!(
            "{:<22} {:>8} {:>11} {:>11}%",
            format!("{model:?}"),
            per_class,
            recovered,
            100 * intact / per_class
        );
        assert_eq!(
            intact, per_class,
            "reliability claim violated for {model:?}"
        );
    }

    // The governor in action: a pathological module that errors on
    // every read trips the epoch budget and degrades to spec.
    println!("\npathological module with a 3-error epoch budget:");
    let mut channel = HeteroDmrChannel::with_governor(1 << 16, EpochGovernor::new(3));
    let mut t = channel.set_used_blocks(1 << 14, 0);
    for i in 0..5 {
        let (_, outcome, end) = channel
            .read(i, t, Some((&mut rng, ErrorModel::SingleByte)))
            .unwrap();
        t = end;
        println!(
            "  read {i}: {outcome:?} → mode {:?}, errors this epoch: {}",
            channel.mode(),
            channel.governor().errors_this_epoch()
        );
    }
    assert_eq!(channel.mode(), OpMode::Degraded);
    println!(
        "budget exhausted → safe (degraded) operation until the next epoch; data still correct."
    );
}
