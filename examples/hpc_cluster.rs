//! System-wide simulation: a Grizzly-like cluster with and without
//! Hetero-DMR (Section IV-C / Figure 17), at reduced scale.
//!
//! ```text
//! cargo run --release --example hpc_cluster [jobs]
//! ```

use hetero_dmr::monte_carlo::MonteCarlo;
use margin::composition::SelectionPolicy;
use scheduler::{
    Cluster, GrizzlyTrace, Policy, RunSummary, SchedulerConfig, SliceSource, SpeedupModel,
};

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let nodes = scheduler::trace::GRIZZLY_NODES;

    println!("generating a {jobs}-job Grizzly-like trace on {nodes} nodes...");
    let trace = GrizzlyTrace {
        jobs,
        ..GrizzlyTrace::default()
    }
    .generate(0xD1A2);

    // Node margin groups from the Figure 11 Monte Carlo.
    let groups = MonteCarlo::default().node_groups(SelectionPolicy::MarginAware, 20_000, 1);
    println!(
        "node groups: {:.0}% @0.8GT/s, {:.0}% @0.6GT/s, {:.0}% unusable",
        groups.at_800 * 100.0,
        groups.at_600 * 100.0,
        groups.at_0 * 100.0
    );

    let conventional = Cluster::conventional(nodes);
    let hetero = Cluster::new(nodes, [groups.at_800, groups.at_600, groups.at_0]);
    let speedups = SpeedupModel::hetero_dmr_default();

    let run = |cluster: &Cluster, policy: Policy, speedups: SpeedupModel| {
        let config = SchedulerConfig::builder()
            .policy(policy)
            .speedups(speedups)
            .build()
            .expect("speedup tables are valid");
        let outcomes = cluster
            .schedule(SliceSource::new(&trace))
            .config(config)
            .run();
        RunSummary::from_outcomes(&outcomes)
    };
    let base = run(&conventional, Policy::Default, SpeedupModel::conventional());
    let aware = run(&hetero, Policy::MarginAware, speedups);
    let oblivious = run(&hetero, Policy::Default, speedups);

    println!(
        "\n{:<28} {:>12} {:>12} {:>12}",
        "system", "mean exec", "mean queue", "turnaround"
    );
    for (name, s) in [
        ("conventional", &base),
        ("Hetero-DMR, margin-aware", &aware),
        ("Hetero-DMR, default sched", &oblivious),
    ] {
        println!(
            "{:<28} {:>10.0} s {:>10.0} s {:>10.0} s",
            name, s.mean_exec_s, s.mean_queue_s, s.mean_turnaround_s
        );
    }
    println!(
        "\nturnaround speedup: margin-aware {:.2}x, default {:.2}x (paper: 1.4x / margin-aware is 1.2x better)",
        aware.turnaround_speedup_over(&base),
        oblivious.turnaround_speedup_over(&base)
    );
}
