//! Margin survey: re-run the paper's Section II characterization on a
//! fresh synthetic module population.
//!
//! ```text
//! cargo run --release --example margin_survey [seed]
//! ```

use margin::composition::{channel_margin, node_margin, SelectionPolicy};
use margin::errors::TestCondition;
use margin::population::ModulePopulation;
use margin::stats::{mean, std_dev, Histogram};
use margin::stress::{measure_margin, run_stress_test, StressConfig};
use margin::study;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1A2);
    let pop = ModulePopulation::paper_study(seed);
    println!(
        "population: {} modules / {} chips (paper: 119 / 3006)",
        pop.modules().len(),
        pop.total_chips()
    );

    // The measurement procedure itself: step data rates by 200 MT/s
    // until the module fails its accuracy target.
    let cfg = StressConfig::default();
    let re_measured: Vec<u32> = pop
        .modules()
        .iter()
        .map(|m| measure_margin(m.spec.organization.specified_rate, m.true_margin_mts, &cfg))
        .collect();
    let agree = pop
        .modules()
        .iter()
        .zip(&re_measured)
        .filter(|(m, &r)| m.measured_margin_mts == r)
        .count();
    println!("stress-test harness reproduces the recorded margins for {agree}/119 modules");

    // Figure 2: the distribution.
    let mut hist = Histogram::new(0.0, 200.0);
    for m in pop.modules() {
        hist.add(m.measured_margin_mts as f64);
    }
    println!("\nmargin histogram:");
    for (lo, n) in hist.buckets().filter(|&(_, n)| n > 0) {
        println!("  {:>4.0}+ MT/s: {}", lo, "#".repeat(n as usize));
    }

    // Figure 3: groupings.
    println!("\nby brand:");
    for g in study::by_brand(&pop) {
        println!(
            "  {:<8} n={:<3} mean {:>4.0} MT/s +/- {:>3.0} (99% CI)",
            g.label, g.count, g.mean_mts, g.ci99_mts
        );
    }

    // One-hour stress tests at the four conditions (Figure 6).
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE44);
    let mut totals = [0u64; 4];
    for m in pop.mainstream() {
        for (i, cond) in TestCondition::ALL.iter().enumerate() {
            totals[i] += run_stress_test(&mut rng, &m.errors, *cond, &cfg).corrected;
        }
    }
    println!(
        "\npopulation CE totals per 1h stress: freq@23C {} | freq@45C {} | f+l@23C {} | f+l@45C {}",
        totals[0], totals[1], totals[2], totals[3]
    );
    println!(
        "45C/23C ratio (freq): {:.1}x (paper: ~4x)",
        totals[1] as f64 / totals[0] as f64
    );

    // Channel- and node-level composition on this very population.
    let margins: Vec<f64> = pop
        .mainstream()
        .map(|m| m.measured_margin_mts as f64)
        .collect();
    println!(
        "\nmainstream margins: mean {:.0} MT/s, stdev {:.0}",
        mean(&margins),
        std_dev(&margins)
    );
    let pairs: Vec<[u32; 2]> = pop
        .mainstream()
        .map(|m| m.measured_margin_mts)
        .collect::<Vec<_>>()
        .chunks_exact(2)
        .map(|c| [c[0], c[1]])
        .collect();
    let aware: Vec<u32> = pairs
        .iter()
        .map(|p| channel_margin(p, SelectionPolicy::MarginAware))
        .collect();
    let unaware: Vec<u32> = pairs
        .iter()
        .map(|p| channel_margin(p, SelectionPolicy::MarginUnaware))
        .collect();
    let at = |v: &[u32]| v.iter().filter(|&&m| m >= 800).count() as f64 / v.len() as f64;
    println!(
        "channels >=0.8GT/s from this population: aware {:.0}% vs unaware {:.0}%",
        at(&aware) * 100.0,
        at(&unaware) * 100.0
    );
    let node = node_margin(&aware[..12.min(aware.len())]);
    println!("a 12-channel node built from the first channels: {node} MT/s usable margin");
}
