//! Differential test between the two DRAM energy models.
//!
//! The per-op [`energy::simple`] model and the state-residency
//! [`energy::residency`] model are calibrated from the same DDR4-3200
//! datasheet currents, so on real simulated command streams they must
//! agree on the big picture: same edge energies by construction, and a
//! background term that differs only by the active-vs-precharged
//! standby delta the simple model cannot see. This test drives the
//! memsim channel controller with randomized traffic, feeds the same
//! run to both models, and bounds the divergence.

use dram::Picos;
use energy::{DramEnergyParams, EnergyModel, ResidencyInput, ResidencyModel};
use memsim::address::DramCoord;
use memsim::config::{ChannelMode, MemoryConfig};
use memsim::controller::ChannelController;

/// splitmix64, as in memsim's own differential test.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Runs a random command stream and returns (simple DRAM J, residency
/// DRAM J) for the identical simulated behavior.
fn both_models(seed: u64, ops: u64, gap: u64) -> (f64, f64) {
    let mut rng = Rng(seed);
    let mode = ChannelMode::commercial_baseline();
    let mem = MemoryConfig::default();
    let mut ctrl = ChannelController::new(mode, mem, 200 * 625);

    let ranks = mem.ranks_per_channel() as u64;
    let banks = mem.banks_per_rank as u64;
    let mut now: Picos = 0;
    for _ in 0..ops {
        now += 1 + rng.below(gap);
        let coord = DramCoord {
            channel: 0,
            rank: rng.below(ranks) as usize,
            bank: rng.below(banks) as usize,
            row: rng.below(24),
            column: rng.below(64),
        };
        match rng.below(100) {
            0..=69 => {
                let t = ctrl.submit_read(coord, now, true);
                ctrl.resolve_read(t);
            }
            70..=89 => ctrl.enqueue_write(coord),
            _ => {
                ctrl.drain_writes(now);
            }
        }
    }
    ctrl.process_reads();
    while ctrl.pending_writes() > 0 {
        now += 1_000_000;
        ctrl.drain_writes(now);
    }
    let end = now + 10_000_000;
    let res = ctrl.finalize_residency(end);
    let stats = ctrl.stats();

    // Same run through the per-op model. The calibrated preset
    // describes a dual-rank module, so the channel's rank count maps
    // to ranks/2 modules.
    let modules = mem.ranks_per_channel() / 2;
    let activity = dram::power::ActivityCounters {
        activates: stats.activates,
        reads: stats.reads,
        writes: stats.writes,
        broadcast_extra_cells: stats.broadcast_extra_cells,
        refreshes: stats.refreshes,
        active_time: res.active_bank_ps,
        self_refresh_time: 0,
        total_time: end,
    };
    let simple = EnergyModel {
        dram: DramEnergyParams::ddr4_3200(),
        ..EnergyModel::default()
    }
    .energy(&activity, modules, 1);
    let simple_j = simple.dram_background_j + simple.dram_dynamic_j;

    // And through the residency model.
    let breakdown = ResidencyModel::ddr4_3200().energy(&ResidencyInput {
        active_bank_ps: res.active_bank_ps,
        precharged_bank_ps: res.precharged_bank_ps(),
        refresh_bank_ps: res.refresh_bank_ps,
        self_refresh_bank_ps: res.self_refresh_bank_ps,
        banks_per_rank: mem.banks_per_rank as u32,
        activates: stats.activates,
        reads: stats.reads,
        writes: stats.writes,
        broadcast_extra_cells: stats.broadcast_extra_cells,
        refreshes: stats.refreshes,
    });
    assert_eq!(res.act_edges, stats.activates, "seed {seed}");
    (simple_j, breakdown.total_j())
}

#[test]
fn models_agree_within_bounds_on_random_traffic() {
    for seed in 0..32u64 {
        // Mixed gaps: bursty (small gap) through idle-heavy (large).
        let gap = [5_000, 40_000, 400_000][(seed % 3) as usize];
        let (simple_j, residency_j) = both_models(0xE6E6_0000 + seed, 3_000, gap);
        assert!(simple_j > 0.0 && residency_j > 0.0);
        let ratio = residency_j / simple_j;
        // Same calibration, same command stream: the models may only
        // diverge by the standby-state detail the simple model lacks.
        assert!(
            (0.7..1.5).contains(&ratio),
            "seed {seed} gap {gap}: residency {residency_j} J vs simple {simple_j} J (ratio {ratio})"
        );
    }
}

#[test]
fn residency_charges_open_rows_the_simple_model_misses() {
    // A bursty run keeps rows open (page timeout) a larger fraction of
    // the time than an idle-heavy run, so the residency model's extra
    // active-standby charge is larger relative to the simple model.
    let (s_busy, r_busy) = both_models(0xAB, 6_000, 4_000);
    let (s_idle, r_idle) = both_models(0xCD, 600, 4_000_000);
    let busy_ratio = r_busy / s_busy;
    let idle_ratio = r_idle / s_idle;
    assert!(
        busy_ratio > idle_ratio,
        "busy {busy_ratio} vs idle {idle_ratio}"
    );
}
