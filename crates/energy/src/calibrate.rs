//! Datasheet-current calibration.
//!
//! Maps IDD/IPP-style datasheet currents to the state powers and
//! command-edge energies the residency model consumes, following the
//! Micron system-power-calculator decomposition:
//!
//! * standby powers come straight from the standby currents
//!   (`P = VDD × IDDxN`), scaled by devices per rank;
//! * activate/precharge energy is the IDD0 loop current with the
//!   standby floor subtracted over the tRAS/tRP phases of one tRC,
//!   plus the wordline pump (VPP × IPP0) on DDR5-class parts;
//! * burst energies are the read/write current deltas over one
//!   64-byte burst;
//! * refresh energy is the IDD5B delta over one tRFC — the standby
//!   floor during refresh is charged by the residency model as
//!   active-standby time, so only the delta lives on the edge.
//!
//! Units work out as `V × mA × ns = pJ`; everything is returned in
//! nanojoules and watts.

use crate::residency::{EdgeEnergies, StatePowers};
use dram::timing::TimingParams;

/// IDD/IPP-style datasheet currents for one DRAM device.
///
/// Currents are per device; [`DatasheetCurrents::state_powers`] and
/// [`DatasheetCurrents::edge_energies`] scale them to a full rank,
/// since every chip in a rank sees every command in lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasheetCurrents {
    /// Core supply voltage, volts.
    pub vdd_v: f64,
    /// Wordline pump voltage, volts.
    pub vpp_v: f64,
    /// One-bank activate-precharge loop current (tRC cadence), mA.
    pub idd0_ma: f64,
    /// Pump current during the activate loop, mA.
    pub ipp0_ma: f64,
    /// Precharge standby current (all banks closed, CKE high), mA.
    pub idd2n_ma: f64,
    /// Active standby current (a bank open, no data), mA.
    pub idd3n_ma: f64,
    /// Burst read current, mA.
    pub idd4r_ma: f64,
    /// Burst write current, mA.
    pub idd4w_ma: f64,
    /// Burst (distributed) refresh current, mA.
    pub idd5b_ma: f64,
    /// Self-refresh current, mA.
    pub idd6_ma: f64,
}

impl DatasheetCurrents {
    /// Representative 8 Gb DDR4 device currents (x8, 1.2 V core,
    /// 2.5 V pump), the Micron power-calculator ballpark for the
    /// paper's module population.
    pub fn ddr4_8gb() -> DatasheetCurrents {
        DatasheetCurrents {
            vdd_v: 1.2,
            vpp_v: 2.5,
            idd0_ma: 58.0,
            ipp0_ma: 3.0,
            idd2n_ma: 34.0,
            idd3n_ma: 44.0,
            idd4r_ma: 140.0,
            idd4w_ma: 130.0,
            idd5b_ma: 195.0,
            idd6_ma: 22.0,
        }
    }

    /// Representative 16 Gb DDR5 device currents (x8, 1.1 V core,
    /// 1.8 V pump).
    pub fn ddr5_16gb() -> DatasheetCurrents {
        DatasheetCurrents {
            vdd_v: 1.1,
            vpp_v: 1.8,
            idd0_ma: 65.0,
            ipp0_ma: 3.0,
            idd2n_ma: 35.0,
            idd3n_ma: 50.0,
            idd4r_ma: 180.0,
            idd4w_ma: 165.0,
            idd5b_ma: 250.0,
            idd6_ma: 25.0,
        }
    }

    /// 16 Gb DDR5 devices behind an MRDIMM mux buffer: the data buffer
    /// and RCD add standby and burst current on top of the bare device.
    pub fn mrdimm_16gb() -> DatasheetCurrents {
        DatasheetCurrents {
            idd0_ma: 68.0,
            idd2n_ma: 40.0,
            idd3n_ma: 55.0,
            idd4r_ma: 190.0,
            idd4w_ma: 175.0,
            idd5b_ma: 255.0,
            idd6_ma: 28.0,
            ..DatasheetCurrents::ddr5_16gb()
        }
    }

    /// Per-rank state powers: standby currents × VDD × devices.
    pub fn state_powers(&self, chips_per_rank: u32) -> StatePowers {
        let rank_w = |ma: f64| self.vdd_v * ma * chips_per_rank as f64 / 1000.0;
        StatePowers {
            active_standby_w: rank_w(self.idd3n_ma),
            precharge_standby_w: rank_w(self.idd2n_ma),
            self_refresh_w: rank_w(self.idd6_ma),
        }
    }

    /// Per-rank command-edge energies at a given timing set.
    pub fn edge_energies(&self, timing: &TimingParams, chips_per_rank: u32) -> EdgeEnergies {
        let chips = chips_per_rank as f64;
        let trc_ns = timing.t_rc_ns();
        let burst_ns = timing.burst_ps() as f64 / 1000.0;
        // IDD0 is measured on a continuous ACT/PRE loop, so the standby
        // floor (IDD3N while the row is open, IDD2N while precharged)
        // must come out to leave the pure activate energy.
        let act_ma = self.idd0_ma
            - self.idd3n_ma * timing.t_ras_ns / trc_ns
            - self.idd2n_ma * timing.t_rp_ns / trc_ns;
        let act_pj = self.vdd_v * act_ma * trc_ns + self.vpp_v * self.ipp0_ma * trc_ns;
        let pj_to_nj = chips / 1000.0;
        EdgeEnergies {
            act_pre_nj: act_pj * pj_to_nj,
            read_nj: self.vdd_v * (self.idd4r_ma - self.idd3n_ma) * burst_ns * pj_to_nj,
            write_nj: self.vdd_v * (self.idd4w_ma - self.idd3n_ma) * burst_ns * pj_to_nj,
            refresh_nj: self.vdd_v * (self.idd5b_ma - self.idd3n_ma) * timing.t_rfc_ns * pj_to_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_powers_order_and_scale() {
        for c in [
            DatasheetCurrents::ddr4_8gb(),
            DatasheetCurrents::ddr5_16gb(),
            DatasheetCurrents::mrdimm_16gb(),
        ] {
            let p = c.state_powers(9);
            // Self-refresh < precharge standby < active standby.
            assert!(p.self_refresh_w < p.precharge_standby_w);
            assert!(p.precharge_standby_w < p.active_standby_w);
            // A 9-device rank idles well under a watt per state.
            assert!(p.active_standby_w < 1.0, "{p:?}");
            assert!(p.self_refresh_w > 0.05, "{p:?}");
        }
    }

    #[test]
    fn ddr4_edge_energies_match_power_calculator_ballpark() {
        let e = DatasheetCurrents::ddr4_8gb().edge_energies(&TimingParams::ddr4_3200_spec(), 9);
        // Micron's DDR4 calculator puts a rank ACT+PRE around 10 nJ and
        // a 64-byte read burst at a few nJ.
        assert!((5.0..25.0).contains(&e.act_pre_nj), "{e:?}");
        assert!((1.0..6.0).contains(&e.read_nj), "{e:?}");
        assert!((1.0..6.0).contains(&e.write_nj), "{e:?}");
        // A REF covers all banks of an 8 Gb device: hundreds of nJ/rank.
        assert!((200.0..1200.0).contains(&e.refresh_nj), "{e:?}");
        // Reads drive the bus harder than writes on these parts.
        assert!(e.read_nj > e.write_nj);
    }

    #[test]
    fn edge_energies_scale_linearly_with_devices() {
        let c = DatasheetCurrents::ddr4_8gb();
        let t = TimingParams::ddr4_3200_spec();
        let one = c.edge_energies(&t, 9);
        let two = c.edge_energies(&t, 18);
        assert!((two.act_pre_nj - 2.0 * one.act_pre_nj).abs() < 1e-9);
        assert!((two.refresh_nj - 2.0 * one.refresh_nj).abs() < 1e-9);
    }

    #[test]
    fn faster_interface_cheapens_bursts_only() {
        let c = DatasheetCurrents::ddr5_16gb();
        let base = c.edge_energies(&TimingParams::ddr5_4800_spec(), 10);
        let fast = c.edge_energies(&TimingParams::ddr5_6400_spec(), 10);
        assert!(fast.read_nj < base.read_nj);
        assert!(fast.write_nj < base.write_nj);
        // Row timings are unchanged, so ACT and REF energy are too.
        assert!((fast.act_pre_nj - base.act_pre_nj).abs() < 1e-9);
        assert!((fast.refresh_nj - base.refresh_nj).abs() < 1e-9);
    }
}
