//! The original per-operation energy model — Figure 13's
//! Energy-Per-Instruction metric.
//!
//! The model follows the paper's reasoning about why Hetero-DMR
//! *improves* energy efficiency despite writing every block twice:
//!
//! 1. CPU idle/static power dominates: finishing 18 % sooner saves
//!    more static energy than the extra DRAM writes cost;
//! 2. DRAM is a minority of system power (~18 % in 2018 per the
//!    datacenter literature the paper cites);
//! 3. writes are only ~15 % of DRAM traffic, so doubling write *cell*
//!    energy moves total DRAM energy by a few percent.
//!
//! DRAM per-operation energies follow the Micron DDR4 power-calculator
//! decomposition (background, activate/precharge, read/write bursts,
//! refresh, with self-refresh as a reduced background state). The
//! state-residency model in [`crate::residency`] supersedes this one
//! where simulated bank-state residency is available; this model stays
//! as the cheap approximation and the differential-test referee.

use crate::calibrate::DatasheetCurrents;
use crate::ps_to_s;
use dram::power::ActivityCounters;
use dram::timing::TimingParams;

/// Per-operation and background DRAM energy parameters (one module).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergyParams {
    /// Background (standby) power per module, watts.
    pub background_w: f64,
    /// Self-refresh power per module, watts.
    pub self_refresh_w: f64,
    /// Energy per activate+precharge pair, nanojoules.
    pub act_nj: f64,
    /// Energy per 64-byte read burst (array + I/O), nanojoules.
    pub read_nj: f64,
    /// Energy per 64-byte write burst, nanojoules.
    pub write_nj: f64,
    /// Energy per (all-bank) refresh command, nanojoules.
    pub refresh_nj: f64,
}

impl Default for DramEnergyParams {
    fn default() -> DramEnergyParams {
        // Representative 8 Gb DDR4-3200 RDIMM values (per module:
        // ~0.3 W/chip × 18 chips peaks ~5.4 W; background is a
        // fraction of that).
        DramEnergyParams {
            background_w: 1.4,
            self_refresh_w: 0.25,
            act_nj: 2.0,
            read_nj: 4.0,
            write_nj: 4.4,
            refresh_nj: 120.0,
        }
    }
}

impl DramEnergyParams {
    /// Derives a parameter table from datasheet currents and a timing
    /// set — the Micron power-calculator mapping in
    /// [`crate::calibrate`], folded down to per-module constants.
    pub fn from_currents(
        currents: &DatasheetCurrents,
        timing: &TimingParams,
        chips_per_rank: u32,
        ranks: u32,
    ) -> DramEnergyParams {
        let powers = currents.state_powers(chips_per_rank);
        let edges = currents.edge_energies(timing, chips_per_rank);
        DramEnergyParams {
            background_w: powers.precharge_standby_w * ranks as f64,
            self_refresh_w: powers.self_refresh_w * ranks as f64,
            act_nj: edges.act_pre_nj,
            read_nj: edges.read_nj,
            write_nj: edges.write_nj,
            refresh_nj: edges.refresh_nj,
        }
    }

    /// Calibrated DDR4-3200 RDIMM (9 chips/rank, dual rank, 8 Gb).
    pub fn ddr4_3200() -> DramEnergyParams {
        DramEnergyParams::from_currents(
            &DatasheetCurrents::ddr4_8gb(),
            &TimingParams::ddr4_3200_spec(),
            9,
            2,
        )
    }

    /// Calibrated DDR4-2400 RDIMM (9 chips/rank, dual rank, 8 Gb).
    pub fn ddr4_2400() -> DramEnergyParams {
        DramEnergyParams::from_currents(
            &DatasheetCurrents::ddr4_8gb(),
            &TimingParams::ddr4_2400_spec(),
            9,
            2,
        )
    }

    /// Calibrated DDR5-4800 RDIMM (10 chips/rank, dual rank, 16 Gb).
    pub fn ddr5_4800() -> DramEnergyParams {
        DramEnergyParams::from_currents(
            &DatasheetCurrents::ddr5_16gb(),
            &TimingParams::ddr5_4800_spec(),
            10,
            2,
        )
    }

    /// Calibrated DDR5-6400 RDIMM (10 chips/rank, dual rank, 16 Gb).
    pub fn ddr5_6400() -> DramEnergyParams {
        DramEnergyParams::from_currents(
            &DatasheetCurrents::ddr5_16gb(),
            &TimingParams::ddr5_6400_spec(),
            10,
            2,
        )
    }

    /// Calibrated MRDIMM-8800 (10 chips per host-visible rank, four
    /// host-visible ranks — two physical ranks × two mux pseudo-ranks).
    pub fn mrdimm_8800() -> DramEnergyParams {
        DramEnergyParams::from_currents(
            &DatasheetCurrents::mrdimm_16gb(),
            &TimingParams::mrdimm_8800_spec(),
            10,
            4,
        )
    }
}

/// CPU power parameters for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPowerParams {
    /// Static + idle power, watts (dominant, per the paper).
    pub static_w: f64,
    /// Dynamic power at peak retirement rate, watts.
    pub peak_dynamic_w: f64,
    /// Peak retirement rate used to scale dynamic power,
    /// instructions per second.
    pub peak_ips: f64,
}

impl Default for CpuPowerParams {
    fn default() -> CpuPowerParams {
        CpuPowerParams {
            static_w: 120.0,
            peak_dynamic_w: 90.0,
            peak_ips: 8.0 * 4.0 * 3.1e9, // 8 cores × 4-wide × 3.1 GHz
        }
    }
}

impl CpuPowerParams {
    /// CPU energy of a run: static power over the wall time plus
    /// dynamic power scaled by achieved retirement rate.
    pub fn energy_j(&self, secs: f64, instructions: u64) -> f64 {
        let dynamic = if secs > 0.0 {
            let ips = instructions as f64 / secs;
            self.peak_dynamic_w * (ips / self.peak_ips).min(1.0)
        } else {
            0.0
        };
        (self.static_w + dynamic) * secs
    }
}

/// The full node energy model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyModel {
    /// CPU parameters.
    pub cpu: CpuPowerParams,
    /// DRAM parameters.
    pub dram: DramEnergyParams,
}

/// Itemized energy of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// CPU static + dynamic energy, joules.
    pub cpu_j: f64,
    /// DRAM background (+ self-refresh) energy, joules.
    pub dram_background_j: f64,
    /// DRAM activate/read/write/refresh energy, joules.
    pub dram_dynamic_j: f64,
    /// Instructions the run retired.
    pub instructions: u64,
}

impl EnergyBreakdown {
    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.cpu_j + self.dram_background_j + self.dram_dynamic_j
    }

    /// Energy per instruction, nanojoules (Figure 13's metric).
    pub fn epi_nj(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total_j() * 1e9 / self.instructions as f64
        }
    }

    /// DRAM share of total energy.
    pub fn dram_share(&self) -> f64 {
        if self.total_j() == 0.0 {
            0.0
        } else {
            (self.dram_background_j + self.dram_dynamic_j) / self.total_j()
        }
    }
}

impl EnergyModel {
    /// Computes the energy of a run from its DRAM activity counters.
    ///
    /// `modules` is the number of DIMMs powered in the node;
    /// `instructions` the retired instruction count.
    pub fn energy(
        &self,
        activity: &ActivityCounters,
        modules: usize,
        instructions: u64,
    ) -> EnergyBreakdown {
        let secs = ps_to_s(activity.total_time);
        let normal_time = activity
            .total_time
            .saturating_sub(activity.self_refresh_time / modules.max(1) as u64);
        let cpu_j = self.cpu.energy_j(secs, instructions);

        let background_j = self.dram.background_w * modules as f64 * ps_to_s(normal_time)
            + self.dram.self_refresh_w * ps_to_s(activity.self_refresh_time);

        // Broadcast copies charge DRAM cells in the extra module even
        // though the bus transaction is shared.
        let dynamic_nj = activity.activates as f64 * self.dram.act_nj
            + activity.reads as f64 * self.dram.read_nj
            + activity.writes as f64 * self.dram.write_nj
            + activity.broadcast_extra_cells as f64 * self.dram.write_nj
            + activity.refreshes as f64 * self.dram.refresh_nj;

        EnergyBreakdown {
            cpu_j,
            dram_background_j: background_j,
            dram_dynamic_j: dynamic_nj * 1e-9,
            instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity(time_ms: u64, reads: u64, writes: u64) -> ActivityCounters {
        ActivityCounters {
            activates: (reads + writes) / 4,
            reads,
            writes,
            broadcast_extra_cells: 0,
            refreshes: time_ms * 128, // ~one per 7.8 us per ms
            active_time: 0,
            self_refresh_time: 0,
            total_time: time_ms * 1_000_000_000,
        }
    }

    #[test]
    fn faster_run_has_lower_epi() {
        let model = EnergyModel::default();
        let instrs = 4_000_000_000;
        let slow = model.energy(&activity(1_000, 50_000_000, 8_000_000), 4, instrs);
        let fast = model.energy(&activity(820, 50_000_000, 8_000_000), 4, instrs);
        assert!(fast.epi_nj() < slow.epi_nj());
        // ~18% faster with static-dominated power → EPI gain of a few
        // to ~15 percent, bracketing the paper's 6%.
        let gain = 1.0 - fast.epi_nj() / slow.epi_nj();
        assert!(gain > 0.02 && gain < 0.2, "gain {gain}");
    }

    #[test]
    fn doubled_writes_cost_little() {
        let model = EnergyModel::default();
        let instrs = 4_000_000_000;
        let base = model.energy(&activity(1_000, 50_000_000, 8_000_000), 4, instrs);
        let mut dup = activity(1_000, 50_000_000, 8_000_000);
        dup.broadcast_extra_cells = 8_000_000; // every write duplicated
        let dup = model.energy(&dup, 4, instrs);
        let overhead = dup.total_j() / base.total_j() - 1.0;
        assert!(overhead > 0.0);
        assert!(overhead < 0.02, "write duplication overhead {overhead}");
    }

    #[test]
    fn dram_share_is_minority() {
        let model = EnergyModel::default();
        let b = model.energy(&activity(1_000, 50_000_000, 8_000_000), 4, 4_000_000_000);
        let share = b.dram_share();
        assert!(share > 0.02 && share < 0.35, "dram share {share}");
    }

    #[test]
    fn self_refresh_cheaper_than_standby() {
        let model = EnergyModel::default();
        let mut a = activity(1_000, 1_000_000, 100_000);
        // Two of four modules spend the whole run in self-refresh.
        a.self_refresh_time = 2 * a.total_time;
        let with_sr = model.energy(&a, 4, 1_000_000_000);
        let without = model.energy(&activity(1_000, 1_000_000, 100_000), 4, 1_000_000_000);
        assert!(with_sr.dram_background_j < without.dram_background_j);
    }

    #[test]
    fn per_chip_power_matches_the_papers_order_of_magnitude() {
        // Section II-A justifies ignoring thermal risk because DRAM
        // devices draw ~0.3 W/chip at full utilization. Check our
        // parameters land in that regime: one module saturated with
        // reads (25.6 GB/s = 400M bursts/s) across 18 devices.
        let model = EnergyModel::default();
        let one_second = ActivityCounters {
            activates: 12_500_000, // a row per 32 bursts
            reads: 400_000_000,
            writes: 0,
            broadcast_extra_cells: 0,
            refreshes: 128_000, // every 7.8 us
            active_time: 0,
            self_refresh_time: 0,
            total_time: dram::PS_PER_S,
        };
        let b = model.energy(&one_second, 1, 1);
        let module_watts = b.dram_background_j + b.dram_dynamic_j; // J over 1 s
        let per_chip = module_watts / 18.0;
        assert!(
            (0.05..0.5).contains(&per_chip),
            "per-chip power {per_chip} W out of the paper's regime"
        );
    }

    #[test]
    fn zero_instruction_run_is_safe() {
        let model = EnergyModel::default();
        let b = model.energy(&ActivityCounters::new(), 4, 0);
        assert_eq!(b.epi_nj(), 0.0);
        assert_eq!(b.total_j(), 0.0);
    }

    #[test]
    fn breakdown_components_sum() {
        let model = EnergyModel::default();
        let b = model.energy(&activity(500, 10_000_000, 1_000_000), 4, 1_000_000_000);
        let total = b.cpu_j + b.dram_background_j + b.dram_dynamic_j;
        assert!((b.total_j() - total).abs() < 1e-12);
        assert!(b.cpu_j > 0.0 && b.dram_background_j > 0.0 && b.dram_dynamic_j > 0.0);
    }

    #[test]
    fn preset_tables_are_positive() {
        for p in [
            DramEnergyParams::ddr4_2400(),
            DramEnergyParams::ddr4_3200(),
            DramEnergyParams::ddr5_4800(),
            DramEnergyParams::ddr5_6400(),
            DramEnergyParams::mrdimm_8800(),
        ] {
            assert!(p.background_w > 0.0, "{p:?}");
            assert!(
                p.self_refresh_w > 0.0 && p.self_refresh_w < p.background_w,
                "{p:?}"
            );
            assert!(p.act_nj > 0.0, "{p:?}");
            assert!(p.read_nj > 0.0, "{p:?}");
            assert!(p.write_nj > 0.0, "{p:?}");
            assert!(p.refresh_nj > 0.0, "{p:?}");
        }
    }

    #[test]
    fn burst_energy_is_monotone_decreasing_in_data_rate() {
        // Within a device family, the burst current delta is fixed, so
        // a faster interface (shorter burst) costs less energy per
        // 64-byte transfer; the MRDIMM continues the trend at 8800.
        let chain = [DramEnergyParams::ddr4_2400(), DramEnergyParams::ddr4_3200()];
        assert!(chain[1].read_nj < chain[0].read_nj);
        assert!(chain[1].write_nj < chain[0].write_nj);
        let chain = [
            DramEnergyParams::ddr5_4800(),
            DramEnergyParams::ddr5_6400(),
            DramEnergyParams::mrdimm_8800(),
        ];
        for pair in chain.windows(2) {
            assert!(pair[1].read_nj < pair[0].read_nj);
            assert!(pair[1].write_nj < pair[0].write_nj);
        }
    }

    #[test]
    fn calibrated_ddr4_roundtrips_near_the_default_table() {
        // The hand-tuned Default table and the datasheet-derived
        // DDR4-3200 table describe the same module: every per-op field
        // agrees within an order of magnitude (the calibration charges
        // ACT and REF more faithfully, hence the wider bound there).
        let d = DramEnergyParams::default();
        let c = DramEnergyParams::ddr4_3200();
        let ratio = |a: f64, b: f64| a.max(b) / a.min(b);
        assert!(ratio(d.background_w, c.background_w) < 3.0);
        assert!(ratio(d.self_refresh_w, c.self_refresh_w) < 3.0);
        assert!(ratio(d.read_nj, c.read_nj) < 3.0);
        assert!(ratio(d.write_nj, c.write_nj) < 3.0);
        assert!(ratio(d.act_nj, c.act_nj) < 10.0);
        assert!(ratio(d.refresh_nj, c.refresh_nj) < 10.0);
    }
}
