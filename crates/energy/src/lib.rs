//! System-level (CPU + DRAM) power and energy models.
//!
//! Two DRAM models live here:
//!
//! * [`simple`] — the original per-operation approximation (flat
//!   background power + per-op constants), kept as the cheap model
//!   behind Figure 13's EPI metric and as the referee in the
//!   model-divergence differential test;
//! * [`residency`] — a DRAMPower-style state-residency engine that
//!   integrates per-bank time-in-state (active, precharged,
//!   refreshing, self-refresh) from the memsim residency tap and adds
//!   command-edge energies, calibrated from IDD/IPP datasheet currents
//!   by [`calibrate`].
//!
//! The crate-root re-exports keep the original `energy::EnergyModel`
//! API intact for existing users.

pub mod calibrate;
pub mod residency;
pub mod simple;

pub use calibrate::DatasheetCurrents;
pub use residency::{
    EdgeEnergies, ResidencyBreakdown, ResidencyInput, ResidencyModel, StatePowers,
};
pub use simple::{CpuPowerParams, DramEnergyParams, EnergyBreakdown, EnergyModel};

use dram::{Picos, PS_PER_S};

/// Converts picoseconds to seconds.
pub fn ps_to_s(ps: Picos) -> f64 {
    ps as f64 / PS_PER_S as f64
}
