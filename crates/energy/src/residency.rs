//! DRAMPower-style state-residency energy engine.
//!
//! Instead of charging a flat background power plus per-op constants
//! (the [`crate::simple`] model), this engine integrates the power of
//! each bank *state* over the time the simulator actually spent there:
//!
//! ```text
//! E = Σ_state P_state × t_state  +  Σ_edge N_edge × E_edge
//! ```
//!
//! The states come from the memsim residency tap (time-in-state in
//! bank·picoseconds: active, precharged, refreshing, self-refresh);
//! the edges are the command counts the controller already tracks
//! (ACT/PRE pairs, read/write bursts, REF commands). Standby powers
//! and edge energies come from [`crate::calibrate`].
//!
//! Everything is normalized per *rank*: standby currents are drawn by
//! every device in a rank regardless of which bank is open, so
//! bank·seconds divide by banks-per-rank to give rank·seconds.

use crate::calibrate::DatasheetCurrents;
use crate::ps_to_s;
use dram::timing::TimingParams;
use dram::Picos;

/// Power drawn by one rank in each stable state, watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatePowers {
    /// At least one bank open (IDD3N), per rank.
    pub active_standby_w: f64,
    /// All banks closed, clock running (IDD2N), per rank.
    pub precharge_standby_w: f64,
    /// Self-refresh (IDD6), per rank.
    pub self_refresh_w: f64,
}

/// Energy of one command edge, nanojoules, per rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeEnergies {
    /// One ACT + its eventual PRE (the full row cycle).
    pub act_pre_nj: f64,
    /// One 64-byte read burst.
    pub read_nj: f64,
    /// One 64-byte write burst.
    pub write_nj: f64,
    /// One REF command (delta above active standby, over tRFC).
    pub refresh_nj: f64,
}

/// State-residency energy model for one DRAM generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidencyModel {
    /// Per-rank state powers.
    pub powers: StatePowers,
    /// Per-rank command-edge energies.
    pub edges: EdgeEnergies,
}

impl ResidencyModel {
    /// Calibrates a model from datasheet currents and a timing set.
    pub fn from_currents(
        currents: &DatasheetCurrents,
        timing: &TimingParams,
        chips_per_rank: u32,
    ) -> ResidencyModel {
        ResidencyModel {
            powers: currents.state_powers(chips_per_rank),
            edges: currents.edge_energies(timing, chips_per_rank),
        }
    }

    /// DDR4-3200, 9-chip ranks (the paper's main configuration).
    pub fn ddr4_3200() -> ResidencyModel {
        ResidencyModel::from_currents(
            &DatasheetCurrents::ddr4_8gb(),
            &TimingParams::ddr4_3200_spec(),
            9,
        )
    }

    /// DDR4-2400, 9-chip ranks.
    pub fn ddr4_2400() -> ResidencyModel {
        ResidencyModel::from_currents(
            &DatasheetCurrents::ddr4_8gb(),
            &TimingParams::ddr4_2400_spec(),
            9,
        )
    }

    /// DDR5-4800, 10-chip ranks.
    pub fn ddr5_4800() -> ResidencyModel {
        ResidencyModel::from_currents(
            &DatasheetCurrents::ddr5_16gb(),
            &TimingParams::ddr5_4800_spec(),
            10,
        )
    }

    /// DDR5-6400, 10-chip ranks.
    pub fn ddr5_6400() -> ResidencyModel {
        ResidencyModel::from_currents(
            &DatasheetCurrents::ddr5_16gb(),
            &TimingParams::ddr5_6400_spec(),
            10,
        )
    }

    /// MRDIMM-8800, 10-chip pseudo-ranks behind the mux buffer.
    pub fn mrdimm_8800() -> ResidencyModel {
        ResidencyModel::from_currents(
            &DatasheetCurrents::mrdimm_16gb(),
            &TimingParams::mrdimm_8800_spec(),
            10,
        )
    }

    /// Integrates state powers over the residency and adds edge
    /// energies. The four components of the returned breakdown sum to
    /// the total exactly (it is defined as their sum).
    pub fn energy(&self, input: &ResidencyInput) -> ResidencyBreakdown {
        let per_rank = 1.0 / input.banks_per_rank.max(1) as f64;
        // Refresh residency draws the active-standby floor; the array
        // current above it is charged per REF edge below.
        let background_j = (self.powers.active_standby_w
            * (ps_to_s(input.active_bank_ps) + ps_to_s(input.refresh_bank_ps))
            + self.powers.precharge_standby_w * ps_to_s(input.precharged_bank_ps)
            + self.powers.self_refresh_w * ps_to_s(input.self_refresh_bank_ps))
            * per_rank;
        let activate_j = input.activates as f64 * self.edges.act_pre_nj * 1e-9;
        let burst_j = (input.reads as f64 * self.edges.read_nj
            + (input.writes + input.broadcast_extra_cells) as f64 * self.edges.write_nj)
            * 1e-9;
        let refresh_j = input.refreshes as f64 * self.edges.refresh_nj * 1e-9;
        ResidencyBreakdown {
            background_j,
            activate_j,
            burst_j,
            refresh_j,
        }
    }
}

/// Simulated bank-state residency and command counts for one run
/// (one node: all channels merged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResidencyInput {
    /// Time with a row open, bank·picoseconds.
    pub active_bank_ps: Picos,
    /// Time precharged (idle), bank·picoseconds.
    pub precharged_bank_ps: Picos,
    /// Time refreshing, bank·picoseconds.
    pub refresh_bank_ps: Picos,
    /// Time in self-refresh, bank·picoseconds.
    pub self_refresh_bank_ps: Picos,
    /// Banks per rank, for normalizing bank·time to rank·time.
    pub banks_per_rank: u32,
    /// ACT commands issued.
    pub activates: u64,
    /// 64-byte read bursts.
    pub reads: u64,
    /// 64-byte write bursts.
    pub writes: u64,
    /// Extra cell-writes from broadcast copies (charged as writes).
    pub broadcast_extra_cells: u64,
    /// REF commands issued (per rank).
    pub refreshes: u64,
}

/// DRAM energy of one run, itemized by mechanism. `total_j` is the sum
/// of the four components by construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidencyBreakdown {
    /// State-residency (standby + self-refresh) energy, joules.
    pub background_j: f64,
    /// ACT/PRE row-cycle energy, joules.
    pub activate_j: f64,
    /// Read/write burst energy, joules.
    pub burst_j: f64,
    /// Refresh array energy, joules.
    pub refresh_j: f64,
}

impl ResidencyBreakdown {
    /// Total DRAM energy, joules.
    pub fn total_j(&self) -> f64 {
        self.background_j + self.activate_j + self.burst_j + self.refresh_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram::PS_PER_S;

    fn idle_second(banks: u64) -> ResidencyInput {
        ResidencyInput {
            precharged_bank_ps: banks * PS_PER_S,
            banks_per_rank: 16,
            ..ResidencyInput::default()
        }
    }

    #[test]
    fn idle_rank_draws_precharge_standby() {
        let m = ResidencyModel::ddr4_3200();
        // 16 banks idle for 1 s = one rank idle for 1 s.
        let b = m.energy(&idle_second(16));
        assert!((b.background_j - m.powers.precharge_standby_w).abs() < 1e-9);
        assert_eq!(b.activate_j, 0.0);
        assert_eq!(b.burst_j, 0.0);
        assert_eq!(b.refresh_j, 0.0);
    }

    #[test]
    fn self_refresh_beats_idle_standby() {
        let m = ResidencyModel::ddr4_3200();
        let idle = m.energy(&idle_second(16));
        let parked = m.energy(&ResidencyInput {
            self_refresh_bank_ps: 16 * PS_PER_S,
            banks_per_rank: 16,
            ..ResidencyInput::default()
        });
        assert!(parked.total_j() < idle.total_j() / 1.5);
    }

    #[test]
    fn components_sum_to_total() {
        let m = ResidencyModel::ddr5_4800();
        let b = m.energy(&ResidencyInput {
            active_bank_ps: 4 * PS_PER_S,
            precharged_bank_ps: 27 * PS_PER_S,
            refresh_bank_ps: PS_PER_S / 2,
            self_refresh_bank_ps: PS_PER_S / 2,
            banks_per_rank: 32,
            activates: 1_000_000,
            reads: 30_000_000,
            writes: 5_000_000,
            broadcast_extra_cells: 5_000_000,
            refreshes: 256_000,
        });
        let total = b.background_j + b.activate_j + b.burst_j + b.refresh_j;
        assert!((b.total_j() - total).abs() < 1e-12);
        assert!(b.background_j > 0.0 && b.activate_j > 0.0);
        assert!(b.burst_j > 0.0 && b.refresh_j > 0.0);
    }

    #[test]
    fn busier_run_costs_more() {
        let m = ResidencyModel::ddr4_3200();
        let mut input = idle_second(64);
        let idle = m.energy(&input).total_j();
        // Shift a quarter of the bank-time to active and add traffic.
        input.precharged_bank_ps -= 16 * PS_PER_S;
        input.active_bank_ps += 16 * PS_PER_S;
        input.activates = 2_000_000;
        input.reads = 50_000_000;
        input.writes = 8_000_000;
        input.refreshes = 128_000;
        let busy = m.energy(&input).total_j();
        assert!(busy > idle * 1.2, "busy {busy} idle {idle}");
    }

    #[test]
    fn generation_presets_are_well_formed() {
        for m in [
            ResidencyModel::ddr4_2400(),
            ResidencyModel::ddr4_3200(),
            ResidencyModel::ddr5_4800(),
            ResidencyModel::ddr5_6400(),
            ResidencyModel::mrdimm_8800(),
        ] {
            assert!(m.powers.self_refresh_w < m.powers.precharge_standby_w);
            assert!(m.powers.precharge_standby_w < m.powers.active_standby_w);
            assert!(m.edges.act_pre_nj > 0.0);
            assert!(m.edges.read_nj > 0.0 && m.edges.write_nj > 0.0);
            assert!(m.edges.refresh_nj > m.edges.act_pre_nj);
        }
    }
}
