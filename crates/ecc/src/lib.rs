//! ECC substrate for the Hetero-DMR reproduction.
//!
//! Server memory modules carry dedicated ECC devices; the CPU-side
//! controller computes and checks the code. This crate implements that
//! stack from the field arithmetic up:
//!
//! * [`gf256`] — GF(2⁸) arithmetic with compile-time tables,
//! * [`rs`] — systematic Reed-Solomon encode, syndrome-based
//!   detection-only decode, and full Berlekamp-Massey correction,
//! * [`bamboo`] — the Bamboo-ECC-style 64-byte block codec with
//!   address incorporation used by Hetero-DMR (Section III-B of the
//!   paper),
//! * [`erasure`] — known-position (chipkill-style) decoding: a dead
//!   device's positions are known, doubling the correction budget,
//! * [`mod@inject`] — the out-of-spec error taxonomy (bit flips through
//!   full-block and wrong-address errors),
//! * [`sdc`] — the silent-data-corruption budget arithmetic behind the
//!   per-epoch error threshold (~2.1 M detected errors/hour for a
//!   billion-year mean time to SDC),
//! * [`tally`] — telemetry-backed CE/UE/SDC ledgers accounting for
//!   every injected error's eventual fate.
//!
//! # Example
//!
//! ```
//! use ecc::bamboo::{BlockCodec, DetectOutcome};
//!
//! let codec = BlockCodec::new();
//! let data = [7u8; 64];
//! let mut block = codec.encode(0x1000, &data);
//!
//! // A copy read from an unsafely fast module is checked with the
//! // detection-only decode…
//! assert_eq!(codec.detect(0x1000, &block), DetectOutcome::Clean);
//!
//! // …and a corrupted copy is flagged, never miscorrected.
//! block.data[3] ^= 0xFF;
//! assert_eq!(codec.detect(0x1000, &block), DetectOutcome::Detected);
//! ```

pub mod bamboo;
pub mod erasure;
pub mod gf256;
pub mod inject;
pub mod rs;
pub mod sdc;
pub mod tally;

pub use bamboo::{BlockCodec, DetectOutcome, EccBlock, BLOCK_DATA_BYTES, BLOCK_ECC_BYTES};
pub use erasure::ErasureDecoder;
pub use inject::{inject, ErrorModel, Injection};
pub use rs::{ReedSolomon, RsError};
pub use tally::ErrorTally;
