//! Bamboo-ECC-style block codec for 64-byte memory blocks.
//!
//! Following Section III-B of the paper:
//!
//! * all 64 data bytes of a block are protected together by eight
//!   Reed-Solomon ECC bytes (Bamboo-ECC [Kim+, HPCA'15]);
//! * the block's *address* is incorporated into the code (similar to
//!   resilient die-stacked caches [Sim+, ISCA'13]) so address-bus
//!   errors — the block coming back from the wrong location — are
//!   detected too;
//! * for copies, decode stops at detection ([`BlockCodec::detect`]);
//!   for originals, the conventional detect+correct decode is used
//!   ([`BlockCodec::correct`]).
//!
//! Encoding is identical for originals and copies, so a broadcast write
//! can place byte-identical content (data + ECC) in both modules.

use crate::rs::{ReedSolomon, RsError};

/// Bytes of user data per memory block.
pub const BLOCK_DATA_BYTES: usize = 64;

/// ECC bytes per memory block (one x8 ECC device's share of a burst).
pub const BLOCK_ECC_BYTES: usize = 8;

/// A 64-byte block together with its eight ECC bytes, as stored in a
/// rank's data + ECC devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccBlock {
    /// The 64 data bytes.
    pub data: [u8; BLOCK_DATA_BYTES],
    /// The eight Reed-Solomon check bytes.
    pub ecc: [u8; BLOCK_ECC_BYTES],
}

/// Result of a detection-only decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectOutcome {
    /// Syndromes were all zero: no error detected.
    Clean,
    /// At least one nonzero syndrome: error detected; the caller must
    /// recover from the original block.
    Detected,
}

/// Encoder/decoder for [`EccBlock`]s with address incorporation.
#[derive(Debug, Clone)]
pub struct BlockCodec {
    rs: ReedSolomon,
}

impl Default for BlockCodec {
    fn default() -> Self {
        BlockCodec::new()
    }
}

impl BlockCodec {
    /// Creates the codec (RS with eight parity symbols).
    pub fn new() -> BlockCodec {
        BlockCodec {
            rs: ReedSolomon::new(BLOCK_ECC_BYTES),
        }
    }

    /// Encodes `data` stored at `address` into a protected block.
    ///
    /// The address participates in the parity computation but is not
    /// stored — both encoder and decoder know which address they are
    /// accessing, so a mismatch surfaces as nonzero syndromes.
    pub fn encode(&self, address: u64, data: &[u8; BLOCK_DATA_BYTES]) -> EccBlock {
        let message = Self::message(address, data);
        let parity = self.rs.parity_of(&message);
        let mut ecc = [0u8; BLOCK_ECC_BYTES];
        ecc.copy_from_slice(&parity);
        EccBlock { data: *data, ecc }
    }

    /// Detection-only decode (the Hetero-DMR copy path): checks the
    /// syndromes and **never** attempts correction, so it can never
    /// miscorrect.
    pub fn detect(&self, address: u64, block: &EccBlock) -> DetectOutcome {
        let message = Self::message(address, &block.data);
        if self.rs.detect(&message, &block.ecc) {
            DetectOutcome::Detected
        } else {
            DetectOutcome::Clean
        }
    }

    /// Conventional detect+correct decode (the original-block path).
    /// Corrects up to four symbol errors in the data/ECC bytes.
    ///
    /// # Errors
    ///
    /// [`RsError::Uncorrectable`] when the error pattern exceeds the
    /// correction capability, or when correction would have to alter
    /// the (virtual, known-good) address symbols — which indicates the
    /// block was fetched from the wrong address and the data cannot be
    /// trusted.
    pub fn correct(&self, address: u64, block: &mut EccBlock) -> Result<usize, RsError> {
        let mut message = Self::message(address, &block.data);
        let mut parity = block.ecc;
        let fixed = self.rs.correct(&mut message, &mut parity)?;
        // The address symbols are known-correct at the decoder; if the
        // "correction" touched them, the true error exceeded the code.
        if message[..8] != address.to_be_bytes() {
            return Err(RsError::Uncorrectable);
        }
        block.data.copy_from_slice(&message[8..]);
        block.ecc = parity;
        Ok(fixed)
    }

    fn message(address: u64, data: &[u8; BLOCK_DATA_BYTES]) -> Vec<u8> {
        let mut message = Vec::with_capacity(8 + BLOCK_DATA_BYTES);
        message.extend_from_slice(&address.to_be_bytes());
        message.extend_from_slice(data);
        message
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn block(rng: &mut StdRng) -> [u8; 64] {
        let mut data = [0u8; 64];
        rng.fill(&mut data[..]);
        data
    }

    #[test]
    fn clean_round_trip() {
        let codec = BlockCodec::new();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..16 {
            let addr: u64 = rng.random();
            let data = block(&mut rng);
            let enc = codec.encode(addr, &data);
            assert_eq!(codec.detect(addr, &enc), DetectOutcome::Clean);
        }
    }

    #[test]
    fn address_mismatch_is_detected() {
        // An address-bus error returns data from location B when the
        // CPU asked for A; the incorporated address flags it.
        let codec = BlockCodec::new();
        let mut rng = StdRng::seed_from_u64(11);
        let data = block(&mut rng);
        let enc = codec.encode(0x1000, &data);
        assert_eq!(codec.detect(0x1040, &enc), DetectOutcome::Detected);
        // Correction must refuse rather than "fix" the address.
        let mut b = enc;
        assert_eq!(codec.correct(0x1040, &mut b), Err(RsError::Uncorrectable));
    }

    #[test]
    fn detects_errors_in_ecc_bytes_themselves() {
        let codec = BlockCodec::new();
        let mut rng = StdRng::seed_from_u64(12);
        let data = block(&mut rng);
        let mut enc = codec.encode(7, &data);
        for i in 0..BLOCK_ECC_BYTES {
            let mut b = enc;
            b.ecc[i] ^= 0xFF;
            assert_eq!(codec.detect(7, &b), DetectOutcome::Detected);
        }
        // All eight ECC bytes corrupted at once: still detected (the
        // paper: "even if some or all errors occur in the ECC bytes").
        for e in enc.ecc.iter_mut() {
            *e ^= 0xA5;
        }
        assert_eq!(codec.detect(7, &enc), DetectOutcome::Detected);
    }

    #[test]
    fn corrects_small_errors_in_originals() {
        let codec = BlockCodec::new();
        let mut rng = StdRng::seed_from_u64(13);
        let data = block(&mut rng);
        let enc = codec.encode(42, &data);
        for errors in 1..=4usize {
            let mut b = enc;
            for i in 0..errors {
                b.data[i * 13] ^= 0x3C;
            }
            let fixed = codec.correct(42, &mut b).unwrap();
            assert_eq!(fixed, errors);
            assert_eq!(b.data, data);
            assert_eq!(b.ecc, enc.ecc);
        }
    }

    #[test]
    fn eight_byte_burst_always_detected() {
        let codec = BlockCodec::new();
        let mut rng = StdRng::seed_from_u64(14);
        let data = block(&mut rng);
        let enc = codec.encode(99, &data);
        for _ in 0..300 {
            let mut b = enc;
            let start = rng.random_range(0..57usize);
            for i in 0..8 {
                b.data[start + i] ^= rng.random_range(1..=255u8);
            }
            assert_eq!(codec.detect(99, &b), DetectOutcome::Detected);
        }
    }

    #[test]
    fn identical_encoding_for_original_and_copy() {
        // Broadcast writes require the original and the copy to carry
        // byte-identical content, including ECC (Section III-C).
        let codec = BlockCodec::new();
        let data = [0xAB; 64];
        let a = codec.encode(0x8000, &data);
        let b = codec.encode(0x8000, &data);
        assert_eq!(a, b);
    }

    #[test]
    fn full_block_corruption_detected() {
        // An IO error can corrupt a whole block; with 72 corrupted
        // symbols detection is probabilistic (2^-64 escape) — any
        // sampled pattern must be caught.
        let codec = BlockCodec::new();
        let mut rng = StdRng::seed_from_u64(15);
        let data = block(&mut rng);
        let enc = codec.encode(5, &data);
        for _ in 0..100 {
            let mut b = enc;
            rng.fill(&mut b.data[..]);
            rng.fill(&mut b.ecc[..]);
            if b == enc {
                continue;
            }
            assert_eq!(codec.detect(5, &b), DetectOutcome::Detected);
        }
    }
}
