//! Silent-data-corruption budget math (Section III-B of the paper).
//!
//! Eight Reed-Solomon check bytes used purely for detection miss an
//! error wider than eight symbols with probability 2⁻⁶⁴. The paper
//! turns that into a concrete operating rule: count detected errors
//! per one-hour epoch and fall back to specification for the rest of
//! the epoch once the count passes a threshold chosen so that the mean
//! time to SDC stays at one billion years even under the *worst-case*
//! assumption that every error is an 8-byte-plus pattern.

/// Detected 8B+ errors per silent escape: 2⁶⁴
/// (= 18 446 744 073 709 551 616, the constant in the paper).
pub const ERRORS_PER_SDC: f64 = 18_446_744_073_709_551_616.0;

/// Hours per (average Gregorian) year.
pub const HOURS_PER_YEAR: f64 = 8_766.0;

/// The paper's mean-time-to-SDC target: one billion years.
pub const TARGET_MTT_SDC_YEARS: f64 = 1.0e9;

/// Conventional servers' mean-time-to-SDC target (Bossen, 2002),
/// used to express Hetero-DMR's SDC overhead as a ratio.
pub const SERVER_MTT_SDC_YEARS: f64 = 1_000.0;

/// The per-hour detected-error threshold that keeps mean time to SDC
/// at `target_years` under the worst case where every detected error
/// is an 8B+ pattern.
///
/// ```
/// // The paper's ≈2,100,000 errors/hour default:
/// let t = ecc::sdc::epoch_threshold(ecc::sdc::TARGET_MTT_SDC_YEARS);
/// assert!((t - 2.1e6).abs() / 2.1e6 < 0.01);
/// ```
pub fn epoch_threshold(target_years: f64) -> f64 {
    ERRORS_PER_SDC / (target_years * HOURS_PER_YEAR)
}

/// The default per-epoch error budget Hetero-DMR ships with
/// (≈ 2.1 × 10⁶ detected errors per hour).
pub fn default_epoch_threshold() -> u64 {
    epoch_threshold(TARGET_MTT_SDC_YEARS) as u64
}

/// Mean time to SDC, in years, when the system detects
/// `errors_per_hour` 8B+ errors per hour on average.
///
/// Returns `f64::INFINITY` when no errors occur.
pub fn mean_time_to_sdc_years(errors_per_hour: f64) -> f64 {
    if errors_per_hour <= 0.0 {
        f64::INFINITY
    } else {
        ERRORS_PER_SDC / errors_per_hour / HOURS_PER_YEAR
    }
}

/// The system-level SDC overhead of running Hetero-DMR at the default
/// threshold, relative to the conventional 1000-year server target —
/// the paper's "one over one million".
pub fn relative_sdc_overhead() -> f64 {
    SERVER_MTT_SDC_YEARS / TARGET_MTT_SDC_YEARS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_constant() {
        // 2^64 / (1e9 years in hours) ≈ 2.1e6 per the paper.
        let t = default_epoch_threshold();
        assert!(t > 2_000_000 && t < 2_200_000, "threshold {t}");
    }

    #[test]
    fn errors_per_sdc_is_two_to_the_64() {
        assert_eq!(ERRORS_PER_SDC, 2f64.powi(64));
    }

    #[test]
    fn mtt_sdc_inverse_relationship() {
        // At the default threshold, the MTT-SDC is the 1e9-year target.
        let at_threshold = mean_time_to_sdc_years(epoch_threshold(TARGET_MTT_SDC_YEARS));
        assert!((at_threshold - TARGET_MTT_SDC_YEARS).abs() / TARGET_MTT_SDC_YEARS < 1e-9);
        // Half the error rate doubles the MTT-SDC.
        let half = mean_time_to_sdc_years(epoch_threshold(TARGET_MTT_SDC_YEARS) / 2.0);
        assert!((half - 2.0 * TARGET_MTT_SDC_YEARS).abs() / TARGET_MTT_SDC_YEARS < 1e-9);
    }

    #[test]
    fn zero_errors_means_never() {
        assert_eq!(mean_time_to_sdc_years(0.0), f64::INFINITY);
    }

    #[test]
    fn overhead_is_one_in_a_million() {
        assert!((relative_sdc_overhead() - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn measured_error_rates_stay_under_threshold() {
        // Section II-C: even the worst measured per-module error rates
        // are orders of magnitude below the ~2.1M/hour budget, which is
        // why Hetero-DMR "can be active ~100% of the time" at 23 °C.
        let worst_measured_per_hour = 10_000.0; // pessimistic bound
        assert!(worst_measured_per_hour < default_epoch_threshold() as f64);
    }
}
