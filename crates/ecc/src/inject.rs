//! Error injection for blocks read from unsafely fast modules.
//!
//! Section III of the paper emphasizes that operating memory beyond
//! specification can produce *any* error pattern — single bit flips,
//! multi-byte bursts, full-block IO errors, address errors, even losing
//! a whole row to a misinterpreted command. The injector models that
//! taxonomy so tests and simulations can exercise the recovery path
//! against each class.

use crate::bamboo::{EccBlock, BLOCK_DATA_BYTES, BLOCK_ECC_BYTES};
use rand::Rng;

/// A class of memory error caused by out-of-spec operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorModel {
    /// A single bit flip in the data or ECC bytes (classic timing
    /// violation on one DQ line).
    SingleBit,
    /// One whole byte corrupted (one x8 device's burst slice).
    SingleByte,
    /// A contiguous burst of `n` corrupted bytes (IO/crosstalk error).
    ByteBurst(usize),
    /// The entire block (data + ECC) replaced with garbage.
    FullBlock,
    /// The block is returned from a *different* address (command/
    /// address bus error). The data is internally consistent but
    /// belongs elsewhere — only address-incorporated ECC catches this.
    WrongAddress,
}

impl ErrorModel {
    /// Every modelled class, for exhaustive testing.
    pub const ALL: [ErrorModel; 5] = [
        ErrorModel::SingleBit,
        ErrorModel::SingleByte,
        ErrorModel::ByteBurst(4),
        ErrorModel::FullBlock,
        ErrorModel::WrongAddress,
    ];

    /// Whether the eight ECC bytes *guarantee* detection of this class
    /// (≤8 corrupted symbols) or only detect it probabilistically
    /// (1 − 2⁻⁶⁴).
    pub fn detection_guaranteed(self) -> bool {
        match self {
            ErrorModel::SingleBit | ErrorModel::SingleByte => true,
            ErrorModel::ByteBurst(n) => n <= BLOCK_ECC_BYTES,
            // Full-block and wrong-address errors can exceed eight
            // symbols (wrong-address corrupts the virtual address
            // symbols plus potentially all data symbols).
            ErrorModel::FullBlock | ErrorModel::WrongAddress => false,
        }
    }
}

/// Outcome of injecting an error into a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// The address the read *appears* to come from (differs from the
    /// requested one only for [`ErrorModel::WrongAddress`]).
    pub effective_address: u64,
    /// How many bytes of the block were altered (0 for pure address
    /// errors).
    pub bytes_corrupted: usize,
}

/// Injects an error of class `model` into `block` (which was read from
/// `address`), using `rng` for positions and values.
///
/// Returns what happened so callers can assert on detection coverage.
pub fn inject<R: Rng + ?Sized>(
    rng: &mut R,
    model: ErrorModel,
    address: u64,
    block: &mut EccBlock,
) -> Injection {
    let total = BLOCK_DATA_BYTES + BLOCK_ECC_BYTES;
    match model {
        ErrorModel::SingleBit => {
            let pos = rng.random_range(0..total);
            let bit = 1u8 << rng.random_range(0..8);
            flip(block, pos, bit);
            Injection {
                effective_address: address,
                bytes_corrupted: 1,
            }
        }
        ErrorModel::SingleByte => {
            let pos = rng.random_range(0..total);
            flip(block, pos, nonzero(rng));
            Injection {
                effective_address: address,
                bytes_corrupted: 1,
            }
        }
        ErrorModel::ByteBurst(n) => {
            let n = n.clamp(1, total);
            let start = rng.random_range(0..=total - n);
            for i in 0..n {
                flip(block, start + i, nonzero(rng));
            }
            Injection {
                effective_address: address,
                bytes_corrupted: n,
            }
        }
        ErrorModel::FullBlock => {
            rng.fill(&mut block.data[..]);
            rng.fill(&mut block.ecc[..]);
            Injection {
                effective_address: address,
                bytes_corrupted: total,
            }
        }
        ErrorModel::WrongAddress => {
            // The device decoded a different row/column: same block
            // format, different location. Model as an aligned nearby
            // block address.
            let offset = (rng.random_range(1..=16u64)) * 64;
            let effective = if rng.random_bool(0.5) {
                address.wrapping_add(offset)
            } else {
                address.wrapping_sub(offset)
            };
            Injection {
                effective_address: effective,
                bytes_corrupted: 0,
            }
        }
    }
}

fn flip(block: &mut EccBlock, pos: usize, mask: u8) {
    if pos < BLOCK_DATA_BYTES {
        block.data[pos] ^= mask;
    } else {
        block.ecc[pos - BLOCK_DATA_BYTES] ^= mask;
    }
}

fn nonzero<R: Rng + ?Sized>(rng: &mut R) -> u8 {
    loop {
        let v: u8 = rng.random();
        if v != 0 {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bamboo::{BlockCodec, DetectOutcome};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_class_is_detected_by_detection_only_decode() {
        let codec = BlockCodec::new();
        let mut rng = StdRng::seed_from_u64(20);
        let data = [0x5A; 64];
        let addr = 0x00DE_ADBE_EFC0;
        for model in ErrorModel::ALL {
            for _ in 0..100 {
                let mut b = codec.encode(addr, &data);
                let inj = inject(&mut rng, model, addr, &mut b);
                let changed = inj.effective_address != addr || {
                    let clean = codec.encode(addr, &data);
                    b != clean
                };
                if !changed {
                    continue; // full-block garbage coincided (never in practice)
                }
                // The read is checked against the address the CPU
                // *requested* using the content the device *returned*.
                // For wrong-address errors, the returned content was
                // encoded at the effective address.
                let stored = if inj.effective_address != addr {
                    codec.encode(inj.effective_address, &data)
                } else {
                    b
                };
                assert_eq!(
                    codec.detect(addr, &stored),
                    DetectOutcome::Detected,
                    "{model:?} escaped detection"
                );
            }
        }
    }

    #[test]
    fn detection_guarantee_classification() {
        assert!(ErrorModel::SingleBit.detection_guaranteed());
        assert!(ErrorModel::SingleByte.detection_guaranteed());
        assert!(ErrorModel::ByteBurst(8).detection_guaranteed());
        assert!(!ErrorModel::ByteBurst(9).detection_guaranteed());
        assert!(!ErrorModel::FullBlock.detection_guaranteed());
        assert!(!ErrorModel::WrongAddress.detection_guaranteed());
    }

    #[test]
    fn injection_reports_extent() {
        let mut rng = StdRng::seed_from_u64(21);
        let codec = BlockCodec::new();
        let mut b = codec.encode(0, &[0; 64]);
        let inj = inject(&mut rng, ErrorModel::ByteBurst(4), 0, &mut b);
        assert_eq!(inj.bytes_corrupted, 4);
        assert_eq!(inj.effective_address, 0);

        let mut b = codec.encode(0x4000, &[0; 64]);
        let inj = inject(&mut rng, ErrorModel::WrongAddress, 0x4000, &mut b);
        assert_ne!(inj.effective_address, 0x4000);
        assert_eq!(inj.effective_address % 64, 0);
        assert_eq!(inj.bytes_corrupted, 0);
    }

    #[test]
    fn single_bit_flips_exactly_one_bit() {
        let mut rng = StdRng::seed_from_u64(22);
        let codec = BlockCodec::new();
        let clean = codec.encode(1, &[0x11; 64]);
        for _ in 0..50 {
            let mut b = clean;
            inject(&mut rng, ErrorModel::SingleBit, 1, &mut b);
            let diff_bits: u32 = b
                .data
                .iter()
                .zip(clean.data.iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .chain(
                    b.ecc
                        .iter()
                        .zip(clean.ecc.iter())
                        .map(|(a, b)| (a ^ b).count_ones()),
                )
                .sum();
            assert_eq!(diff_bits, 1);
        }
    }
}
