//! Running CE / UE / SDC tallies over the error-handling pipeline.
//!
//! The paper's reliability argument is a bookkeeping argument: every
//! out-of-spec error is either corrected from the in-spec original
//! (a CE from the system's point of view), reported as uncorrectable
//! (UE, the same event a conventional server would report), or —
//! with probability 2⁻⁶⁴ per 8B+ pattern — escapes silently (SDC).
//! [`ErrorTally`] keeps those three ledgers as telemetry counters so
//! protocol engines and Monte-Carlo drivers can account for every
//! injected error.

use crate::inject::ErrorModel;
use telemetry::{Counter, Scope};

/// Telemetry-backed error ledgers. Handles start detached (usable on
/// their own); [`ErrorTally::bind`] folds them into a registry scope.
#[derive(Debug, Default)]
pub struct ErrorTally {
    /// Errors injected into fast-path reads, by the injector.
    injected: Counter,
    /// Injected errors whose class guarantees detection (≤8 symbols).
    injected_guaranteed: Counter,
    /// Corrected errors: detected, then recovered from a good source.
    ce: Counter,
    /// Uncorrectable errors: detected, no good source available.
    ue: Counter,
    /// Silent escapes: an error was present but the decode saw clean.
    sdc: Counter,
}

impl ErrorTally {
    /// Rebinds every ledger into `scope`, folding in values recorded
    /// while detached.
    pub fn bind(&mut self, scope: &Scope) {
        let rebind = |name: &str, old: &Counter| {
            let fresh = scope.counter(name);
            fresh.add(old.get());
            fresh
        };
        self.injected = rebind("injected", &self.injected);
        self.injected_guaranteed = rebind("injected_guaranteed", &self.injected_guaranteed);
        self.ce = rebind("ce", &self.ce);
        self.ue = rebind("ue", &self.ue);
        self.sdc = rebind("sdc", &self.sdc);
    }

    /// Detached deep copy (same counts, independent futures).
    pub fn fork(&self) -> ErrorTally {
        ErrorTally {
            injected: self.injected.fork(),
            injected_guaranteed: self.injected_guaranteed.fork(),
            ce: self.ce.fork(),
            ue: self.ue.fork(),
            sdc: self.sdc.fork(),
        }
    }

    /// Records one injected error of class `model`.
    pub fn note_injected(&self, model: ErrorModel) {
        self.injected.inc();
        if model.detection_guaranteed() {
            self.injected_guaranteed.inc();
        }
    }

    /// Records a corrected error (detected + recovered).
    pub fn note_ce(&self) {
        self.ce.inc();
    }

    /// Records an uncorrectable error (detected, unrecoverable).
    pub fn note_ue(&self) {
        self.ue.inc();
    }

    /// Records a silent escape (error present, decode saw clean).
    pub fn note_sdc(&self) {
        self.sdc.inc();
    }

    /// Total injected errors.
    pub fn injected(&self) -> u64 {
        self.injected.get()
    }

    /// Corrected-error count.
    pub fn ce(&self) -> u64 {
        self.ce.get()
    }

    /// Uncorrectable-error count.
    pub fn ue(&self) -> u64 {
        self.ue.get()
    }

    /// Silent-escape count.
    pub fn sdc(&self) -> u64 {
        self.sdc.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::Registry;

    #[test]
    fn ledgers_accumulate() {
        let t = ErrorTally::default();
        t.note_injected(ErrorModel::SingleByte);
        t.note_injected(ErrorModel::FullBlock);
        t.note_ce();
        t.note_ce();
        t.note_ue();
        assert_eq!(t.injected(), 2);
        assert_eq!(t.ce(), 2);
        assert_eq!(t.ue(), 1);
        assert_eq!(t.sdc(), 0);
    }

    #[test]
    fn bind_folds_prior_counts_into_registry() {
        let mut t = ErrorTally::default();
        t.note_injected(ErrorModel::SingleBit);
        t.note_ce();
        let registry = Registry::new();
        t.bind(&registry.scope("ecc"));
        t.note_ce();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ecc.injected"), 1);
        assert_eq!(snap.counter("ecc.ce"), 2);
        assert_eq!(snap.counter("ecc.injected_guaranteed"), 1);
    }

    #[test]
    fn fork_detaches() {
        let t = ErrorTally::default();
        t.note_ue();
        let f = t.fork();
        f.note_ue();
        assert_eq!(t.ue(), 1);
        assert_eq!(f.ue(), 2);
    }
}
