//! Arithmetic over GF(2⁸), the symbol field of server-memory
//! Reed-Solomon codes.
//!
//! Uses the conventional primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11D) with generator α = 2. Exp/log
//! tables are built at compile time, so field operations are a table
//! lookup each.

/// The primitive polynomial 0x11D reduced modulo x⁸.
const PRIMITIVE_POLY: u16 = 0x11D;

/// α^i for i in 0..510 (doubled to avoid a modulo in `mul`).
const EXP: [u8; 510] = build_exp();

/// log_α(x) for x in 1..=255; LOG[0] is unused.
const LOG: [u8; 256] = build_log();

const fn build_exp() -> [u8; 510] {
    let mut table = [0u8; 510];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        table[i] = x as u8;
        table[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    table
}

const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        table[exp[i] as usize] = i as u8;
        i += 1;
    }
    table
}

/// An element of GF(2⁸).
///
/// ```
/// use ecc::gf256::Gf256;
///
/// let a = Gf256::new(0x53);
/// let b = Gf256::new(0xCA);
/// // Multiplication distributes over the field's XOR addition.
/// let c = Gf256::new(7);
/// assert_eq!(c * (a + b), c * a + c * b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The field generator α.
    pub const ALPHA: Gf256 = Gf256(2);

    /// Wraps a raw byte as a field element.
    pub const fn new(value: u8) -> Gf256 {
        Gf256(value)
    }

    /// The raw byte value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// α^i.
    pub fn alpha_pow(i: usize) -> Gf256 {
        Gf256(EXP[i % 255])
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero, which has no inverse.
    pub fn inverse(self) -> Gf256 {
        assert!(self.0 != 0, "zero has no multiplicative inverse in GF(256)");
        Gf256(EXP[255 - LOG[self.0 as usize] as usize])
    }

    /// Raises this element to an arbitrary power (0⁰ = 1 by convention).
    pub fn pow(self, exponent: usize) -> Gf256 {
        if self.0 == 0 {
            return if exponent == 0 {
                Gf256::ONE
            } else {
                Gf256::ZERO
            };
        }
        let log = LOG[self.0 as usize] as usize;
        Gf256(EXP[(log * exponent) % 255])
    }
}

impl std::ops::Add for Gf256 {
    type Output = Gf256;
    // Field addition in characteristic 2 *is* XOR; the operator
    // genuinely implements GF(2⁸) addition.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

impl std::ops::AddAssign for Gf256 {
    #[allow(clippy::suspicious_op_assign_impl)]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl std::ops::Sub for Gf256 {
    type Output = Gf256;
    // Characteristic 2: subtraction IS addition (every element is its
    // own additive inverse).
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: Gf256) -> Gf256 {
        self + rhs
    }
}

impl std::ops::Mul for Gf256 {
    type Output = Gf256;
    fn mul(self, rhs: Gf256) -> Gf256 {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        Gf256(EXP[LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize])
    }
}

impl std::ops::Div for Gf256 {
    type Output = Gf256;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: Gf256) -> Gf256 {
        assert!(rhs.0 != 0, "division by zero in GF(256)");
        if self.0 == 0 {
            return Gf256::ZERO;
        }
        let diff = 255 + LOG[self.0 as usize] as usize - LOG[rhs.0 as usize] as usize;
        Gf256(EXP[diff % 255])
    }
}

impl std::fmt::Display for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(value: u8) -> Gf256 {
        Gf256(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_xor() {
        assert_eq!(Gf256(0x53) + Gf256(0xCA), Gf256(0x99));
        assert_eq!(Gf256(7) + Gf256(7), Gf256::ZERO);
    }

    #[test]
    fn known_multiplication() {
        // α⁸ = α⁷·α = 0x80·2 reduces by 0x11D to 0x1D.
        assert_eq!(Gf256(2) * Gf256(0x80), Gf256(0x1D));
        assert_eq!(Gf256::alpha_pow(8), Gf256(0x1D));
        // One is the multiplicative identity.
        assert_eq!(Gf256(0xC3) * Gf256::ONE, Gf256(0xC3));
    }

    #[test]
    fn alpha_generates_the_field() {
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = Gf256::alpha_pow(i).value();
            assert!(!seen[v as usize], "alpha^{i} repeated");
            seen[v as usize] = true;
        }
        assert!(!seen[0], "alpha powers never hit zero");
    }

    #[test]
    fn inverse_round_trip_all_nonzero() {
        for v in 1..=255u8 {
            let x = Gf256(v);
            assert_eq!(x * x.inverse(), Gf256::ONE, "{v}");
            assert_eq!(x / x, Gf256::ONE);
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for v in [1u8, 2, 3, 0x53, 0xFF] {
            let x = Gf256(v);
            let mut acc = Gf256::ONE;
            for e in 0..20 {
                assert_eq!(x.pow(e), acc, "value {v} exponent {e}");
                acc = acc * x;
            }
        }
    }

    #[test]
    fn zero_behaviour() {
        assert_eq!(Gf256::ZERO * Gf256(0x42), Gf256::ZERO);
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(3), Gf256::ZERO);
        assert_eq!(Gf256::ZERO / Gf256(9), Gf256::ZERO);
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn zero_has_no_inverse() {
        let _ = Gf256::ZERO.inverse();
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256(1) / Gf256::ZERO;
    }

    #[test]
    fn multiplication_is_commutative_and_associative_sampled() {
        let samples = [0u8, 1, 2, 3, 0x35, 0x53, 0x8E, 0xCA, 0xFF];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(Gf256(a) * Gf256(b), Gf256(b) * Gf256(a));
                for &c in &samples {
                    assert_eq!(
                        (Gf256(a) * Gf256(b)) * Gf256(c),
                        Gf256(a) * (Gf256(b) * Gf256(c))
                    );
                    // Distributivity over addition.
                    assert_eq!(
                        Gf256(a) * (Gf256(b) + Gf256(c)),
                        Gf256(a) * Gf256(b) + Gf256(a) * Gf256(c)
                    );
                }
            }
        }
    }
}
