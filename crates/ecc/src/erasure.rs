//! Erasure (known-position) Reed-Solomon decoding.
//!
//! The paper's related-work discussion contrasts Hetero-DMR's
//! detection-only decode with conventional chipkill-class protection
//! (Intel x4 SDDC, AMD BKDG): when a whole DRAM device dies, the
//! failing *positions* are known — every burst slice the dead chip
//! contributed — and an RS code with `r` check symbols can then
//! correct up to `r` erasures, twice its blind-error budget. This
//! module supplies that decode so the crate covers the full
//! server-memory ECC design space:
//!
//! * blind errors: correct ⌊r/2⌋ ([`crate::rs::ReedSolomon::correct`]),
//! * erasures: correct `r` ([`ErasureDecoder::correct_erasures`]),
//! * detection only: detect `r` ([`crate::rs::ReedSolomon::detect`]) —
//!   what Hetero-DMR uses for copies.

use crate::gf256::Gf256;
use crate::rs::{ReedSolomon, RsError};

/// Known-position decoder on top of a [`ReedSolomon`] code.
#[derive(Debug, Clone)]
pub struct ErasureDecoder {
    rs: ReedSolomon,
    parity: usize,
}

impl ErasureDecoder {
    /// Wraps a code with `parity` check symbols.
    ///
    /// # Panics
    ///
    /// Panics if `parity` is zero or ≥ 255 (propagated from
    /// [`ReedSolomon::new`]).
    pub fn new(parity: usize) -> ErasureDecoder {
        ErasureDecoder {
            rs: ReedSolomon::new(parity),
            parity,
        }
    }

    /// The underlying code.
    pub fn code(&self) -> &ReedSolomon {
        &self.rs
    }

    /// Maximum erasures this decoder can repair (= parity symbols).
    pub fn correctable_erasures(&self) -> usize {
        self.parity
    }

    /// Repairs up to `parity` erased symbols at the given codeword
    /// positions (0 = first message symbol; positions ≥ message length
    /// index into the parity). The erased slots' current contents are
    /// ignored.
    ///
    /// # Errors
    ///
    /// [`RsError::Uncorrectable`] when more positions are supplied
    /// than the code can repair, when a position is out of range, or
    /// when the repaired word still fails the syndrome check (which
    /// means errors exist *outside* the declared erasures).
    pub fn correct_erasures(
        &self,
        message: &mut [u8],
        parity: &mut [u8],
        erased_positions: &[usize],
    ) -> Result<(), RsError> {
        let n = message.len() + parity.len();
        if erased_positions.len() > self.parity || erased_positions.iter().any(|&p| p >= n) {
            return Err(RsError::Uncorrectable);
        }
        if erased_positions.is_empty() {
            return if self.rs.detect(message, parity) {
                Err(RsError::Uncorrectable)
            } else {
                Ok(())
            };
        }

        // Zero the erased slots so their contribution to the syndromes
        // is exactly the (unknown) erased value.
        for &p in erased_positions {
            if p < message.len() {
                message[p] = 0;
            } else {
                parity[p - message.len()] = 0;
            }
        }
        let syndromes = self.rs.syndromes(message, parity);

        // Solve the linear system Σ_i e_i · X_i^j = S_j for the
        // erasure magnitudes e_i, where X_i = α^(n-1-pos_i). The
        // matrix is Vandermonde in the X_i, hence invertible while the
        // X_i are distinct; Gaussian elimination over GF(2⁸) suffices
        // at these sizes.
        let k = erased_positions.len();
        let locators: Vec<Gf256> = erased_positions
            .iter()
            .map(|&p| Gf256::alpha_pow(n - 1 - p))
            .collect();
        // Duplicate positions make the system singular.
        for i in 0..k {
            for j in (i + 1)..k {
                if locators[i] == locators[j] {
                    return Err(RsError::Uncorrectable);
                }
            }
        }
        let mut matrix = vec![vec![Gf256::ZERO; k + 1]; k];
        for (j, row) in matrix.iter_mut().enumerate() {
            for (i, &x) in locators.iter().enumerate() {
                row[i] = x.pow(j);
            }
            row[k] = syndromes[j];
        }
        let magnitudes = solve(&mut matrix).ok_or(RsError::Uncorrectable)?;

        for (&p, &e) in erased_positions.iter().zip(&magnitudes) {
            if p < message.len() {
                message[p] = e.value();
            } else {
                parity[p - message.len()] = e.value();
            }
        }
        // Residual errors outside the declared erasures surface here.
        if self.rs.detect(message, parity) {
            return Err(RsError::Uncorrectable);
        }
        Ok(())
    }
}

/// Gaussian elimination over GF(2⁸) on an augmented k×(k+1) matrix.
fn solve(matrix: &mut [Vec<Gf256>]) -> Option<Vec<Gf256>> {
    let k = matrix.len();
    for col in 0..k {
        let pivot = (col..k).find(|&r| matrix[r][col] != Gf256::ZERO)?;
        matrix.swap(col, pivot);
        let inv = matrix[col][col].inverse();
        for cell in &mut matrix[col][col..] {
            *cell = *cell * inv;
        }
        let pivot_row = matrix[col][col..].to_vec();
        for (r, row) in matrix.iter_mut().enumerate() {
            if r != col && row[col] != Gf256::ZERO {
                let factor = row[col];
                for (cell, &p) in row[col..].iter_mut().zip(&pivot_row) {
                    *cell += factor * p;
                }
            }
        }
    }
    Some((0..k).map(|r| matrix[r][k]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(seed: u64) -> (ErasureDecoder, Vec<u8>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dec = ErasureDecoder::new(8);
        let message: Vec<u8> = (0..64).map(|_| rng.random()).collect();
        let parity = dec.code().parity_of(&message);
        (dec, message, parity)
    }

    #[test]
    fn repairs_up_to_eight_erasures() {
        let mut rng = StdRng::seed_from_u64(1);
        for erasures in 1..=8usize {
            let (dec, message, parity) = setup(erasures as u64);
            let mut m = message.clone();
            let mut p = parity.clone();
            let mut positions = Vec::new();
            while positions.len() < erasures {
                let pos = rng.random_range(0..72usize);
                if !positions.contains(&pos) {
                    positions.push(pos);
                }
            }
            // Trash the erased slots.
            for &pos in &positions {
                if pos < 64 {
                    m[pos] ^= rng.random_range(1..=255u8);
                } else {
                    p[pos - 64] ^= rng.random_range(1..=255u8);
                }
            }
            dec.correct_erasures(&mut m, &mut p, &positions).unwrap();
            assert_eq!(m, message, "{erasures} erasures");
            assert_eq!(p, parity);
        }
    }

    #[test]
    fn dead_chip_burst_is_repairable() {
        // An x8 device contributes 8 consecutive bytes of a 64-byte
        // burst: a dead chip = 8 known erasures — exactly the chipkill
        // case conventional SDDC handles and blind correction cannot
        // (8 > ⌊8/2⌋).
        let (dec, message, parity) = setup(42);
        let mut m = message.clone();
        let mut p = parity.clone();
        let chip_slice: Vec<usize> = (16..24).collect();
        for &pos in &chip_slice {
            m[pos] = 0xFF;
        }
        // Blind correction fails...
        assert!(dec.code().correct(&mut m.clone(), &mut p.clone()).is_err());
        // ...erasure correction succeeds.
        dec.correct_erasures(&mut m, &mut p, &chip_slice).unwrap();
        assert_eq!(m, message);
    }

    #[test]
    fn nine_erasures_rejected() {
        let (dec, mut message, mut parity) = setup(7);
        let positions: Vec<usize> = (0..9).collect();
        assert_eq!(
            dec.correct_erasures(&mut message, &mut parity, &positions),
            Err(RsError::Uncorrectable)
        );
    }

    #[test]
    fn out_of_range_position_rejected() {
        let (dec, mut message, mut parity) = setup(8);
        assert_eq!(
            dec.correct_erasures(&mut message, &mut parity, &[72]),
            Err(RsError::Uncorrectable)
        );
    }

    #[test]
    fn duplicate_positions_rejected() {
        let (dec, mut message, mut parity) = setup(9);
        message[3] ^= 1;
        assert_eq!(
            dec.correct_erasures(&mut message, &mut parity, &[3, 3]),
            Err(RsError::Uncorrectable)
        );
    }

    #[test]
    fn errors_outside_erasures_are_detected_not_hidden() {
        let (dec, message, parity) = setup(10);
        let mut m = message.clone();
        let mut p = parity.clone();
        m[5] = 0; // declared erasure
        m[40] ^= 0x20; // undeclared error
        let result = dec.correct_erasures(&mut m, &mut p, &[5]);
        assert_eq!(result, Err(RsError::Uncorrectable));
    }

    #[test]
    fn clean_word_with_no_erasures_is_ok() {
        let (dec, mut message, mut parity) = setup(11);
        assert!(dec.correct_erasures(&mut message, &mut parity, &[]).is_ok());
    }

    #[test]
    fn erasures_in_parity_repairable() {
        let (dec, message, parity) = setup(12);
        let mut m = message.clone();
        let mut p = parity.clone();
        let positions: Vec<usize> = (64..72).collect();
        for slot in p.iter_mut() {
            *slot = 0xAA;
        }
        dec.correct_erasures(&mut m, &mut p, &positions).unwrap();
        assert_eq!(p, parity);
        assert_eq!(m, message);
    }
}
