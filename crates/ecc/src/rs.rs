//! Systematic Reed-Solomon codes over GF(2⁸).
//!
//! The paper's Hetero-DMR uses the eight Reed-Solomon ECC bytes of a
//! 64-byte memory block (Bamboo-ECC layout) in two different decodes:
//!
//! * **detect + correct** — the conventional decode used for the
//!   always-in-spec original blocks ([`ReedSolomon::correct`], up to
//!   ⌊r/2⌋ symbol errors via Berlekamp-Massey / Chien / Forney);
//! * **detection-only** — used for the unsafely-fast copies
//!   ([`ReedSolomon::detect`]): decoding stops after the syndrome
//!   check, which detects *all* error patterns of up to `r` symbols
//!   (the code's minimum distance is `r + 1`) and fails to detect a
//!   wider pattern with probability only 2⁻⁶⁴ for r = 8.

use crate::gf256::Gf256;
use std::error::Error;
use std::fmt;

/// Outcome of a detect+correct decode that could not restore the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsError {
    /// More errors than the code can correct (locator degree exceeds
    /// ⌊r/2⌋ or the Chien search found the wrong number of roots).
    Uncorrectable,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::Uncorrectable => write!(f, "uncorrectable symbol errors"),
        }
    }
}

impl Error for RsError {}

/// A systematic Reed-Solomon encoder/decoder with `r` parity symbols.
///
/// The codeword is `message || parity`; total length must not exceed
/// 255 symbols.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    parity: usize,
    /// Generator polynomial, lowest degree coefficient first,
    /// normalized monic (degree `parity`).
    generator: Vec<Gf256>,
}

impl ReedSolomon {
    /// Builds a code with `parity` check symbols.
    ///
    /// # Panics
    ///
    /// Panics if `parity` is zero or greater than 254.
    pub fn new(parity: usize) -> ReedSolomon {
        assert!(parity > 0 && parity < 255, "parity must be in 1..=254");
        // g(x) = Π_{i=0}^{parity-1} (x - α^i), built low-to-high.
        let mut generator = vec![Gf256::ONE];
        for i in 0..parity {
            let root = Gf256::alpha_pow(i);
            let mut next = vec![Gf256::ZERO; generator.len() + 1];
            for (j, &coeff) in generator.iter().enumerate() {
                // (x + root) * coeff·x^j  (char-2: minus == plus)
                next[j + 1] += coeff;
                next[j] += coeff * root;
            }
            generator = next;
        }
        ReedSolomon { parity, generator }
    }

    /// Number of parity symbols.
    pub fn parity(&self) -> usize {
        self.parity
    }

    /// Maximum number of guaranteed-correctable symbol errors.
    pub fn correctable(&self) -> usize {
        self.parity / 2
    }

    /// Maximum number of guaranteed-*detectable* symbol errors when the
    /// code is used for detection only (the Hetero-DMR copy decode).
    pub fn detectable(&self) -> usize {
        self.parity
    }

    /// Computes the `r` parity symbols for `message`.
    ///
    /// # Panics
    ///
    /// Panics if `message.len() + parity` exceeds 255.
    pub fn parity_of(&self, message: &[u8]) -> Vec<u8> {
        assert!(
            message.len() + self.parity <= 255,
            "codeword exceeds GF(256) RS length"
        );
        // Polynomial long division of m(x)·x^r by g(x); the remainder
        // (negated — identity in char 2) is the parity.
        let mut remainder = vec![Gf256::ZERO; self.parity];
        for &byte in message {
            let factor = Gf256::new(byte) + remainder[self.parity - 1];
            // Shift left by one symbol and subtract factor·g(x).
            for i in (1..self.parity).rev() {
                remainder[i] = remainder[i - 1] + factor * self.generator[i];
            }
            remainder[0] = factor * self.generator[0];
        }
        remainder.iter().rev().map(|g| g.value()).collect()
    }

    /// Computes the syndrome vector of `message || parity`.
    ///
    /// All-zero syndromes mean the word is a codeword (no detected
    /// error).
    pub fn syndromes(&self, message: &[u8], parity: &[u8]) -> Vec<Gf256> {
        debug_assert_eq!(parity.len(), self.parity);
        let n = message.len() + parity.len();
        let mut syndromes = Vec::with_capacity(self.parity);
        for j in 0..self.parity {
            let alpha_j = Gf256::alpha_pow(j);
            // Horner evaluation of the codeword polynomial at α^j,
            // highest-degree (first message symbol) first.
            let mut acc = Gf256::ZERO;
            for &byte in message.iter().chain(parity.iter()) {
                acc = acc * alpha_j + Gf256::new(byte);
            }
            let _ = n;
            syndromes.push(acc);
        }
        syndromes
    }

    /// Detection-only decode: returns `true` when an error is detected.
    ///
    /// This is the decode Hetero-DMR applies to copies read from the
    /// unsafely fast Free Module — it never attempts correction, so it
    /// can never *mis*correct.
    pub fn detect(&self, message: &[u8], parity: &[u8]) -> bool {
        self.syndromes(message, parity)
            .iter()
            .any(|s| *s != Gf256::ZERO)
    }

    /// Detect + correct decode (conventional server-memory behaviour,
    /// used for original blocks). Corrects up to ⌊r/2⌋ symbol errors
    /// in place across `message` and `parity`.
    ///
    /// Returns the number of symbols corrected (zero when the word was
    /// already clean).
    ///
    /// # Errors
    ///
    /// [`RsError::Uncorrectable`] when more errors are present than the
    /// code can correct. Note that, as the paper stresses, a pattern of
    /// *more* than ⌊r/2⌋ errors may also silently miscorrect — that is
    /// exactly why Hetero-DMR uses [`ReedSolomon::detect`] for copies.
    pub fn correct(&self, message: &mut [u8], parity: &mut [u8]) -> Result<usize, RsError> {
        let syndromes = self.syndromes(message, parity);
        if syndromes.iter().all(|s| *s == Gf256::ZERO) {
            return Ok(0);
        }
        let lambda = berlekamp_massey(&syndromes);
        let errors = lambda.len() - 1;
        if errors == 0 || errors > self.correctable() {
            return Err(RsError::Uncorrectable);
        }
        let n = message.len() + parity.len();
        // Chien search: position idx (0 = first message symbol) has
        // locator X = α^(n-1-idx); it is an error position when
        // Λ(X⁻¹) = 0.
        let mut positions = Vec::new();
        for idx in 0..n {
            let x_inv = Gf256::alpha_pow(n - 1 - idx).inverse();
            if poly_eval(&lambda, x_inv) == Gf256::ZERO {
                positions.push(idx);
            }
        }
        if positions.len() != errors {
            return Err(RsError::Uncorrectable);
        }
        // Ω(x) = S(x)·Λ(x) mod x^r.
        let omega = poly_mul_mod(&syndromes, &lambda, self.parity);
        // Forney: e = X·Ω(X⁻¹) / Λ'(X⁻¹).
        for &idx in &positions {
            let x = Gf256::alpha_pow(n - 1 - idx);
            let x_inv = x.inverse();
            let denom = poly_eval_derivative(&lambda, x_inv);
            if denom == Gf256::ZERO {
                return Err(RsError::Uncorrectable);
            }
            let magnitude = x * poly_eval(&omega, x_inv) / denom;
            let slot = if idx < message.len() {
                &mut message[idx]
            } else {
                &mut parity[idx - message.len()]
            };
            *slot ^= magnitude.value();
        }
        // Verify the corrected word is a codeword; if not, the error
        // pattern exceeded the design distance.
        if self.detect(message, parity) {
            return Err(RsError::Uncorrectable);
        }
        Ok(errors)
    }
}

/// Berlekamp-Massey: smallest LFSR (error locator Λ, lowest degree
/// first, Λ₀ = 1) generating the syndrome sequence.
fn berlekamp_massey(syndromes: &[Gf256]) -> Vec<Gf256> {
    let mut lambda = vec![Gf256::ONE];
    let mut prev = vec![Gf256::ONE];
    let mut l = 0usize;
    let mut m = 1usize;
    let mut b = Gf256::ONE;
    for n in 0..syndromes.len() {
        let mut delta = syndromes[n];
        for i in 1..=l.min(lambda.len() - 1) {
            delta += lambda[i] * syndromes[n - i];
        }
        if delta == Gf256::ZERO {
            m += 1;
        } else if 2 * l <= n {
            let t = lambda.clone();
            lambda = poly_sub_scaled_shift(&lambda, &prev, delta / b, m);
            l = n + 1 - l;
            prev = t;
            b = delta;
            m = 1;
        } else {
            lambda = poly_sub_scaled_shift(&lambda, &prev, delta / b, m);
            m += 1;
        }
    }
    lambda.truncate(l + 1);
    lambda
}

/// `a - coef·x^shift·b` (char 2: subtraction is addition).
fn poly_sub_scaled_shift(a: &[Gf256], b: &[Gf256], coef: Gf256, shift: usize) -> Vec<Gf256> {
    let mut out = a.to_vec();
    if out.len() < b.len() + shift {
        out.resize(b.len() + shift, Gf256::ZERO);
    }
    for (i, &bi) in b.iter().enumerate() {
        out[i + shift] += coef * bi;
    }
    out
}

/// Evaluates a polynomial (lowest degree first) at `x`.
fn poly_eval(poly: &[Gf256], x: Gf256) -> Gf256 {
    let mut acc = Gf256::ZERO;
    for &coeff in poly.iter().rev() {
        acc = acc * x + coeff;
    }
    acc
}

/// Evaluates the formal derivative of a polynomial at `x`
/// (char 2: only odd-degree terms survive).
fn poly_eval_derivative(poly: &[Gf256], x: Gf256) -> Gf256 {
    let mut acc = Gf256::ZERO;
    for (i, &coeff) in poly.iter().enumerate() {
        if i % 2 == 1 {
            acc += coeff * x.pow(i - 1);
        }
    }
    acc
}

/// `(a·b) mod x^modulus`, all polynomials lowest degree first.
fn poly_mul_mod(a: &[Gf256], b: &[Gf256], modulus: usize) -> Vec<Gf256> {
    let mut out = vec![Gf256::ZERO; modulus];
    for (i, &ai) in a.iter().enumerate() {
        if ai == Gf256::ZERO || i >= modulus {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            if i + j < modulus {
                out[i + j] += ai * bj;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rs8() -> ReedSolomon {
        ReedSolomon::new(8)
    }

    fn random_block(rng: &mut StdRng) -> Vec<u8> {
        (0..64).map(|_| rng.random()).collect()
    }

    #[test]
    fn clean_codeword_has_zero_syndromes() {
        let rs = rs8();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            let msg = random_block(&mut rng);
            let parity = rs.parity_of(&msg);
            assert!(!rs.detect(&msg, &parity));
        }
    }

    #[test]
    fn detects_every_single_byte_error() {
        let rs = rs8();
        let mut rng = StdRng::seed_from_u64(2);
        let msg = random_block(&mut rng);
        let parity = rs.parity_of(&msg);
        for pos in 0..msg.len() + parity.len() {
            let mut m = msg.clone();
            let mut p = parity.clone();
            let slot = if pos < m.len() {
                &mut m[pos]
            } else {
                &mut p[pos - m.len()]
            };
            *slot ^= 0x5A;
            assert!(rs.detect(&m, &p), "missed error at position {pos}");
        }
    }

    #[test]
    fn detects_all_eight_symbol_patterns_sampled() {
        // Min distance 9 guarantees detection of any ≤8-symbol error;
        // sample many random 8-symbol patterns, including patterns that
        // hit the parity bytes themselves.
        let rs = rs8();
        let mut rng = StdRng::seed_from_u64(3);
        let msg = random_block(&mut rng);
        let parity = rs.parity_of(&msg);
        for _ in 0..500 {
            let mut m = msg.clone();
            let mut p = parity.clone();
            let mut positions: Vec<usize> = (0..72).collect();
            for i in 0..8 {
                let j = rng.random_range(i..positions.len());
                positions.swap(i, j);
            }
            for &pos in &positions[..8] {
                let flip = loop {
                    let f: u8 = rng.random();
                    if f != 0 {
                        break f;
                    }
                };
                if pos < 64 {
                    m[pos] ^= flip;
                } else {
                    p[pos - 64] ^= flip;
                }
            }
            assert!(rs.detect(&m, &p));
        }
    }

    #[test]
    fn corrects_up_to_four_symbol_errors() {
        let rs = rs8();
        let mut rng = StdRng::seed_from_u64(4);
        for errors in 1..=4 {
            for _ in 0..50 {
                let msg = random_block(&mut rng);
                let parity = rs.parity_of(&msg);
                let mut m = msg.clone();
                let mut p = parity.clone();
                let mut used = std::collections::HashSet::new();
                for _ in 0..errors {
                    let pos = loop {
                        let c = rng.random_range(0..72);
                        if used.insert(c) {
                            break c;
                        }
                    };
                    let flip = rng.random_range(1..=255u8);
                    if pos < 64 {
                        m[pos] ^= flip;
                    } else {
                        p[pos - 64] ^= flip;
                    }
                }
                let fixed = rs.correct(&mut m, &mut p).expect("correctable");
                assert_eq!(fixed, errors);
                assert_eq!(m, msg);
                assert_eq!(p, parity);
            }
        }
    }

    #[test]
    fn five_errors_never_silently_pass_detection() {
        // With 5 errors, detect-only must still flag (5 ≤ 8), while
        // detect+correct either errors out or miscorrects — it must
        // never return the *original* data.
        let rs = rs8();
        let mut rng = StdRng::seed_from_u64(5);
        let mut miscorrections = 0;
        for _ in 0..200 {
            let msg = random_block(&mut rng);
            let parity = rs.parity_of(&msg);
            let mut m = msg.clone();
            let mut p = parity.clone();
            let mut used = std::collections::HashSet::new();
            for _ in 0..5 {
                let pos = loop {
                    let c = rng.random_range(0..72usize);
                    if used.insert(c) {
                        break c;
                    }
                };
                let flip = rng.random_range(1..=255u8);
                if pos < 64 {
                    m[pos] ^= flip;
                } else {
                    p[pos - 64] ^= flip;
                }
            }
            assert!(rs.detect(&m, &p), "detection-only missed a 5-byte error");
            match rs.correct(&mut m, &mut p) {
                Ok(_) => {
                    // Miscorrection: landed on a *different* codeword.
                    assert_ne!(m, msg, "correcting 5 errors cannot restore the data");
                    miscorrections += 1;
                }
                Err(RsError::Uncorrectable) => {}
            }
        }
        // Miscorrection is possible but rare; the test documents the
        // SDC vector the paper's detection-only decode eliminates.
        assert!(miscorrections < 200);
    }

    #[test]
    fn clean_word_corrects_to_zero_changes() {
        let rs = rs8();
        let mut rng = StdRng::seed_from_u64(6);
        let msg = random_block(&mut rng);
        let parity = rs.parity_of(&msg);
        let mut m = msg.clone();
        let mut p = parity.clone();
        assert_eq!(rs.correct(&mut m, &mut p), Ok(0));
        assert_eq!(m, msg);
    }

    #[test]
    fn parity_length_matches() {
        for r in [2, 4, 8, 16] {
            let rs = ReedSolomon::new(r);
            assert_eq!(rs.parity_of(&[0u8; 32]).len(), r);
            assert_eq!(rs.correctable(), r / 2);
            assert_eq!(rs.detectable(), r);
        }
    }

    #[test]
    fn zero_message_encodes_to_zero_parity() {
        let rs = rs8();
        assert_eq!(rs.parity_of(&[0u8; 64]), vec![0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "parity must be")]
    fn zero_parity_rejected() {
        let _ = ReedSolomon::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_codeword_rejected() {
        let rs = rs8();
        let _ = rs.parity_of(&[0u8; 250]);
    }
}
