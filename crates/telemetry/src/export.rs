//! Hand-rolled exporters: JSONL, CSV, and a console table. No serde —
//! every value we serialize is an integer, a string, or a list of
//! integer triples, so the writers stay tiny and dependency-free.

use crate::metric::HistogramSnapshot;
use crate::registry::{MetricValue, Snapshot};
use std::fmt::Write as _;

/// Reduce a free-form label ("Hetero-DMR+FMR @0.8GT/s") to a metric
/// name segment: lowercase alphanumerics, everything else collapsed to
/// single underscores, trimmed at both ends.
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut pending_sep = false;
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            if pending_sep && !out.is_empty() {
                out.push('_');
            }
            pending_sep = false;
            out.push(ch.to_ascii_lowercase());
        } else {
            pending_sep = true;
        }
    }
    out
}

/// Escape `s` for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(name: &str, h: &HistogramSnapshot) -> String {
    let mut line = format!(
        "{{\"name\":\"{}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
        escape_json(name),
        h.count,
        h.sum,
        h.min,
        h.max,
    );
    for (i, (lo, hi, n)) in h.buckets.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{{\"lo\":{lo},\"hi\":{hi},\"count\":{n}}}");
    }
    line.push_str("]}");
    line
}

/// One JSON object per metric, one per line, sorted by name (the
/// snapshot is already sorted). Integers only — byte-identical across
/// runs whenever the underlying metrics are.
pub fn format_jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for entry in &snapshot.entries {
        match &entry.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"{}\",\"type\":\"counter\",\"value\":{v}}}",
                    escape_json(&entry.name)
                );
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{{\"name\":\"{}\",\"type\":\"gauge\",\"value\":{v}}}",
                    escape_json(&entry.name)
                );
            }
            MetricValue::Histogram(h) => {
                out.push_str(&histogram_json(&entry.name, h));
                out.push('\n');
            }
        }
    }
    out
}

fn escape_csv(s: &str) -> String {
    // RFC 4180 quoting: `\r` matters too — a bare CR in a label would
    // otherwise split the record on CRLF-aware readers.
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Splits one CSV record into its fields, honouring [`escape_csv`]'s
/// quoting (RFC 4180: quoted fields may contain separators and
/// doubled quotes). The inverse of joining `escape_csv`ed fields with
/// commas; also used by `experiments report` to read reference CSVs.
pub fn parse_csv_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(ch) = chars.next() {
        match ch {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if field.is_empty() => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut field)),
            c => field.push(c),
        }
    }
    fields.push(field);
    fields
}

/// Parses [`format_jsonl`] output back into a [`Snapshot`]. Unknown
/// metric types and structural errors are reported with the offending
/// line number.
pub fn parse_jsonl(text: &str) -> Result<Snapshot, String> {
    use crate::json::{self, Json};
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |msg: &str| format!("metrics line {}: {msg}", i + 1);
        let doc = json::parse(line).map_err(|e| at(&e))?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing name"))?
            .to_string();
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing type"))?;
        let value = match kind {
            "counter" => MetricValue::Counter(
                doc.get("value")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| at("counter needs a non-negative value"))?,
            ),
            "gauge" => MetricValue::Gauge(
                doc.get("value")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| at("gauge needs an integer value"))?,
            ),
            "histogram" => {
                let num = |key: &str| {
                    doc.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| at(&format!("histogram needs '{key}'")))
                };
                let buckets = doc
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| at("histogram needs buckets"))?
                    .iter()
                    .map(|b| {
                        let part = |key: &str| {
                            b.get(key)
                                .and_then(Json::as_u64)
                                .ok_or_else(|| at(&format!("bucket needs '{key}'")))
                        };
                        Ok((part("lo")?, part("hi")?, part("count")?))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                MetricValue::Histogram(HistogramSnapshot {
                    count: num("count")?,
                    sum: num("sum")?,
                    min: num("min")?,
                    max: num("max")?,
                    buckets,
                })
            }
            other => return Err(at(&format!("unknown metric type '{other}'"))),
        };
        entries.push(crate::registry::SnapshotEntry { name, value });
    }
    Ok(Snapshot { entries })
}

/// Flat CSV: histograms contribute their aggregate columns (count,
/// sum, min, max); scalar metrics leave the aggregate columns empty.
pub fn format_csv(snapshot: &Snapshot) -> String {
    let mut out = String::from("name,type,value,count,sum,min,max\n");
    for entry in &snapshot.entries {
        let name = escape_csv(&entry.name);
        match &entry.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name},counter,{v},,,,");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name},gauge,{v},,,,");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "{name},histogram,,{},{},{},{}",
                    h.count, h.sum, h.min, h.max
                );
            }
        }
    }
    out
}

/// A right-padded two-column table for terminal output.
pub fn format_console_table(snapshot: &Snapshot) -> String {
    let width = snapshot
        .entries
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(4)
        .max("name".len());
    let mut out = format!("{:width$}  value\n", "name");
    let _ = writeln!(out, "{:-<width$}  -----", "");
    for entry in &snapshot.entries {
        match &entry.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{:width$}  {v}", entry.name);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{:width$}  {v}", entry.name);
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "{:width$}  n={} mean={:.1} min={} max={}",
                    entry.name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("ctrl.reads").add(10);
        r.gauge("queue.depth").set(-2);
        let h = r.histogram("ctrl.read_latency_ps");
        h.record(0);
        h.record(100);
        h.record(100);
        r.snapshot()
    }

    #[test]
    fn slug_flattens_labels() {
        assert_eq!(slug("Hetero-DMR+FMR"), "hetero_dmr_fmr");
        assert_eq!(slug("Hierarchy1"), "hierarchy1");
        assert_eq!(slug("  @0.8 GT/s  "), "0_8_gt_s");
        assert_eq!(slug("already_fine"), "already_fine");
        assert_eq!(slug("***"), "");
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let jsonl = format_jsonl(&sample());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"name\":\"ctrl.read_latency_ps\",\"type\":\"histogram\",\"count\":3,\
             \"sum\":200,\"min\":0,\"max\":100,\"buckets\":[{\"lo\":0,\"hi\":0,\"count\":1},\
             {\"lo\":64,\"hi\":127,\"count\":2}]}"
        );
        assert_eq!(
            lines[1],
            "{\"name\":\"ctrl.reads\",\"type\":\"counter\",\"value\":10}"
        );
        assert_eq!(
            lines[2],
            "{\"name\":\"queue.depth\",\"type\":\"gauge\",\"value\":-2}"
        );
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = format_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,type,value,count,sum,min,max");
        assert_eq!(lines[1], "ctrl.read_latency_ps,histogram,,3,200,0,100");
        assert_eq!(lines[2], "ctrl.reads,counter,10,,,,");
        assert_eq!(lines[3], "queue.depth,gauge,-2,,,,");
        assert_eq!(escape_csv("a,b"), "\"a,b\"");
    }

    /// Labels with CSV/JSON metacharacters must survive a full
    /// export → parse round trip.
    #[test]
    fn jsonl_round_trips_hostile_labels() {
        let r = Registry::new();
        let nasty = "a,b \"quoted\"\nnew\rline\ttab\\slash";
        r.counter(nasty).add(7);
        r.gauge("plain").set(-3);
        let h = r.histogram("lat");
        h.record(5);
        let snap = r.snapshot();
        let parsed = parse_jsonl(&format_jsonl(&snap)).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn parse_jsonl_reports_bad_lines() {
        assert!(parse_jsonl("{\"name\":\"x\"}")
            .unwrap_err()
            .contains("line 1"));
        assert!(parse_jsonl("{\"name\":\"x\",\"type\":\"foo\",\"value\":1}")
            .unwrap_err()
            .contains("unknown metric type"));
        assert!(parse_jsonl("").unwrap().entries.is_empty());
    }

    #[test]
    fn csv_round_trips_hostile_labels() {
        for nasty in ["a,b", "q\"uote", "multi\nline", "cr\rhere", "plain"] {
            let line = escape_csv(nasty);
            assert_eq!(parse_csv_line(&line), vec![nasty.to_string()]);
        }
        // A full record: the label field with every metacharacter plus
        // the numeric columns.
        let r = Registry::new();
        r.counter("a,b \"c\"\r\nd").add(1);
        let csv = format_csv(&r.snapshot());
        // escape_csv keeps the record as ONE line: the newline lives
        // inside quotes, so splitting on raw '\n' would be wrong —
        // parse the record that starts after the header.
        let record = csv
            .strip_prefix("name,type,value,count,sum,min,max\n")
            .unwrap();
        let fields = parse_csv_line(record.trim_end_matches('\n'));
        assert_eq!(fields[0], "a,b \"c\"\r\nd");
        assert_eq!(fields[1], "counter");
        assert_eq!(fields[2], "1");
    }

    #[test]
    fn console_table_renders_every_entry() {
        let table = format_console_table(&sample());
        assert!(table.contains("ctrl.reads"));
        assert!(table.contains("n=3 mean=66.7 min=0 max=100"));
        assert!(table.contains("queue.depth"));
    }
}
