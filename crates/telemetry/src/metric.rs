//! The three metric primitives: counters, gauges, and log-bucketed
//! histograms. All are `Arc`-shared handles over atomics; cloning a
//! handle aliases the same metric, [`fork`](Counter::fork) detaches a
//! deep copy (used by simulation components that are `Clone`d into
//! independent replicas).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: one for zero plus one per power of
/// two up to `2^63..=u64::MAX`.
pub const BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// A detached copy: same current value, independent future
    /// updates. Cloned simulation state forks its metrics so replicas
    /// do not double-count into a shared cell.
    pub fn fork(&self) -> Self {
        Counter(Arc::new(AtomicU64::new(self.get())))
    }
}

/// Fixed-point scale for real-valued gauges: [`Gauge::set_scaled`]
/// stores `value × 10⁴` rounded, which keeps four decimal places
/// through the integer metric model (snapshots, JSONL export, drift
/// comparisons).
pub const GAUGE_SCALE: f64 = 1e4;

/// A signed instantaneous level (queue depth, in-flight requests).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, delta: i64) {
        self.0.fetch_sub(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Stores a real value as ×10⁴ fixed point (see [`GAUGE_SCALE`]) —
    /// the convention summary and residency gauges use so fractional
    /// results survive the integer metric model losslessly enough for
    /// drift checks.
    #[inline]
    pub fn set_scaled(&self, v: f64) {
        self.set((v * GAUGE_SCALE).round() as i64);
    }

    /// Reads back a value stored by [`Gauge::set_scaled`].
    #[inline]
    pub fn get_scaled(&self) -> f64 {
        self.get() as f64 / GAUGE_SCALE
    }

    /// A detached copy (see [`Counter::fork`]).
    pub fn fork(&self) -> Self {
        Gauge(Arc::new(AtomicI64::new(self.get())))
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed distribution of `u64` samples.
///
/// Bucket 0 holds exactly the value 0; bucket `i > 0` holds
/// `2^(i-1) ..= 2^i - 1`. Recording is two relaxed `fetch_add`s
/// (bucket and sum — the total count is derived from the buckets at
/// read time) plus min/max maintenance that is load-only once the
/// extremes are established, with no allocation.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

/// The bucket index a value lands in — public so hot loops can
/// pre-aggregate samples into a plain `[u64; BUCKETS]` array and
/// bulk-publish via [`Histogram::merge_parts`] instead of paying an
/// atomic RMW per sample.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `(lo, hi)` value range of bucket `idx`.
pub(crate) fn bucket_bounds(idx: usize) -> (u64, u64) {
    match idx {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        i => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        // Guarded RMWs: once the extremes are established the common
        // case is a relaxed load and a branch. The inner fetch_min /
        // fetch_max keeps racing updates correct (idempotent).
        if value < inner.min.load(Ordering::Relaxed) {
            inner.min.fetch_min(value, Ordering::Relaxed);
        }
        if value > inner.max.load(Ordering::Relaxed) {
            inner.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    pub fn min(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.0.min.load(Ordering::Relaxed))
        }
    }

    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.0.max.load(Ordering::Relaxed))
        }
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Upper bound of the bucket at which the cumulative count first
    /// reaches `q` (0.0..=1.0) of the total — a log₂-resolution
    /// quantile estimate.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (idx, bucket) in self.0.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return Some(bucket_bounds(idx).1);
            }
        }
        Some(u64::MAX)
    }

    /// Fold a snapshot's contents back into this live histogram —
    /// the inverse of [`snapshot`](Self::snapshot). Replaying a
    /// snapshot into a fresh histogram then snapshotting again yields
    /// the original snapshot.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        let inner = &*self.0;
        for &(lo, _hi, n) in &snap.buckets {
            inner.buckets[bucket_index(lo)].fetch_add(n, Ordering::Relaxed);
        }
        inner.sum.fetch_add(snap.sum, Ordering::Relaxed);
        inner.min.fetch_min(snap.min, Ordering::Relaxed);
        inner.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Bulk-publish locally pre-aggregated samples: `buckets[i]` holds
    /// the count of samples whose [`bucket_index`] is `i` (shorter
    /// slices cover a prefix), `sum` their total, and `min`/`max` the
    /// extremes (`min == u64::MAX` means "no samples", matching the
    /// unrecorded sentinel). One call replaces thousands of per-sample
    /// [`record`](Self::record)s — the batched simulation loops accrue
    /// into plain arrays and flush here at window boundaries.
    pub fn merge_parts(&self, buckets: &[u64], sum: u64, min: u64, max: u64) {
        let inner = &*self.0;
        let mut any = false;
        for (mine, &n) in inner.buckets.iter().zip(buckets.iter()) {
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
                any = true;
            }
        }
        if any {
            inner.sum.fetch_add(sum, Ordering::Relaxed);
            inner.min.fetch_min(min, Ordering::Relaxed);
            inner.max.fetch_max(max, Ordering::Relaxed);
        }
    }

    /// Fold another histogram's contents into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        let count = other.count();
        if count > 0 {
            self.0.sum.fetch_add(other.sum(), Ordering::Relaxed);
            self.0
                .min
                .fetch_min(other.0.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.0
                .max
                .fetch_max(other.0.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// A detached copy (see [`Counter::fork`]).
    pub fn fork(&self) -> Self {
        let fresh = Histogram::new();
        fresh.merge_from(self);
        fresh
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        let mut count = 0u64;
        let buckets: Vec<(u64, u64, u64)> = inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let n = b.load(Ordering::Relaxed);
                count += n;
                if n == 0 {
                    None
                } else {
                    let (lo, hi) = bucket_bounds(idx);
                    Some((lo, hi, n))
                }
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                inner.min.load(Ordering::Relaxed)
            },
            max: inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: only non-empty buckets
/// are materialized, as `(lo, hi, count)` with inclusive bounds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket at which the cumulative count first
    /// reaches `q` (0.0..=1.0) of the total — the snapshot twin of
    /// [`Histogram::approx_quantile`], for quantiles over parsed or
    /// merged snapshots (report tables work on these, never on live
    /// handles).
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for &(_lo, hi, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return Some(hi);
            }
        }
        Some(u64::MAX)
    }

    /// Fold `other` into this snapshot, exactly: bucket lists (sorted
    /// by lower bound, as [`Histogram::snapshot`] emits them) are
    /// merge-joined, counts and sums add, and the min/max envelope
    /// widens. Merging snapshots of disjoint histograms equals the
    /// snapshot of one histogram fed both sample streams.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        while let (Some(&&(alo, ahi, an)), Some(&&(blo, bhi, bn))) = (a.peek(), b.peek()) {
            if alo == blo {
                merged.push((alo, ahi, an + bn));
                a.next();
                b.next();
            } else if alo < blo {
                merged.push((alo, ahi, an));
                a.next();
            } else {
                merged.push((blo, bhi, bn));
                b.next();
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index((1u64 << 63) - 1), 63);
        for idx in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            assert!(lo <= hi);
        }
    }

    #[test]
    fn histogram_zero_and_max() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), 2);
        assert_eq!(snap.buckets[0], (0, 0, 1));
        assert_eq!(snap.buckets[1], (1u64 << 63, u64::MAX, 1));
    }

    #[test]
    fn histogram_boundaries_land_in_their_bucket() {
        let h = Histogram::new();
        for shift in 0..64 {
            h.record(1u64 << shift);
        }
        let snap = h.snapshot();
        // 1 lands in bucket 1, every other power of two opens its own.
        assert_eq!(snap.count, 64);
        for (lo, _hi, n) in &snap.buckets {
            assert_eq!(*n, 1, "bucket starting at {lo} should hold one sample");
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let aliased = c.clone();
        aliased.inc();
        assert_eq!(c.get(), 43);
        let forked = c.fork();
        forked.inc();
        assert_eq!(c.get(), 43);
        assert_eq!(forked.get(), 44);

        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn scaled_gauge_round_trips_four_decimals() {
        let g = Gauge::new();
        g.set_scaled(1.2345);
        assert_eq!(g.get(), 12345);
        assert!((g.get_scaled() - 1.2345).abs() < 1e-12);
        g.set_scaled(-0.94);
        assert_eq!(g.get(), -9400);
        // Sub-scale digits round rather than truncate.
        g.set_scaled(0.00004);
        assert_eq!(g.get(), 0);
        g.set_scaled(0.00006);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn concurrent_counter_increments() {
        let c = Counter::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_records() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 5_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 20_000);
        let expected_sum: u64 = (0..20_000).sum();
        assert_eq!(h.sum(), expected_sum);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(19_999));
    }

    #[test]
    fn merge_snapshot_round_trips() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 300, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        let replay = Histogram::new();
        replay.merge_snapshot(&snap);
        assert_eq!(replay.snapshot(), snap);
        // Merging an empty snapshot is a no-op (min stays untouched).
        replay.merge_snapshot(&Histogram::new().snapshot());
        assert_eq!(replay.snapshot(), snap);
    }

    #[test]
    fn merge_and_quantiles() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 2, 3, 4] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 310);
        assert_eq!(a.max(), Some(200));
        // Median falls in the low buckets, p99 in the 128..=255 one.
        assert!(a.approx_quantile(0.5).unwrap() <= 7);
        assert_eq!(a.approx_quantile(1.0), Some(255));
        assert_eq!(Histogram::new().approx_quantile(0.5), None);
    }

    #[test]
    fn snapshot_quantiles_match_the_live_histogram() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100, 200, 5_000, 70_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(snap.approx_quantile(q), h.approx_quantile(q), "q={q}");
        }
        assert_eq!(HistogramSnapshot::default().approx_quantile(0.5), None);
    }
}
