//! Run provenance: what produced a set of metric files.

use crate::export::escape_json;
use crate::registry::Snapshot;
use std::fmt::Write as _;
use std::process::Command;

/// Metadata written alongside exported metrics so a result directory
/// is self-describing: the target that ran, its seed and knobs, the
/// source revision, wall time, and a summary of the snapshot.
///
/// The manifest deliberately carries every non-deterministic datum
/// (wall time, hostname-ish context) so the metrics file itself can
/// stay byte-identical for a fixed seed.
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    pub target: String,
    pub seed: u64,
    /// Free-form configuration knobs, in insertion order.
    pub knobs: Vec<(String, String)>,
    /// `git describe --always --dirty`, when a git checkout and
    /// binary are available.
    pub git_describe: Option<String>,
    pub wall_ms: u64,
    /// Per-target wall-clock durations, in run order. Like `wall_ms`,
    /// diagnostic only — never part of byte-compared output.
    pub target_wall_ms: Vec<(String, u64)>,
    pub metric_count: usize,
    /// Events pushed into the run's bounded event logs…
    pub events_recorded: u64,
    /// …and how many of those the ring evicted. Non-zero means the
    /// retained window is partial — the overflow is surfaced here
    /// instead of being silently discarded.
    pub events_dropped: u64,
}

impl RunManifest {
    pub fn new(target: impl Into<String>, seed: u64) -> Self {
        RunManifest {
            target: target.into(),
            seed,
            ..Default::default()
        }
    }

    pub fn knob(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.knobs.push((key.into(), value.to_string()));
        self
    }

    pub fn with_wall_ms(mut self, wall_ms: u64) -> Self {
        self.wall_ms = wall_ms;
        self
    }

    /// Record each target's wall-clock duration.
    pub fn with_target_walls(mut self, walls: impl IntoIterator<Item = (String, u64)>) -> Self {
        self.target_wall_ms = walls.into_iter().collect();
        self
    }

    /// Record event-log pressure: total events pushed and how many
    /// the bounded ring evicted (see [`EventLog::dropped`]
    /// (crate::EventLog::dropped)).
    pub fn with_events(mut self, recorded: u64, dropped: u64) -> Self {
        self.events_recorded = recorded;
        self.events_dropped = dropped;
        self
    }

    pub fn with_snapshot(mut self, snapshot: &Snapshot) -> Self {
        self.metric_count = snapshot.len();
        self
    }

    /// Fill `git_describe` from the ambient checkout, if possible.
    pub fn with_git_describe(mut self) -> Self {
        self.git_describe = git_describe();
        self
    }

    /// The manifest as a single pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"target\": \"{}\",", escape_json(&self.target));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        out.push_str("  \"knobs\": {");
        for (i, (k, v)) in self.knobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": \"{}\"", escape_json(k), escape_json(v));
        }
        if self.knobs.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        match &self.git_describe {
            Some(desc) => {
                let _ = writeln!(out, "  \"git_describe\": \"{}\",", escape_json(desc));
            }
            None => out.push_str("  \"git_describe\": null,\n"),
        }
        let _ = writeln!(out, "  \"wall_ms\": {},", self.wall_ms);
        out.push_str("  \"target_wall_ms\": {");
        for (i, (name, ms)) in self.target_wall_ms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", escape_json(name), ms);
        }
        if self.target_wall_ms.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        let _ = writeln!(out, "  \"metric_count\": {},", self.metric_count);
        let _ = writeln!(out, "  \"events_recorded\": {},", self.events_recorded);
        let _ = writeln!(out, "  \"events_dropped\": {}", self.events_dropped);
        out.push_str("}\n");
        out
    }
}

fn git_describe() -> Option<String> {
    let output = Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn manifest_json_is_well_formed() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("b").inc();
        let m = RunManifest::new("fig12", 42)
            .knob("ops_per_core", 8_000)
            .knob("quick", true)
            .with_wall_ms(17)
            .with_target_walls([("fig12".to_string(), 11), ("fig13".to_string(), 6)])
            .with_events(1500, 476)
            .with_snapshot(&r.snapshot());
        let json = m.to_json();
        assert!(json.contains("\"target\": \"fig12\""));
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"ops_per_core\": \"8000\""));
        assert!(json.contains("\"quick\": \"true\""));
        assert!(json.contains("\"wall_ms\": 17"));
        assert!(json.contains("\"fig12\": 11"));
        assert!(json.contains("\"fig13\": 6"));
        assert!(json.contains("\"metric_count\": 2"));
        assert!(json.contains("\"events_recorded\": 1500"));
        assert!(json.contains("\"events_dropped\": 476"));
        // The emitted document must satisfy our own parser.
        let doc = crate::json::parse(&json).expect("manifest parses as JSON");
        assert_eq!(doc.get("seed").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(
            doc.get("target_wall_ms")
                .and_then(|w| w.get("fig13"))
                .and_then(|v| v.as_u64()),
            Some(6)
        );
    }

    #[test]
    fn empty_manifest_serializes() {
        let json = RunManifest::default().to_json();
        assert!(json.contains("\"git_describe\": null"));
        assert!(json.contains("\"knobs\": {}"));
    }
}
