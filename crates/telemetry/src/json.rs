//! A minimal recursive-descent JSON parser.
//!
//! The workspace serializes everything by hand (no serde), which is
//! fine for writing but leaves readers — the `experiments report`
//! subcommand, trace validation in CI, round-trip tests — without a
//! way back. This parser closes the loop: full JSON (objects, arrays,
//! strings with escapes, numbers, booleans, null) in ~200 lines,
//! std-only. Object keys keep insertion order; duplicate keys are kept
//! verbatim and [`Json::get`] returns the first.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers parse as `f64`; integer accessors
    /// ([`Json::as_u64`]/[`Json::as_i64`]) round-trip exactly for
    /// values up to 2^53, which covers every counter we emit.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|n| n as i64)
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.as_f64() {
            Some(n) if n >= 0.0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses `text` as a single JSON document. Trailing non-whitespace is
/// an error. Errors carry a byte offset and a short description.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":[1,2,{"b":"x,y"}],"c":{},"d":[]}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x,y")
        );
        assert_eq!(doc.get("c").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "comma, \"quote\"\nnewline\ttab\r\\slash \u{1} é";
        let encoded = format!("\"{}\"", crate::escape_json(nasty));
        assert_eq!(parse(&encoded).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert!(parse("\"\\ud83d\"").is_err(), "lone surrogate rejected");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\x01\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integer_accessors_are_exact() {
        let v = parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(9007199254740992));
        assert_eq!(parse("-3").unwrap().as_i64(), Some(-3));
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
