//! Anomaly detectors and the causal incident ledger — the alerting
//! layer of the health plane.
//!
//! Detectors consume a [`SeriesSnapshot`](crate::series::SeriesSnapshot)
//! window by window in sim-time order and flag breaching windows;
//! consecutive breaches group into [`Incident`]s with an
//! open/ack/resolve lifecycle. All detector state is integer
//! fixed-point (milli units, [`STAT_SCALE`]), so a verdict is a pure
//! function of the series — byte-identical across `--jobs` values and
//! window batching, exactly like the snapshots the series are built
//! from.
//!
//! Missing windows between a series' first and last sample count as
//! zero-sum windows: a counter series that goes quiet *is* a signal
//! (rates dropped), and skipping gaps would make verdicts depend on
//! which windows happened to be materialized.
//!
//! The ledger closes the alert→cause loop:
//! [`link_spans`](IncidentLedger::link_spans) attaches the ids of
//! trace spans active during each incident's breaching interval, so a
//! report can navigate from "CUSUM fired on `governor.ce`" to the
//! governor decisions and ECC re-reads recorded in those same windows.

use crate::export::escape_json;
use crate::json::{self, Json};
use crate::series::{SeriesEntry, SeriesSnapshot};
use crate::trace::{Clock, TraceEvent};
use std::fmt::Write as _;

/// Fixed-point scale for detector statistics: values carry three
/// decimal places through integer arithmetic.
pub const STAT_SCALE: i64 = 1000;

/// Spans linked per incident are capped (smallest ids first) so a
/// busy window cannot balloon the ledger.
pub const LINKED_SPAN_CAP: usize = 16;

/// How loud an incident is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Critical,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    fn parse(s: &str) -> Option<Severity> {
        Some(match s {
            "warning" => Severity::Warning,
            "critical" => Severity::Critical,
            _ => return None,
        })
    }
}

/// The per-window decision rule of a [`Detector`]. Every rule reads
/// the window's *sum* (the natural signal for the counter-style series
/// the simulators emit) and keeps integer state only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetectorKind {
    /// Breach when a window's sum reaches `limit`.
    Threshold { limit: u64 },
    /// SLO burn rate: breach when the rolling sum over the last
    /// `windows` windows consumes at least `factor_milli`/1000 of the
    /// rolling budget (`budget_per_window × windows in the roll`).
    BurnRate {
        budget_per_window: u64,
        windows: usize,
        factor_milli: u64,
    },
    /// EWMA drift: track `ewma ← ewma + α(x − ewma)` in milli units
    /// (`α = alpha_milli/1000`); after `warmup` windows, breach when a
    /// window's sum exceeds the tracked mean by more than `band_milli`.
    EwmaDrift {
        alpha_milli: u64,
        band_milli: u64,
        warmup: usize,
    },
    /// One-sided CUSUM change-point: accumulate
    /// `s ← max(0, s + x − k)` in milli units and breach while
    /// `s ≥ h`. Catches slow drifts long before any single window
    /// looks alarming.
    Cusum { k_milli: u64, h_milli: u64 },
}

impl DetectorKind {
    /// Short rule-family label (`"cusum"`, `"ewma"`, …) for display.
    pub fn label(&self) -> &'static str {
        match self {
            DetectorKind::Threshold { .. } => "threshold",
            DetectorKind::BurnRate { .. } => "burn_rate",
            DetectorKind::EwmaDrift { .. } => "ewma",
            DetectorKind::Cusum { .. } => "cusum",
        }
    }
}

/// A named rule bound to one series (its scope).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Detector {
    /// Display name, unique per suite (`"cusum.ce"`).
    pub name: String,
    /// The series this detector watches.
    pub series: String,
    /// Severity of the incidents it opens.
    pub severity: Severity,
    pub kind: DetectorKind,
}

impl Detector {
    pub fn threshold(name: &str, series: &str, severity: Severity, limit: u64) -> Detector {
        Detector {
            name: name.into(),
            series: series.into(),
            severity,
            kind: DetectorKind::Threshold { limit },
        }
    }

    pub fn burn_rate(
        name: &str,
        series: &str,
        severity: Severity,
        budget_per_window: u64,
        windows: usize,
        factor_milli: u64,
    ) -> Detector {
        Detector {
            name: name.into(),
            series: series.into(),
            severity,
            kind: DetectorKind::BurnRate {
                budget_per_window,
                windows: windows.max(1),
                factor_milli,
            },
        }
    }

    pub fn ewma(
        name: &str,
        series: &str,
        severity: Severity,
        alpha_milli: u64,
        band_milli: u64,
        warmup: usize,
    ) -> Detector {
        Detector {
            name: name.into(),
            series: series.into(),
            severity,
            kind: DetectorKind::EwmaDrift {
                alpha_milli: alpha_milli.min(STAT_SCALE as u64),
                band_milli,
                warmup,
            },
        }
    }

    pub fn cusum(
        name: &str,
        series: &str,
        severity: Severity,
        k_milli: u64,
        h_milli: u64,
    ) -> Detector {
        Detector {
            name: name.into(),
            series: series.into(),
            severity,
            kind: DetectorKind::Cusum { k_milli, h_milli },
        }
    }

    /// Evaluates this detector over `entry`, returning one verdict per
    /// window in the contiguous `[first, last]` index range (gaps count
    /// as zero-sum windows).
    pub fn evaluate(&self, entry: &SeriesEntry) -> Vec<WindowVerdict> {
        let Some(&(first_start, _)) = entry
            .windows
            .first()
            .map(|w| (w.0, ()))
            .as_ref()
            .map(|_| entry.windows.first().unwrap())
        else {
            return Vec::new();
        };
        let last_start = entry.windows.last().expect("nonempty").0;
        let width = entry.width.max(1);
        let mut verdicts = Vec::new();
        let mut materialized = entry.windows.iter().peekable();

        // Rolling state, all integer.
        let mut roll: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        let mut roll_sum = 0u64;
        let mut ewma_milli = 0i64;
        let mut seen = 0usize;
        let mut cusum_milli = 0i64;

        let mut start = first_start;
        loop {
            let sum = match materialized.peek() {
                Some(&&(s, ref w)) if s == start => {
                    materialized.next();
                    w.sum
                }
                _ => 0,
            };
            let x_milli = sum as i64 * STAT_SCALE;
            let (stat_milli, threshold_milli, breached) = match &self.kind {
                DetectorKind::Threshold { limit } => {
                    (x_milli, *limit as i64 * STAT_SCALE, sum >= *limit)
                }
                DetectorKind::BurnRate {
                    budget_per_window,
                    windows,
                    factor_milli,
                } => {
                    roll.push_back(sum);
                    roll_sum += sum;
                    if roll.len() > *windows {
                        roll_sum -= roll.pop_front().expect("nonempty roll");
                    }
                    let budget = (*budget_per_window).max(1) * roll.len() as u64;
                    let burn_milli = (roll_sum as i64 * STAT_SCALE) / budget as i64;
                    (
                        burn_milli,
                        *factor_milli as i64,
                        burn_milli >= *factor_milli as i64,
                    )
                }
                DetectorKind::EwmaDrift {
                    alpha_milli,
                    band_milli,
                    warmup,
                } => {
                    let deviation = x_milli - ewma_milli;
                    let breached = seen >= *warmup && deviation > *band_milli as i64;
                    ewma_milli += *alpha_milli as i64 * (x_milli - ewma_milli) / STAT_SCALE;
                    seen += 1;
                    (deviation, *band_milli as i64, breached)
                }
                DetectorKind::Cusum { k_milli, h_milli } => {
                    cusum_milli = (cusum_milli + x_milli - *k_milli as i64).max(0);
                    (cusum_milli, *h_milli as i64, cusum_milli >= *h_milli as i64)
                }
            };
            verdicts.push(WindowVerdict {
                start,
                end: start + width - 1,
                sum,
                stat_milli,
                threshold_milli,
                breached,
            });
            if start == last_start {
                break;
            }
            start += width;
        }
        verdicts
    }
}

/// One window's detector evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowVerdict {
    /// Inclusive sim-time range of the window.
    pub start: u64,
    pub end: u64,
    /// The window's sum (the signal).
    pub sum: u64,
    /// Detector statistic and threshold, milli fixed-point.
    pub stat_milli: i64,
    pub threshold_milli: i64,
    pub breached: bool,
}

/// Lifecycle of an [`Incident`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncidentState {
    /// Still breaching in the final window of its series.
    Open,
    /// Open and acknowledged by an operator.
    Acked,
    /// A clean window followed the last breach.
    Resolved,
}

impl IncidentState {
    pub fn label(self) -> &'static str {
        match self {
            IncidentState::Open => "open",
            IncidentState::Acked => "acked",
            IncidentState::Resolved => "resolved",
        }
    }

    fn parse(s: &str) -> Option<IncidentState> {
        Some(match s {
            "open" => IncidentState::Open,
            "acked" => IncidentState::Acked,
            "resolved" => IncidentState::Resolved,
            _ => return None,
        })
    }
}

/// A maximal run of breaching windows for one (detector, series) key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Incident {
    /// Ledger-assigned id, dense from 1 in (detector order, time
    /// order) — deterministic.
    pub id: u64,
    pub detector: String,
    /// The breached series (the incident's scope).
    pub scope: String,
    pub severity: Severity,
    pub state: IncidentState,
    /// Inclusive sim-time range: start of the first breaching window
    /// through end of the last.
    pub first: u64,
    pub last: u64,
    /// Breaching windows in the run.
    pub windows: u64,
    /// Peak detector statistic over the run, and the threshold it
    /// crossed (milli fixed-point).
    pub peak_milli: i64,
    pub threshold_milli: i64,
    /// Ids of trace spans active in `[first, last]` (see
    /// [`IncidentLedger::link_spans`]), capped at [`LINKED_SPAN_CAP`].
    pub spans: Vec<u64>,
    /// Operator note attached on ack.
    pub note: Option<String>,
}

/// The incident ledger: every incident a detector suite raised over a
/// series snapshot, in deterministic order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IncidentLedger {
    incidents: Vec<Incident>,
}

impl IncidentLedger {
    /// Runs `detectors` (in order) over `snapshot` and groups their
    /// breaching windows into incidents. Detectors watching absent
    /// series contribute nothing.
    pub fn evaluate(snapshot: &SeriesSnapshot, detectors: &[Detector]) -> IncidentLedger {
        let mut ledger = IncidentLedger::default();
        for det in detectors {
            let Some(entry) = snapshot.get(&det.series) else {
                continue;
            };
            let verdicts = det.evaluate(entry);
            let mut open: Option<Incident> = None;
            for v in &verdicts {
                match (&mut open, v.breached) {
                    (None, true) => {
                        open = Some(Incident {
                            id: ledger.incidents.len() as u64 + 1,
                            detector: det.name.clone(),
                            scope: det.series.clone(),
                            severity: det.severity,
                            state: IncidentState::Open,
                            first: v.start,
                            last: v.end,
                            windows: 1,
                            peak_milli: v.stat_milli,
                            threshold_milli: v.threshold_milli,
                            spans: Vec::new(),
                            note: None,
                        });
                    }
                    (Some(inc), true) => {
                        inc.last = v.end;
                        inc.windows += 1;
                        inc.peak_milli = inc.peak_milli.max(v.stat_milli);
                    }
                    (Some(_), false) => {
                        let mut inc = open.take().expect("open incident");
                        inc.state = IncidentState::Resolved;
                        ledger.incidents.push(inc);
                    }
                    (None, false) => {}
                }
            }
            if let Some(inc) = open {
                // Still breaching at end of data: stays open.
                ledger.incidents.push(inc);
            }
        }
        ledger
    }

    /// All incidents, most context first (ledger order).
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Appends another ledger's incidents, renumbering their ids to
    /// continue this ledger's dense sequence. Absorbing per-scope
    /// ledgers in a canonical order keeps the combined ledger
    /// deterministic, mirroring the snapshot-merge discipline.
    pub fn absorb(&mut self, other: IncidentLedger) {
        for mut inc in other.incidents {
            inc.id = self.incidents.len() as u64 + 1;
            self.incidents.push(inc);
        }
    }

    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Incidents still open (or acked) at end of data.
    pub fn open_count(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| i.state != IncidentState::Resolved)
            .count()
    }

    /// Acknowledges incident `id` with an operator note. Returns false
    /// for unknown or already-resolved incidents.
    pub fn ack(&mut self, id: u64, note: &str) -> bool {
        match self.incidents.iter_mut().find(|i| i.id == id) {
            Some(inc) if inc.state == IncidentState::Open => {
                inc.state = IncidentState::Acked;
                inc.note = Some(note.to_string());
                true
            }
            _ => false,
        }
    }

    /// Manually resolves incident `id` (e.g. after remediation).
    /// Returns false for unknown or already-resolved incidents.
    pub fn resolve(&mut self, id: u64) -> bool {
        match self.incidents.iter_mut().find(|i| i.id == id) {
            Some(inc) if inc.state != IncidentState::Resolved => {
                inc.state = IncidentState::Resolved;
                true
            }
            _ => false,
        }
    }

    /// Attaches to each incident the ids of `clock`-domain spans whose
    /// interval overlaps the incident's breaching range — the
    /// alert→cause link. Ids are taken in event order (which is causal
    /// order within a trace buffer), capped at [`LINKED_SPAN_CAP`].
    pub fn link_spans(&mut self, events: &[TraceEvent], clock: Clock) {
        for inc in &mut self.incidents {
            for ev in events {
                if ev.clock == clock && ev.start <= inc.last && ev.end >= inc.first {
                    inc.spans.push(ev.id);
                    if inc.spans.len() >= LINKED_SPAN_CAP {
                        break;
                    }
                }
            }
        }
    }

    /// One JSON object per incident, in ledger order:
    ///
    /// ```text
    /// {"id":1,"detector":"cusum.ce","scope":"governor.ce",
    ///  "severity":"critical","state":"open","first":0,"last":95,
    ///  "windows":12,"peak_milli":41000,"threshold_milli":20000,
    ///  "spans":[3,17],"note":null}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for inc in &self.incidents {
            let _ = write!(
                out,
                "{{\"id\":{},\"detector\":\"{}\",\"scope\":\"{}\",\"severity\":\"{}\",\"state\":\"{}\",\"first\":{},\"last\":{},\"windows\":{},\"peak_milli\":{},\"threshold_milli\":{},\"spans\":[",
                inc.id,
                escape_json(&inc.detector),
                escape_json(&inc.scope),
                inc.severity.label(),
                inc.state.label(),
                inc.first,
                inc.last,
                inc.windows,
                inc.peak_milli,
                inc.threshold_milli,
            );
            for (i, id) in inc.spans.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{id}");
            }
            match &inc.note {
                Some(n) => {
                    let _ = write!(out, "],\"note\":\"{}\"}}", escape_json(n));
                }
                None => out.push_str("],\"note\":null}"),
            }
            out.push('\n');
        }
        out
    }
}

/// Parses [`IncidentLedger::to_jsonl`] output back into a ledger.
pub fn parse_incidents_jsonl(text: &str) -> Result<IncidentLedger, String> {
    let mut ledger = IncidentLedger::default();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let ctx = |field: &str| format!("line {}: bad or missing '{field}'", idx + 1);
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ctx(key))
        };
        let u64_field = |key: &str| doc.get(key).and_then(Json::as_u64).ok_or_else(|| ctx(key));
        let i64_field = |key: &str| doc.get(key).and_then(Json::as_i64).ok_or_else(|| ctx(key));
        let severity = Severity::parse(&str_field("severity")?).ok_or_else(|| ctx("severity"))?;
        let state = IncidentState::parse(&str_field("state")?).ok_or_else(|| ctx("state"))?;
        let spans = doc
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or_else(|| ctx("spans"))?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| ctx("spans")))
            .collect::<Result<Vec<u64>, String>>()?;
        let note = match doc.get("note") {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.as_str().ok_or_else(|| ctx("note"))?.to_string()),
        };
        ledger.incidents.push(Incident {
            id: u64_field("id")?,
            detector: str_field("detector")?,
            scope: str_field("scope")?,
            severity,
            state,
            first: u64_field("first")?,
            last: u64_field("last")?,
            windows: u64_field("windows")?,
            peak_milli: i64_field("peak_milli")?,
            threshold_milli: i64_field("threshold_milli")?,
            spans,
            note,
        });
    }
    Ok(ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesStore;
    use crate::trace::Tracer;

    /// A counter series over windows of width 10: per-window sums
    /// given as a slice indexed from t=0.
    fn series_of(sums: &[u64]) -> SeriesSnapshot {
        let store = SeriesStore::new();
        let s = store.series("sig", 10);
        for (i, &sum) in sums.iter().enumerate() {
            if sum > 0 {
                s.record(i as u64 * 10, sum);
            } else if i == 0 || i == sums.len() - 1 {
                // Materialize the endpoints so gap-filling is exercised.
                s.record(i as u64 * 10, 0);
            }
        }
        store.snapshot()
    }

    #[test]
    fn threshold_groups_consecutive_breaches() {
        let snap = series_of(&[0, 5, 6, 0, 7, 0]);
        let det = [Detector::threshold("t", "sig", Severity::Warning, 5)];
        let ledger = IncidentLedger::evaluate(&snap, &det);
        assert_eq!(ledger.len(), 2);
        let first = &ledger.incidents()[0];
        assert_eq!((first.first, first.last, first.windows), (10, 29, 2));
        assert_eq!(first.state, IncidentState::Resolved);
        assert_eq!(first.peak_milli, 6 * STAT_SCALE);
        let second = &ledger.incidents()[1];
        assert_eq!((second.first, second.last), (40, 49));
        assert_eq!(second.state, IncidentState::Resolved, "clean window after");
        assert_eq!(ledger.open_count(), 0);
    }

    #[test]
    fn breach_at_end_of_data_stays_open() {
        let snap = series_of(&[0, 0, 9]);
        let det = [Detector::threshold("t", "sig", Severity::Critical, 5)];
        let mut ledger = IncidentLedger::evaluate(&snap, &det);
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.incidents()[0].state, IncidentState::Open);
        assert_eq!(ledger.open_count(), 1);
        // Lifecycle: ack, then resolve.
        let id = ledger.incidents()[0].id;
        assert!(ledger.ack(id, "paging oncall"));
        assert_eq!(ledger.incidents()[0].state, IncidentState::Acked);
        assert!(!ledger.ack(id, "twice"), "only open incidents ack");
        assert!(ledger.resolve(id));
        assert_eq!(ledger.incidents()[0].state, IncidentState::Resolved);
        assert!(!ledger.resolve(id));
        assert_eq!(ledger.open_count(), 0);
    }

    #[test]
    fn gaps_count_as_zero_windows() {
        // Breach at t=0 and t=50, nothing materialized between: the
        // zero-filled gap resolves the first incident.
        let store = SeriesStore::new();
        let s = store.series("sig", 10);
        s.record(0, 9);
        s.record(50, 9);
        let det = [Detector::threshold("t", "sig", Severity::Warning, 5)];
        let ledger = IncidentLedger::evaluate(&store.snapshot(), &det);
        assert_eq!(ledger.len(), 2, "gap splits the incidents");
        assert_eq!(ledger.incidents()[0].state, IncidentState::Resolved);
        assert_eq!(ledger.incidents()[1].state, IncidentState::Open);
    }

    #[test]
    fn cusum_fires_on_slow_drift_before_any_single_window_alarms() {
        // Sums drift 10, 12, 14, ... — no window ever doubles, but the
        // cumulative excess over k=15 grows without bound.
        let sums: Vec<u64> = (0..20).map(|i| 10 + i).collect();
        let snap = series_of(&sums);
        let threshold = Detector::threshold("big", "sig", Severity::Critical, 100);
        let cusum = Detector::cusum("drift", "sig", Severity::Warning, 15 * 1000, 30 * 1000);
        let ledger = IncidentLedger::evaluate(&snap, &[threshold, cusum]);
        assert_eq!(ledger.len(), 1, "only the CUSUM fires");
        let inc = &ledger.incidents()[0];
        assert_eq!(inc.detector, "drift");
        // s crosses 30 once the per-window excess accumulates: windows
        // 6.. contribute +1, +2, ... — verify it fires mid-series and
        // stays open to the end.
        assert!(inc.first > 0 && inc.first < 190);
        assert_eq!(inc.state, IncidentState::Open);
    }

    #[test]
    fn ewma_flags_step_changes_after_warmup() {
        let mut sums = vec![10u64; 10];
        sums.extend([100u64; 3]);
        let snap = series_of(&sums);
        let det = [Detector::ewma(
            "e",
            "sig",
            Severity::Warning,
            200,
            50 * 1000,
            3,
        )];
        let ledger = IncidentLedger::evaluate(&snap, &det);
        assert_eq!(ledger.len(), 1);
        let inc = &ledger.incidents()[0];
        assert_eq!(inc.first, 100, "fires on the step window");
        // The EWMA catches up to the new level eventually; with α=0.2
        // the deviation stays above the band for the 3 step windows.
        assert!(inc.windows >= 1);
    }

    #[test]
    fn burn_rate_integrates_over_the_roll() {
        // Budget 10/window, roll of 4, factor 1.0: four windows of 12
        // burn 1.2× budget; isolated spikes within budget don't.
        let snap = series_of(&[12, 12, 12, 12, 0, 0, 40, 0, 0, 0]);
        let det = [Detector::burn_rate(
            "slo",
            "sig",
            Severity::Critical,
            10,
            4,
            1000,
        )];
        let ledger = IncidentLedger::evaluate(&snap, &det);
        assert!(!ledger.is_empty());
        let inc = &ledger.incidents()[0];
        assert_eq!(inc.detector, "slo");
        assert!(inc.first <= 30, "fires within the first roll");
        assert_eq!(inc.severity, Severity::Critical);
    }

    #[test]
    fn verdicts_are_deterministic_across_sharding() {
        let sums: Vec<u64> = (0..50).map(|i| (i * 7) % 40).collect();
        let whole = series_of(&sums);
        // Same samples recorded across two shards and merged.
        let a = SeriesStore::new();
        let b = SeriesStore::new();
        for (i, &sum) in sums.iter().enumerate() {
            let t = i as u64 * 10;
            let target = if i % 2 == 0 { &a } else { &b };
            if sum > 0 || i == 0 || i == sums.len() - 1 {
                target.series("sig", 10).record(t, sum);
            }
        }
        let merged = SeriesSnapshot::merged(&[a.snapshot(), b.snapshot()]);
        let dets = [
            Detector::threshold("t", "sig", Severity::Warning, 30),
            Detector::cusum("c", "sig", Severity::Warning, 20 * 1000, 60 * 1000),
        ];
        let l1 = IncidentLedger::evaluate(&whole, &dets);
        let l2 = IncidentLedger::evaluate(&merged, &dets);
        assert_eq!(l1, l2);
        assert_eq!(l1.to_jsonl(), l2.to_jsonl());
    }

    #[test]
    fn incidents_link_overlapping_spans() {
        let snap = series_of(&[0, 9, 0]);
        let det = [Detector::threshold("t", "sig", Severity::Warning, 5)];
        let mut ledger = IncidentLedger::evaluate(&snap, &det);
        assert_eq!(ledger.len(), 1);
        let tracer = Tracer::new();
        // Overlaps the breaching window [10, 19].
        tracer.complete("in", "test", Clock::SimPs, 12, 15, Vec::new());
        // Outside it.
        tracer.complete("out", "test", Clock::SimPs, 30, 40, Vec::new());
        // Right clock, touching the boundary.
        tracer.instant("edge", "test", Clock::SimPs, 19, Vec::new());
        // Wrong clock domain.
        tracer.complete("other", "test", Clock::SchedUs, 12, 15, Vec::new());
        let events = tracer.take();
        ledger.link_spans(&events, Clock::SimPs);
        assert_eq!(ledger.incidents()[0].spans, vec![0, 2]);
    }

    #[test]
    fn ledger_jsonl_round_trips() {
        let snap = series_of(&[9, 0, 9]);
        let det = [
            Detector::threshold("t", "sig", Severity::Critical, 5),
            Detector::cusum("c \"q\"", "sig", Severity::Warning, 1000, 4000),
        ];
        let mut ledger = IncidentLedger::evaluate(&snap, &det);
        ledger.ack(1, "looking, \"np\"");
        let text = ledger.to_jsonl();
        let back = parse_incidents_jsonl(&text).unwrap();
        assert_eq!(back, ledger);
        assert_eq!(back.to_jsonl(), text);
        assert!(parse_incidents_jsonl("{\"id\":\"x\"}\n").is_err());
        assert!(parse_incidents_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn absent_series_contribute_nothing() {
        let snap = series_of(&[9]);
        let det = [Detector::threshold("t", "nope", Severity::Warning, 1)];
        assert!(IncidentLedger::evaluate(&snap, &det).is_empty());
    }
}
