//! Bounded event log and RAII spans.
//!
//! The [`EventLog`] is a fixed-capacity ring: when full, the oldest
//! entry is overwritten, so long simulations keep a recent window of
//! activity without unbounded memory. [`Span`] measures a scope: on
//! drop it records wall nanoseconds (and an optional caller-supplied
//! unit count such as simulated picoseconds) into histograms and
//! appends a completion event.

use crate::metric::Histogram;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A single logged occurrence. `value` carries whatever quantity the
/// emitter chose (span duration in ns, an error count, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number across the log's lifetime; gaps never
    /// occur, so `seq` reveals how many events were evicted.
    pub seq: u64,
    pub label: String,
    pub value: u64,
}

#[derive(Debug)]
struct Ring {
    next_seq: u64,
    capacity: usize,
    /// Events evicted to make room — surfaced via
    /// [`EventLog::dropped`] so overflow is never silent.
    dropped: u64,
    entries: VecDeque<Event>,
}

/// A thread-safe bounded ring buffer of [`Event`]s.
#[derive(Clone, Debug)]
pub struct EventLog {
    inner: Arc<Mutex<Ring>>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::with_capacity(1024)
    }
}

impl EventLog {
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            inner: Arc::new(Mutex::new(Ring {
                next_seq: 0,
                capacity: capacity.max(1),
                dropped: 0,
                entries: VecDeque::new(),
            })),
        }
    }

    pub fn push(&self, label: impl Into<String>, value: u64) {
        let mut ring = self.inner.lock().unwrap();
        if ring.entries.len() == ring.capacity {
            ring.entries.pop_front();
            ring.dropped += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let label = label.into();
        ring.entries.push_back(Event { seq, label, value });
    }

    /// Oldest-to-newest copy of the retained window.
    pub fn drain_snapshot(&self) -> Vec<Event> {
        self.inner.lock().unwrap().entries.iter().cloned().collect()
    }

    /// Total events ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }

    /// Events evicted by ring overflow since creation. Report this
    /// next to exported windows (the run manifest does) so a
    /// truncated event log is visible rather than silently partial.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }
}

/// RAII scope timer. Created via [`Registry::span`](crate::Registry::span)
/// (or [`Span::start`] with explicit histograms); on drop it records
/// elapsed wall nanoseconds into `wall`, the value passed to
/// [`record_units`](Span::record_units) into `units`, and appends a
/// `label` event carrying the unit count to the log.
#[derive(Debug)]
pub struct Span {
    label: String,
    started: Instant,
    wall: Histogram,
    units: Option<Histogram>,
    unit_count: u64,
    log: Option<EventLog>,
}

impl Span {
    pub fn start(
        label: impl Into<String>,
        wall: Histogram,
        units: Option<Histogram>,
        log: Option<EventLog>,
    ) -> Self {
        Span {
            label: label.into(),
            started: Instant::now(),
            wall,
            units,
            unit_count: 0,
            log,
        }
    }

    /// Set the simulation-domain quantity (cycles, picoseconds, ops)
    /// this span covered; recorded into the units histogram on drop.
    pub fn record_units(&mut self, units: u64) {
        self.unit_count = units;
    }

    pub fn label(&self) -> &str {
        &self.label
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let wall_ns = self.started.elapsed().as_nanos() as u64;
        self.wall.record(wall_ns);
        if let Some(units) = &self.units {
            units.record(self.unit_count);
        }
        if let Some(log) = &self.log {
            log.push(self.label.clone(), self.unit_count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let log = EventLog::with_capacity(3);
        for i in 0..5u64 {
            log.push(format!("e{i}"), i);
        }
        let events = log.drain_snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        assert_eq!(events[2].label, "e4");
        assert_eq!(log.total_pushed(), 5);
        assert_eq!(log.dropped(), 2, "evictions are counted");
    }

    #[test]
    fn dropped_stays_zero_until_overflow() {
        let log = EventLog::with_capacity(4);
        for i in 0..4u64 {
            log.push("e", i);
        }
        assert_eq!(log.dropped(), 0);
        log.push("e", 4);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn span_records_wall_and_units() {
        let wall = Histogram::new();
        let units = Histogram::new();
        let log = EventLog::default();
        {
            let mut span = Span::start(
                "phase",
                wall.clone(),
                Some(units.clone()),
                Some(log.clone()),
            );
            span.record_units(12_345);
        }
        assert_eq!(wall.count(), 1);
        assert_eq!(units.count(), 1);
        assert_eq!(units.sum(), 12_345);
        let events = log.drain_snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].label, "phase");
        assert_eq!(events[0].value, 12_345);
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let log = EventLog::with_capacity(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = log.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        log.push("t", t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(log.drain_snapshot().len(), 64);
        assert_eq!(log.total_pushed(), 4000);
    }
}
