//! Workspace-wide observability: cheap atomic metrics, scoped spans,
//! a bounded event log, exporters, and run manifests.
//!
//! The crate is `std`-only and allocation-free on the hot path: a
//! [`Counter`], [`Gauge`], or [`Histogram`] handle is an `Arc` around
//! atomics, so recording is a single relaxed RMW (two for histograms)
//! — cheap enough to live inside the memory-controller command loop.
//!
//! # Structure
//!
//! - [`Registry`] owns named metrics; [`Scope`] prefixes names so each
//!   subsystem registers under its own namespace (`controller.reads`,
//!   `governor.fallbacks`, …).
//! - [`Span`] is an RAII timer: on drop it records wall time and an
//!   optional caller-supplied unit count (cycles, picoseconds, ops)
//!   into histograms, and appends to the registry's [`EventLog`].
//! - [`Snapshot`] is a point-in-time copy of every metric, exportable
//!   as JSONL, CSV, or a console table (all hand-rolled, no serde).
//! - [`RunManifest`] captures run provenance (seed, knobs, git
//!   describe, wall time) next to the metric files.
//! - [`trace`] records causal spans against deterministic clocks and
//!   exports them as Chrome trace-event JSON or a span-tree dump;
//!   [`json`] is the matching hand-rolled parser used by readers
//!   (report generation, trace validation, round-trip tests).
//! - [`series`] rolls samples into fixed-width sim-time windows
//!   (count/sum/min/max + log2 sketch) that shard and merge with the
//!   same worker-order discipline as snapshots; [`monitor`] evaluates
//!   anomaly detectors over those windows and keeps the incident
//!   ledger that links breaches back to trace spans.
//!
//! # Determinism
//!
//! Simulation metrics are pure functions of the seed, so snapshots of
//! them are byte-identical across runs. Wall-clock measurements are
//! not; by convention every wall-time histogram name ends in
//! [`WALL_SUFFIX`], and [`Snapshot::sim_only`] strips them so callers
//! can emit a deterministic metrics file plus a manifest that carries
//! the (non-deterministic) timing.

#![forbid(unsafe_code)]

mod event;
mod export;
pub mod json;
mod manifest;
mod metric;
pub mod monitor;
mod registry;
pub mod series;
pub mod trace;

pub use event::{Event, EventLog, Span};
pub use export::{
    escape_json, format_console_table, format_csv, format_jsonl, parse_csv_line, parse_jsonl, slug,
};
pub use manifest::RunManifest;
pub use metric::{
    bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS, GAUGE_SCALE,
};
pub use registry::{MetricValue, Registry, Scope, Snapshot, SnapshotEntry, WALL_SUFFIX};
