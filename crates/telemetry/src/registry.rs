//! The metric registry: named handles, scoped namespaces, snapshots.

use crate::event::{EventLog, Span};
use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Wall-clock histograms end in this suffix by convention, so
/// [`Snapshot::sim_only`] can strip non-deterministic values from
/// exports that must be byte-identical across runs of the same seed.
pub const WALL_SUFFIX: &str = ".wall_ns";

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Mutex<BTreeMap<String, Metric>>,
    events: EventLog,
}

/// A shared, thread-safe collection of named metrics.
///
/// Cloning a `Registry` is cheap and aliases the same underlying
/// store. Handles returned by [`counter`](Registry::counter) /
/// [`gauge`](Registry::gauge) / [`histogram`](Registry::histogram)
/// stay valid for the registry's lifetime; looking one up twice
/// returns the same metric.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.inner.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric '{name}' already registered as {}", kind_of(other)),
        }
    }

    /// Get or create the gauge `name` (same contract as `counter`).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.inner.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric '{name}' already registered as {}", kind_of(other)),
        }
    }

    /// Get or create the histogram `name` (same contract as `counter`).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.inner.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric '{name}' already registered as {}", kind_of(other)),
        }
    }

    /// Register pre-existing handles under `name`, folding any prior
    /// contents of the handle into the registry's view. Used when a
    /// component that recorded into detached handles is later
    /// attached to a registry.
    pub fn adopt_histogram(&self, name: &str, hist: &Histogram) {
        self.histogram(name).merge_from(hist);
    }

    pub fn adopt_counter(&self, name: &str, counter: &Counter) {
        self.counter(name).add(counter.get());
    }

    /// A namespaced view: every metric created through the scope gets
    /// `prefix.` prepended to its name.
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope {
            registry: self.clone(),
            prefix: prefix.to_string(),
        }
    }

    /// The registry's bounded event log.
    pub fn events(&self) -> EventLog {
        self.inner.events.clone()
    }

    /// Start an RAII span named `label`: wall time goes to
    /// `<label>.wall_ns`, units to `<label>.units`, completion events
    /// to the registry log.
    pub fn span(&self, label: &str) -> Span {
        Span::start(
            label,
            self.histogram(&format!("{label}{WALL_SUFFIX}")),
            Some(self.histogram(&format!("{label}.units"))),
            Some(self.events()),
        )
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.inner.metrics.lock().unwrap();
        Snapshot {
            entries: metrics
                .iter()
                .map(|(name, metric)| SnapshotEntry {
                    name: name.clone(),
                    value: match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

fn kind_of(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "a counter",
        Metric::Gauge(_) => "a gauge",
        Metric::Histogram(_) => "a histogram",
    }
}

/// A prefix-applying view over a [`Registry`] (see [`Registry::scope`]).
#[derive(Clone, Debug)]
pub struct Scope {
    registry: Registry,
    prefix: String,
}

impl Scope {
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&self.qualified(name))
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(&self.qualified(name))
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(&self.qualified(name))
    }

    pub fn span(&self, label: &str) -> Span {
        self.registry.span(&self.qualified(label))
    }

    /// A nested scope `self.prefix + "." + prefix`.
    pub fn scope(&self, prefix: &str) -> Scope {
        self.registry.scope(&self.qualified(prefix))
    }

    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Replay a snapshot into this scope: each entry is re-recorded
    /// under `<prefix>.<entry name>`. Counters add, gauges set, and
    /// histograms fold via [`Histogram::merge_snapshot`] — so
    /// absorbing the snapshot of a private registry produces exactly
    /// the metrics that recording into this scope directly would
    /// have. Used by result caches to credit a cache hit's metrics to
    /// the requesting scope without re-running the simulation.
    pub fn absorb(&self, snap: &Snapshot) {
        for entry in &snap.entries {
            match &entry.value {
                MetricValue::Counter(v) => self.counter(&entry.name).add(*v),
                MetricValue::Gauge(v) => self.gauge(&entry.name).set(*v),
                MetricValue::Histogram(h) => self.histogram(&entry.name).merge_snapshot(h),
            }
        }
    }

    fn qualified(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }
}

/// One metric's value at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// A named metric at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotEntry {
    pub name: String,
    pub value: MetricValue,
}

/// A point-in-time copy of a registry's metrics, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Convenience: the value of counter `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Entries whose names pass `keep`.
    pub fn filter(&self, keep: impl Fn(&str) -> bool) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter(|e| keep(&e.name))
                .cloned()
                .collect(),
        }
    }

    /// Strip wall-clock metrics (names ending in [`WALL_SUFFIX`]) so
    /// the result is deterministic for a fixed seed.
    pub fn sim_only(&self) -> Snapshot {
        self.filter(|name| !name.ends_with(WALL_SUFFIX))
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Merge snapshots taken from independent registries into one,
    /// deterministically: the result depends only on `parts` and their
    /// order, never on when or where each part was captured. Counters
    /// add, histograms fold exactly
    /// ([`HistogramSnapshot::merge_from`]), and for a gauge the last
    /// part (in input order) that carries the name wins — gauges are
    /// instantaneous levels, so later parts are treated as fresher.
    ///
    /// # Panics
    /// If the same name appears with different metric kinds.
    pub fn merged(parts: &[Snapshot]) -> Snapshot {
        let mut acc: BTreeMap<String, MetricValue> = BTreeMap::new();
        for part in parts {
            for entry in &part.entries {
                match acc.entry(entry.name.clone()) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(entry.value.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut slot) => {
                        match (slot.get_mut(), &entry.value) {
                            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                                a.merge_from(b);
                            }
                            (have, got) => panic!(
                                "snapshot merge: '{}' is {} in one part and {} in another",
                                entry.name,
                                value_kind(have),
                                value_kind(got)
                            ),
                        }
                    }
                }
            }
        }
        Snapshot {
            entries: acc
                .into_iter()
                .map(|(name, value)| SnapshotEntry { name, value })
                .collect(),
        }
    }
}

fn value_kind(value: &MetricValue) -> &'static str {
    match value {
        MetricValue::Counter(_) => "a counter",
        MetricValue::Gauge(_) => "a gauge",
        MetricValue::Histogram(_) => "a histogram",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_idempotent_and_shared() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        assert_eq!(r.counter("a").get(), 3);
        let clone = r.clone();
        clone.counter("a").inc();
        assert_eq!(r.counter("a").get(), 4);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn scopes_prefix_names() {
        let r = Registry::new();
        let ctrl = r.scope("controller");
        ctrl.counter("reads").add(7);
        let nested = ctrl.scope("ch0");
        nested.gauge("depth").set(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("controller.reads"), 7);
        assert_eq!(
            snap.get("controller.ch0.depth"),
            Some(&MetricValue::Gauge(3))
        );
    }

    #[test]
    fn snapshot_is_sorted_and_filterable() {
        let r = Registry::new();
        r.counter("z.ops");
        r.counter("a.ops");
        r.histogram("run.wall_ns").record(5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.ops", "run.wall_ns", "z.ops"]);
        let sim = snap.sim_only();
        assert_eq!(sim.len(), 2);
        assert!(sim.get("run.wall_ns").is_none());
    }

    #[test]
    fn registry_span_registers_wall_and_units() {
        let r = Registry::new();
        {
            let mut span = r.span("phase1");
            span.record_units(99);
        }
        let snap = r.snapshot();
        match snap.get("phase1.units") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 99);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(snap.get("phase1.wall_ns").is_some());
        assert_eq!(r.events().total_pushed(), 1);
    }

    #[test]
    fn merged_equals_single_registry_result() {
        // Two tasks recording into private registries, merged at join,
        // must equal one registry fed both streams.
        let (a, b, whole) = (Registry::new(), Registry::new(), Registry::new());
        for (part, base) in [(&a, 0u64), (&b, 1000)] {
            part.counter("ops").add(base + 5);
            whole.counter("ops").add(base + 5);
            part.gauge("depth").set(base as i64);
            whole.gauge("depth").set(base as i64);
            for v in [base + 1, base + 90] {
                part.histogram("lat").record(v);
                whole.histogram("lat").record(v);
            }
        }
        a.counter("only_a").inc();
        whole.counter("only_a").inc();
        let merged = Snapshot::merged(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn merged_with_empty_parts_is_identity() {
        let r = Registry::new();
        r.histogram("h").record(7);
        let snap = r.snapshot();
        let merged = Snapshot::merged(&[Snapshot::default(), snap.clone(), Snapshot::default()]);
        assert_eq!(merged, snap);
        assert!(Snapshot::merged(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "snapshot merge")]
    fn merged_rejects_kind_mismatch() {
        let a = Registry::new();
        a.counter("x");
        let b = Registry::new();
        b.gauge("x");
        let _ = Snapshot::merged(&[a.snapshot(), b.snapshot()]);
    }

    #[test]
    fn absorb_equals_direct_recording() {
        // Recording into a private registry and absorbing its
        // snapshot must equal recording into the scope directly.
        let private = Registry::new();
        private.counter("reads").add(9);
        private.gauge("depth").set(-2);
        for v in [3u64, 12, 700] {
            private.histogram("lat").record(v);
        }

        let direct = Registry::new();
        let scope = direct.scope("node.a");
        scope.counter("reads").add(9);
        scope.gauge("depth").set(-2);
        for v in [3u64, 12, 700] {
            scope.histogram("lat").record(v);
        }

        let absorbed = Registry::new();
        absorbed.scope("node.a").absorb(&private.snapshot());
        assert_eq!(absorbed.snapshot(), direct.snapshot());

        // Absorbing twice doubles counters/histograms (replay
        // semantics), matching two direct recordings.
        absorbed.scope("node.a").absorb(&private.snapshot());
        scope.counter("reads").add(9);
        scope.gauge("depth").set(-2);
        for v in [3u64, 12, 700] {
            scope.histogram("lat").record(v);
        }
        assert_eq!(absorbed.snapshot(), direct.snapshot());
    }

    #[test]
    fn adopt_folds_existing_values() {
        let r = Registry::new();
        let c = Counter::new();
        c.add(5);
        r.adopt_counter("pre.count", &c);
        let h = Histogram::new();
        h.record(10);
        r.adopt_histogram("pre.hist", &h);
        let snap = r.snapshot();
        assert_eq!(snap.counter("pre.count"), 5);
        match snap.get("pre.hist") {
            Some(MetricValue::Histogram(hs)) => assert_eq!(hs.sum, 10),
            other => panic!("unexpected {other:?}"),
        }
    }
}
