//! Fixed-width sim-time windowed rollups — the streaming layer of the
//! health plane.
//!
//! A [`Series`] buckets samples by *when they happened on a
//! deterministic simulation clock* (picoseconds, epochs, schedule
//! milliseconds — the recorder picks the clock and the window width),
//! keeping one [`WindowAgg`] per non-empty window: count, sum,
//! min/max, and the same log₂ bucket sketch [`crate::Histogram`] uses,
//! so every window supports an approximate quantile. Unlike a
//! histogram, a series answers *when* — "CE rate through time" rather
//! than "CE rate overall" — which is what the detector suite in
//! [`crate::monitor`] consumes.
//!
//! # Determinism and merging
//!
//! Window aggregation is commutative and associative (counts and sums
//! add, extremes widen, sketch buckets fold), so a series' snapshot
//! depends only on the *set* of `(time, value)` samples, never on the
//! order threads recorded them. Sharded runs follow the same
//! worker-order discipline as metric snapshots: each worker records
//! into its own [`SeriesStore`] (see [`SeriesStore::fork`]), the
//! coordinator snapshots each shard and folds them with
//! [`SeriesSnapshot::merged`] in canonical input order, and the result
//! is byte-identical to a single-stream run over the union of samples.
//!
//! # Export
//!
//! [`SeriesSnapshot::to_jsonl`] emits one JSON object per window,
//! sorted by `(series name, window start)` — deterministic for a fixed
//! seed — and [`parse_series_jsonl`] reads it back exactly.

use crate::export::escape_json;
use crate::json::{self, Json};
use crate::metric::{bucket_bounds, bucket_index};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// The rollup of one sim-time window: count/sum/min/max plus the
/// non-empty log₂ sketch buckets as `(lo, hi, count)` with inclusive
/// bounds (the [`crate::HistogramSnapshot`] representation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowAgg {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<(u64, u64, u64)>,
}

impl WindowAgg {
    /// Folds one sample in.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        let (lo, hi) = bucket_bounds(bucket_index(value));
        match self.buckets.binary_search_by_key(&lo, |&(l, _, _)| l) {
            Ok(idx) => self.buckets[idx].2 += 1,
            Err(idx) => self.buckets.insert(idx, (lo, hi, 1)),
        }
    }

    /// Folds another window's rollup in, exactly: the sorted bucket
    /// lists merge-join, counts and sums add, the min/max envelope
    /// widens (mirroring `HistogramSnapshot::merge_from`).
    pub fn merge_from(&mut self, other: &WindowAgg) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        while let (Some(&&(alo, ahi, an)), Some(&&(blo, bhi, bn))) = (a.peek(), b.peek()) {
            if alo == blo {
                merged.push((alo, ahi, an + bn));
                a.next();
                b.next();
            } else if alo < blo {
                merged.push((alo, ahi, an));
                a.next();
            } else {
                merged.push((blo, bhi, bn));
                b.next();
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value in the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Log₂-resolution quantile: the upper bound of the sketch bucket
    /// at which the cumulative count first reaches `q` of the total.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for &(_, hi, n) in &self.buckets {
            cumulative += n;
            if cumulative >= target {
                return Some(hi);
            }
        }
        Some(u64::MAX)
    }
}

#[derive(Debug)]
struct SeriesInner {
    width: u64,
    windows: BTreeMap<u64, WindowAgg>,
}

/// A shareable handle to one named time series (cheap `Arc` clone).
/// Recording from several threads is safe *and* deterministic: window
/// folds are order-insensitive, so the snapshot depends only on the
/// sample set.
#[derive(Clone, Debug)]
pub struct Series {
    inner: Arc<Mutex<SeriesInner>>,
}

impl Series {
    fn new(width: u64) -> Series {
        Series {
            inner: Arc::new(Mutex::new(SeriesInner {
                width,
                windows: BTreeMap::new(),
            })),
        }
    }

    /// The fixed window width, in the recorder's sim-time units.
    pub fn width(&self) -> u64 {
        self.inner.lock().unwrap().width
    }

    /// Rolls `value` into the window containing sim-time `t`.
    pub fn record(&self, t: u64, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        let start = t - t % inner.width;
        inner.windows.entry(start).or_default().record(value);
    }

    /// Non-empty windows recorded so far.
    pub fn window_count(&self) -> usize {
        self.inner.lock().unwrap().windows.len()
    }

    fn snapshot_entry(&self, name: &str) -> SeriesEntry {
        let inner = self.inner.lock().unwrap();
        SeriesEntry {
            name: name.to_string(),
            width: inner.width,
            windows: inner.windows.iter().map(|(&s, w)| (s, w.clone())).collect(),
        }
    }
}

/// Owns named series, mirroring [`crate::Registry`] for metrics: the
/// coordinator holds one store, each recording site registers its
/// series by name, and [`snapshot`](SeriesStore::snapshot) captures
/// everything sorted by name.
#[derive(Clone, Debug, Default)]
pub struct SeriesStore {
    inner: Arc<Mutex<BTreeMap<String, Series>>>,
}

impl SeriesStore {
    pub fn new() -> SeriesStore {
        SeriesStore::default()
    }

    /// The series named `name` with window width `width`, registering
    /// it on first use.
    ///
    /// # Panics
    /// If `width` is 0, or `name` is already registered with a
    /// different width (same-name recorders must agree on the clock).
    pub fn series(&self, name: &str, width: u64) -> Series {
        assert!(width > 0, "series '{name}' needs a nonzero window width");
        let mut map = self.inner.lock().unwrap();
        let s = map
            .entry(name.to_string())
            .or_insert_with(|| Series::new(width))
            .clone();
        assert_eq!(
            s.width(),
            width,
            "series '{name}' re-registered with a different window width"
        );
        s
    }

    /// The already-registered series named `name`, if any.
    pub fn get(&self, name: &str) -> Option<Series> {
        self.inner.lock().unwrap().get(name).cloned()
    }

    /// Registered series count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A detached store with the same registered names and widths but
    /// no samples — what a worker shard records into. Snapshot the
    /// shards and fold them back with [`SeriesSnapshot::merged`] (or
    /// [`absorb`](SeriesStore::absorb)) in canonical worker order.
    pub fn fork(&self) -> SeriesStore {
        let map = self.inner.lock().unwrap();
        SeriesStore {
            inner: Arc::new(Mutex::new(
                map.iter()
                    .map(|(name, s)| (name.clone(), Series::new(s.width())))
                    .collect(),
            )),
        }
    }

    /// Folds a shard's snapshot back into this live store (registering
    /// any series the shard discovered).
    pub fn absorb(&self, snap: &SeriesSnapshot) {
        for entry in &snap.entries {
            let s = self.series(&entry.name, entry.width);
            let mut inner = s.inner.lock().unwrap();
            for (start, agg) in &entry.windows {
                inner.windows.entry(*start).or_default().merge_from(agg);
            }
        }
    }

    /// A point-in-time copy of every series, sorted by name.
    pub fn snapshot(&self) -> SeriesSnapshot {
        let map = self.inner.lock().unwrap();
        SeriesSnapshot {
            entries: map.iter().map(|(name, s)| s.snapshot_entry(name)).collect(),
        }
    }
}

/// A point-in-time copy of one series: its non-empty windows as
/// `(window start, rollup)`, ascending.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesEntry {
    pub name: String,
    pub width: u64,
    pub windows: Vec<(u64, WindowAgg)>,
}

impl SeriesEntry {
    /// Total samples across all windows.
    pub fn total_count(&self) -> u64 {
        self.windows.iter().map(|(_, w)| w.count).sum()
    }
}

/// A point-in-time copy of a whole [`SeriesStore`], sorted by series
/// name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeriesSnapshot {
    pub entries: Vec<SeriesEntry>,
}

impl SeriesSnapshot {
    /// Folds per-worker snapshots, in input order, into one: same-name
    /// series merge window-by-window, so the result equals the
    /// snapshot of a single store fed every shard's samples.
    ///
    /// # Panics
    /// If the same series name appears with different window widths.
    pub fn merged(parts: &[SeriesSnapshot]) -> SeriesSnapshot {
        let mut acc: BTreeMap<String, (u64, BTreeMap<u64, WindowAgg>)> = BTreeMap::new();
        for part in parts {
            for entry in &part.entries {
                let slot = acc
                    .entry(entry.name.clone())
                    .or_insert_with(|| (entry.width, BTreeMap::new()));
                assert_eq!(
                    slot.0, entry.width,
                    "series '{}' has conflicting window widths across shards",
                    entry.name
                );
                for (start, agg) in &entry.windows {
                    slot.1.entry(*start).or_default().merge_from(agg);
                }
            }
        }
        SeriesSnapshot {
            entries: acc
                .into_iter()
                .map(|(name, (width, windows))| SeriesEntry {
                    name,
                    width,
                    windows: windows.into_iter().collect(),
                })
                .collect(),
        }
    }

    /// The entry named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&SeriesEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Series count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Non-empty windows across all series.
    pub fn window_count(&self) -> usize {
        self.entries.iter().map(|e| e.windows.len()).sum()
    }

    /// One JSON object per window, sorted by `(series, start)`:
    ///
    /// ```text
    /// {"series":"governor.ce","width":8,"start":16,"count":1,"sum":412,
    ///  "min":412,"max":412,"buckets":[{"lo":256,"hi":511,"count":1}]}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            for (start, w) in &entry.windows {
                let _ = write!(
                    out,
                    "{{\"series\":\"{}\",\"width\":{},\"start\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                    escape_json(&entry.name),
                    entry.width,
                    start,
                    w.count,
                    w.sum,
                    w.min,
                    w.max,
                );
                for (i, (lo, hi, n)) in w.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{{\"lo\":{lo},\"hi\":{hi},\"count\":{n}}}");
                }
                out.push_str("]}\n");
            }
        }
        out
    }
}

/// Parses [`SeriesSnapshot::to_jsonl`] output back into a snapshot
/// (folding duplicate `(series, start)` lines, so re-parsing a merged
/// export round-trips exactly).
pub fn parse_series_jsonl(text: &str) -> Result<SeriesSnapshot, String> {
    let mut parts = SeriesSnapshot::default();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let ctx = |field: &str| format!("line {}: bad or missing '{field}'", idx + 1);
        let name = doc
            .get("series")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("series"))?
            .to_string();
        let width = doc
            .get("width")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("width"))?;
        let start = doc
            .get("start")
            .and_then(Json::as_u64)
            .ok_or_else(|| ctx("start"))?;
        let field = |key: &str| doc.get(key).and_then(Json::as_u64).ok_or_else(|| ctx(key));
        let mut agg = WindowAgg {
            count: field("count")?,
            sum: field("sum")?,
            min: field("min")?,
            max: field("max")?,
            buckets: Vec::new(),
        };
        for b in doc
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| ctx("buckets"))?
        {
            let get = |key: &str| b.get(key).and_then(Json::as_u64).ok_or_else(|| ctx(key));
            agg.buckets.push((get("lo")?, get("hi")?, get("count")?));
        }
        parts.entries.push(SeriesEntry {
            name,
            width,
            windows: vec![(start, agg)],
        });
    }
    let one = SeriesSnapshot::merged(&[parts]);
    Ok(one)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_time_by_width() {
        let store = SeriesStore::new();
        let s = store.series("x", 10);
        s.record(0, 5);
        s.record(9, 7);
        s.record(10, 1);
        s.record(25, 3);
        let snap = store.snapshot();
        let e = snap.get("x").unwrap();
        assert_eq!(e.width, 10);
        let starts: Vec<u64> = e.windows.iter().map(|(s, _)| *s).collect();
        assert_eq!(starts, vec![0, 10, 20]);
        let w0 = &e.windows[0].1;
        assert_eq!((w0.count, w0.sum, w0.min, w0.max), (2, 12, 5, 7));
        assert_eq!(e.total_count(), 4);
    }

    #[test]
    fn window_sketch_supports_quantiles() {
        let mut w = WindowAgg::default();
        for v in [1u64, 2, 3, 4, 100, 200] {
            w.record(v);
        }
        assert_eq!(w.buckets.iter().map(|b| b.2).sum::<u64>(), 6);
        assert!(w.approx_quantile(0.5).unwrap() <= 7);
        assert_eq!(w.approx_quantile(1.0), Some(255));
        assert_eq!(WindowAgg::default().approx_quantile(0.5), None);
        assert!((w.mean() - 310.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn record_order_does_not_matter() {
        let a = SeriesStore::new();
        let b = SeriesStore::new();
        let samples: Vec<(u64, u64)> = (0..200).map(|i| (i * 3 % 50, i * 7 % 23)).collect();
        let sa = a.series("s", 8);
        for &(t, v) in &samples {
            sa.record(t, v);
        }
        let sb = b.series("s", 8);
        for &(t, v) in samples.iter().rev() {
            sb.record(t, v);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn sharded_merge_equals_single_stream() {
        let whole = SeriesStore::new();
        let template = SeriesStore::new();
        template.series("m", 16); // register the shape up front
        let shards: Vec<SeriesStore> = (0..3).map(|_| template.fork()).collect();
        for i in 0..300u64 {
            let t = i * 5 % 128;
            let v = i % 17;
            whole.series("m", 16).record(t, v);
            shards[(i % 3) as usize].series("m", 16).record(t, v);
        }
        let parts: Vec<SeriesSnapshot> = shards.iter().map(SeriesStore::snapshot).collect();
        let merged = SeriesSnapshot::merged(&parts);
        assert_eq!(merged, whole.snapshot());
        assert_eq!(merged.to_jsonl(), whole.snapshot().to_jsonl());
        // absorb() replays shards into a live store identically.
        let live = SeriesStore::new();
        for p in &parts {
            live.absorb(p);
        }
        assert_eq!(live.snapshot(), whole.snapshot());
    }

    #[test]
    fn jsonl_round_trips() {
        let store = SeriesStore::new();
        let s = store.series("ecc.detect", 1_000);
        s.record(0, 0);
        s.record(999, 3);
        s.record(5_000, u64::MAX);
        store.series("empty \"name\"", 7).record(3, 1);
        let snap = store.snapshot();
        let text = snap.to_jsonl();
        let back = parse_series_jsonl(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_jsonl(), text);
        assert!(parse_series_jsonl("{\"series\":1}\n").is_err());
        assert!(parse_series_jsonl("").unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "different window width")]
    fn width_conflict_panics() {
        let store = SeriesStore::new();
        store.series("x", 10);
        store.series("x", 20);
    }

    #[test]
    fn fork_is_detached_but_shares_shape() {
        let store = SeriesStore::new();
        store.series("a", 4).record(0, 1);
        let shard = store.fork();
        assert_eq!(shard.len(), 1);
        assert_eq!(shard.get("a").unwrap().width(), 4);
        assert_eq!(shard.get("a").unwrap().window_count(), 0, "no samples");
        shard.series("a", 4).record(8, 2);
        assert_eq!(store.get("a").unwrap().window_count(), 1, "detached");
    }
}
