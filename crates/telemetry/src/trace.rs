//! Causal tracing against deterministic clocks.
//!
//! A [`Tracer`] records [`TraceEvent`]s — spans with parent/child
//! causality plus point instants — where every timestamp is supplied
//! by the caller from a *deterministic* clock: simulation picoseconds
//! in memsim/protocol code, simulated-schedule microseconds in the
//! scheduler, and a per-tracer monotonic tick counter for engine-level
//! work (task lifecycle, cache lookups) that has no simulated time of
//! its own. Because no wall clock ever reaches an event, a trace is a
//! pure function of the seed: byte-identical across `--jobs` values
//! and across runs. Wall-clock durations stay on diagnostic channels
//! (`RunManifest`, `timing.jsonl`) — never in trace output.
//!
//! Parallel fan-outs keep determinism the same way metric snapshots
//! do: each worker records into its own private `Tracer`, and the
//! coordinator [`absorb`](Tracer::absorb)s the buffers in input order
//! after the join, so the merged event list is independent of
//! completion order.
//!
//! Exporters: [`chrome_trace`] emits Chrome trace-event JSON (loadable
//! in Perfetto / `chrome://tracing`; one process per target, one
//! thread lane per clock domain) and [`span_tree`] a compact indented
//! text dump. [`check_nesting`] and [`check_well_nested`] verify the
//! parent/child invariants on in-memory and re-parsed traces
//! respectively.

use crate::export::escape_json;
use crate::json::{self, Json};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// The deterministic clock domain a timestamp was read from. Each
/// domain gets its own thread lane in the Chrome export, so timestamps
/// from different domains are never compared against each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Clock {
    /// Per-tracer monotonic counter ([`Tracer::tick`]): engine-level
    /// ordering for work with no simulated time (task lifecycle,
    /// cache lookups).
    Ticks,
    /// Simulation picoseconds (memsim / protocol time).
    SimPs,
    /// Simulated schedule microseconds (scheduler time).
    SchedUs,
}

impl Clock {
    /// Stable thread id for the Chrome export.
    pub fn tid(self) -> u64 {
        match self {
            Clock::Ticks => 0,
            Clock::SimPs => 1,
            Clock::SchedUs => 2,
        }
    }

    /// Human-readable lane name for the Chrome export.
    pub fn lane(self) -> &'static str {
        match self {
            Clock::Ticks => "engine (ticks)",
            Clock::SimPs => "simulation (ps)",
            Clock::SchedUs => "schedule (us)",
        }
    }

    /// Short unit tag for the text dump.
    fn unit(self) -> &'static str {
        match self {
            Clock::Ticks => "tick",
            Clock::SimPs => "ps",
            Clock::SchedUs => "us",
        }
    }
}

/// Span vs instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ph {
    /// An interval `[start, end]`.
    Span,
    /// A point occurrence; `end == start`.
    Instant,
}

/// One recorded occurrence. `id` equals the event's index in its
/// tracer's buffer, so lookups and re-parenting are O(1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub id: u64,
    /// Causal parent (the innermost open span when this event was
    /// recorded, or an explicit parent). `None` for roots.
    pub parent: Option<u64>,
    pub name: String,
    /// Category: the subsystem that recorded the event ("runner",
    /// "memsim", "protocol", "model", "scheduler").
    pub cat: &'static str,
    pub clock: Clock,
    pub ph: Ph,
    pub start: u64,
    /// For spans, the closing timestamp (equals `start` while the span
    /// is still open); for instants, always equals `start`.
    pub end: u64,
    /// Free-form key/value annotations, in insertion order.
    pub args: Vec<(String, String)>,
}

/// Convenience constructor for an args pair.
pub fn kv(key: &str, value: impl ToString) -> (String, String) {
    (key.to_string(), value.to_string())
}

/// Handle to an open span, returned by [`Tracer::begin`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// The underlying event id (for explicit parenting).
    pub fn id(self) -> u64 {
        self.0
    }
}

#[derive(Debug, Default)]
struct TraceBuf {
    events: Vec<TraceEvent>,
    /// Ids of currently-open spans, innermost last.
    stack: Vec<u64>,
    tick: u64,
}

/// A shareable recorder of [`TraceEvent`]s (cheap `Arc` clone).
///
/// Spans follow stack discipline within one tracer: [`begin`]
/// (Tracer::begin) pushes, [`end`](Tracer::end) pops, and every event
/// recorded in between is parented to the innermost open span.
/// Tracers are thread-safe, but deterministic traces require that
/// concurrent workers use *private* tracers merged via
/// [`absorb`](Tracer::absorb) — interleaving two threads into one
/// tracer records their real scheduling.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    buf: Arc<Mutex<TraceBuf>>,
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Next value of the tracer's monotonic tick counter (the
    /// [`Clock::Ticks`] domain).
    pub fn tick(&self) -> u64 {
        let mut b = self.buf.lock().unwrap();
        let t = b.tick;
        b.tick += 1;
        t
    }

    /// Opens a span at `start`, parented to the innermost open span.
    pub fn begin(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        clock: Clock,
        start: u64,
    ) -> SpanId {
        let mut b = self.buf.lock().unwrap();
        let id = b.events.len() as u64;
        let parent = b.stack.last().copied();
        b.events.push(TraceEvent {
            id,
            parent,
            name: name.into(),
            cat,
            clock,
            ph: Ph::Span,
            start,
            end: start,
            args: Vec::new(),
        });
        b.stack.push(id);
        SpanId(id)
    }

    /// Closes the span at `end`. Tolerant of unwound callees: any
    /// spans still open above `span` (e.g. after a caught panic) are
    /// implicitly closed at their own start time.
    pub fn end(&self, span: SpanId, end: u64) {
        self.end_with(span, end, Vec::new());
    }

    /// [`end`](Tracer::end), attaching `args` to the closed span.
    pub fn end_with(&self, span: SpanId, end: u64, args: Vec<(String, String)>) {
        let mut b = self.buf.lock().unwrap();
        while let Some(top) = b.stack.pop() {
            if top == span.0 {
                break;
            }
        }
        // Everything recorded after `span` opened is a descendant
        // (stack discipline), so a span never closes before its
        // same-clock children — e.g. a write drain whose resume lands
        // past the last instruction's completion time.
        let clock = b.events[span.0 as usize].clock;
        let cover = b.events[span.0 as usize + 1..]
            .iter()
            .filter(|e| e.clock == clock)
            .map(|e| e.end)
            .max()
            .unwrap_or(0);
        let ev = &mut b.events[span.0 as usize];
        ev.end = end.max(ev.start).max(cover);
        ev.args.extend(args);
    }

    /// Records an already-closed span `[start, end]` without touching
    /// the open-span stack, parented to the innermost open span.
    /// Returns the event id. Sibling complete-spans may overlap (e.g.
    /// concurrent scheduler jobs).
    pub fn complete(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        clock: Clock,
        start: u64,
        end: u64,
        args: Vec<(String, String)>,
    ) -> u64 {
        let parent = self.buf.lock().unwrap().stack.last().copied();
        self.complete_with_parent(name, cat, clock, start, end, parent, args)
    }

    /// [`complete`](Tracer::complete) with an explicit parent (e.g.
    /// chaining an `ecc.reread` span to the `ecc.detect` instant that
    /// caused it).
    #[allow(clippy::too_many_arguments)]
    pub fn complete_with_parent(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        clock: Clock,
        start: u64,
        end: u64,
        parent: Option<u64>,
        args: Vec<(String, String)>,
    ) -> u64 {
        let mut b = self.buf.lock().unwrap();
        let id = b.events.len() as u64;
        b.events.push(TraceEvent {
            id,
            parent,
            name: name.into(),
            cat,
            clock,
            ph: Ph::Span,
            start,
            end: end.max(start),
            args,
        });
        id
    }

    /// Records a point occurrence, parented to the innermost open
    /// span. Returns the event id.
    pub fn instant(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        clock: Clock,
        ts: u64,
        args: Vec<(String, String)>,
    ) -> u64 {
        let parent = self.buf.lock().unwrap().stack.last().copied();
        self.instant_with_parent(name, cat, clock, ts, parent, args)
    }

    /// [`instant`](Tracer::instant) with an explicit parent.
    pub fn instant_with_parent(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        clock: Clock,
        ts: u64,
        parent: Option<u64>,
        args: Vec<(String, String)>,
    ) -> u64 {
        let mut b = self.buf.lock().unwrap();
        let id = b.events.len() as u64;
        b.events.push(TraceEvent {
            id,
            parent,
            name: name.into(),
            cat,
            clock,
            ph: Ph::Instant,
            start: ts,
            end: ts,
            args,
        });
        id
    }

    /// Merges a completed child buffer (a full [`take`](Tracer::take)
    /// output) into this tracer: ids are rebased, child roots are
    /// parented to this tracer's innermost open span, and
    /// [`Clock::Ticks`] timestamps are shifted past this tracer's
    /// current tick so the merged tick lane stays monotonic.
    /// Absorbing worker tracers in *input* order is what keeps fan-out
    /// traces independent of completion order.
    pub fn absorb(&self, events: Vec<TraceEvent>) {
        let mut b = self.buf.lock().unwrap();
        let offset = b.events.len() as u64;
        let adopt_parent = b.stack.last().copied();
        let tick_base = b.tick;
        let mut max_tick = tick_base;
        for mut ev in events {
            debug_assert_eq!(
                ev.id + offset,
                b.events.len() as u64,
                "absorb needs a full take()"
            );
            ev.id += offset;
            ev.parent = ev.parent.map(|p| p + offset).or(adopt_parent);
            if ev.clock == Clock::Ticks {
                ev.start += tick_base;
                ev.end += tick_base;
                max_tick = max_tick.max(ev.end + 1);
            }
            b.events.push(ev);
        }
        b.tick = max_tick;
    }

    /// Drains every recorded event, resetting the tracer. Open spans
    /// are implicitly closed at their start time.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut b = self.buf.lock().unwrap();
        b.stack.clear();
        b.tick = 0;
        std::mem::take(&mut b.events)
    }

    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Structural + temporal nesting invariants on an in-memory buffer:
/// every parent id precedes its child, and a span child of a
/// *same-clock* span parent is contained in the parent's interval.
/// (Cross-clock links are causal only — a picosecond timestamp is not
/// comparable to a tick.)
pub fn check_nesting(events: &[TraceEvent]) -> Result<(), String> {
    for ev in events {
        if ev.id as usize >= events.len() || events[ev.id as usize].id != ev.id {
            return Err(format!("event id {} is not its buffer index", ev.id));
        }
        if ev.end < ev.start {
            return Err(format!(
                "event {} '{}' ends before it starts",
                ev.id, ev.name
            ));
        }
        let Some(pid) = ev.parent else { continue };
        if pid >= ev.id {
            return Err(format!(
                "event {} '{}' has non-preceding parent {pid}",
                ev.id, ev.name
            ));
        }
        let parent = &events[pid as usize];
        if parent.ph == Ph::Span
            && parent.clock == ev.clock
            && (ev.start < parent.start || ev.end > parent.end)
        {
            return Err(format!(
                "event {} '{}' [{}..{}] escapes parent {} '{}' [{}..{}]",
                ev.id, ev.name, ev.start, ev.end, pid, parent.name, parent.start, parent.end
            ));
        }
    }
    Ok(())
}

/// One target's worth of trace events: `(target name, events)`.
pub type TraceGroup = (String, Vec<TraceEvent>);

/// Renders groups as Chrome trace-event JSON (the "JSON array of
/// events" flavour wrapped in `{"traceEvents": [...]}`): one process
/// per group, one thread lane per clock domain, `"X"` complete events
/// for spans and `"i"` instants. Our span ids and parent links ride
/// along in `args` so the trace survives a round trip through
/// [`parse_chrome_trace`]. Integer timestamps only — the output is
/// byte-identical whenever the events are.
pub fn chrome_trace(groups: &[TraceGroup]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    for (gi, (name, events)) in groups.iter().enumerate() {
        let pid = gi as u64 + 1;
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            ),
        );
        for clock in [Clock::Ticks, Clock::SimPs, Clock::SchedUs] {
            if events.iter().any(|e| e.clock == clock) {
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                        clock.tid(),
                        clock.lane()
                    ),
                );
            }
        }
        for ev in events {
            let mut line = format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
                escape_json(&ev.name),
                escape_json(ev.cat),
                match ev.ph {
                    Ph::Span => "X",
                    Ph::Instant => "i",
                },
                ev.start
            );
            match ev.ph {
                Ph::Span => {
                    let _ = write!(line, "\"dur\":{},", ev.end - ev.start);
                }
                Ph::Instant => line.push_str("\"s\":\"t\","),
            }
            let _ = write!(
                line,
                "\"pid\":{pid},\"tid\":{},\"args\":{{\"span_id\":\"{}\"",
                ev.clock.tid(),
                ev.id
            );
            if let Some(p) = ev.parent {
                let _ = write!(line, ",\"parent\":\"{p}\"");
            }
            for (k, v) in &ev.args {
                let _ = write!(line, ",\"{}\":\"{}\"", escape_json(k), escape_json(v));
            }
            line.push_str("}}");
            push(&mut out, line);
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Renders groups as an indented span-tree text dump: children (in
/// record order) nested under parents, spans as `[clock start..end]`
/// and instants as `@ts`, args appended as `k=v`.
pub fn span_tree(groups: &[TraceGroup]) -> String {
    let mut out = String::new();
    for (name, events) in groups {
        let _ = writeln!(out, "== {name} ==");
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); events.len()];
        let mut roots = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            match ev.parent {
                Some(p) => children[p as usize].push(i),
                None => roots.push(i),
            }
        }
        let mut pending: Vec<(usize, usize)> = roots.into_iter().rev().map(|i| (i, 0)).collect();
        while let Some((i, depth)) = pending.pop() {
            let ev = &events[i];
            let _ = write!(out, "{:indent$}{}", "", ev.name, indent = depth * 2);
            match ev.ph {
                Ph::Span => {
                    let _ = write!(out, " [{} {}..{}]", ev.clock.unit(), ev.start, ev.end);
                }
                Ph::Instant => {
                    let _ = write!(out, " @{} {}", ev.start, ev.clock.unit());
                }
            }
            for (k, v) in &ev.args {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
            for &c in children[i].iter().rev() {
                pending.push((c, depth + 1));
            }
        }
    }
    out
}

/// A trace event re-parsed from Chrome trace JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChromeEvent {
    pub name: String,
    pub cat: String,
    pub ph: String,
    pub ts: u64,
    pub dur: u64,
    pub pid: u64,
    pub tid: u64,
    /// Our span id / parent link, recovered from `args`.
    pub id: Option<u64>,
    pub parent: Option<u64>,
    pub args: Vec<(String, String)>,
}

/// Parses [`chrome_trace`] output (or any trace-event JSON using the
/// same fields) back into events. Metadata (`"M"`) rows are skipped.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ChromeEvent>, String> {
    let doc = json::parse(text)?;
    let rows = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut events = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let field = |key: &str| row.get(key).and_then(Json::as_str);
        let num = |key: &str| row.get(key).and_then(Json::as_u64);
        let ph = field("ph").ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let args: Vec<(String, String)> = row
            .get("args")
            .and_then(Json::as_obj)
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                    .collect()
            })
            .unwrap_or_default();
        let arg_num = |key: &str| {
            args.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.parse::<u64>().ok())
        };
        events.push(ChromeEvent {
            name: field("name")
                .ok_or_else(|| format!("event {i}: missing name"))?
                .to_string(),
            cat: field("cat").unwrap_or_default().to_string(),
            ph: ph.to_string(),
            ts: num("ts").ok_or_else(|| format!("event {i}: missing ts"))?,
            dur: num("dur").unwrap_or(0),
            pid: num("pid").ok_or_else(|| format!("event {i}: missing pid"))?,
            tid: num("tid").unwrap_or(0),
            id: arg_num("span_id"),
            parent: arg_num("parent"),
            args,
        });
    }
    Ok(events)
}

/// Well-nestedness of a re-parsed trace: every parent link resolves
/// within the same process, parents precede children, and a span
/// child on the *same thread lane* (same clock) as its span parent is
/// temporally contained. This is the CI check that an exported trace
/// file still honours the invariants [`check_nesting`] enforced
/// in memory.
pub fn check_well_nested(events: &[ChromeEvent]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut by_id: HashMap<(u64, u64), &ChromeEvent> = HashMap::new();
    for ev in events {
        if let Some(id) = ev.id {
            by_id.insert((ev.pid, id), ev);
        }
    }
    for ev in events {
        let Some(pid_ref) = ev.parent else { continue };
        let Some(parent) = by_id.get(&(ev.pid, pid_ref)) else {
            return Err(format!(
                "event '{}' (pid {}) references missing parent {pid_ref}",
                ev.name, ev.pid
            ));
        };
        match (ev.id, parent.id) {
            (Some(id), Some(par_id)) if par_id >= id => {
                return Err(format!(
                    "event '{}' (id {id}) has non-preceding parent {par_id}",
                    ev.name
                ));
            }
            _ => {}
        }
        if parent.ph == "X" && ev.tid == parent.tid {
            let end = ev.ts + ev.dur;
            let parent_end = parent.ts + parent.dur;
            if ev.ts < parent.ts || end > parent_end {
                return Err(format!(
                    "event '{}' [{}..{end}] escapes parent '{}' [{}..{parent_end}]",
                    ev.name, ev.ts, parent.name, parent.ts
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tracer() -> Tracer {
        let t = Tracer::new();
        let task = t.begin("task.fig5", "runner", Clock::Ticks, t.tick());
        let sim = t.begin("sim.base.linpack", "model", Clock::SimPs, 0);
        t.instant(
            "ecc.detect",
            "protocol",
            Clock::SimPs,
            40,
            vec![kv("block", 3)],
        );
        t.complete(
            "write_drain.ch0",
            "memsim",
            Clock::SimPs,
            50,
            90,
            vec![kv("pending", 12)],
        );
        t.end_with(sim, 120, vec![kv("ops", 1000)]);
        t.instant("cache.miss", "model", Clock::Ticks, t.tick(), Vec::new());
        t.end_with(task, t.tick(), vec![kv("status", "completed")]);
        t
    }

    #[test]
    fn spans_nest_by_stack_discipline() {
        let events = sample_tracer().take();
        assert_eq!(events.len(), 5);
        check_nesting(&events).unwrap();
        let by_name = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("task.fig5").parent, None);
        assert_eq!(
            by_name("sim.base.linpack").parent,
            Some(by_name("task.fig5").id)
        );
        assert_eq!(
            by_name("ecc.detect").parent,
            Some(by_name("sim.base.linpack").id)
        );
        assert_eq!(
            by_name("write_drain.ch0").parent,
            Some(by_name("sim.base.linpack").id)
        );
        assert_eq!(by_name("cache.miss").parent, Some(by_name("task.fig5").id));
        assert_eq!(by_name("task.fig5").end, 2, "ticks advance monotonically");
    }

    #[test]
    fn containment_violations_are_caught() {
        let t = Tracer::new();
        let outer = t.begin("outer", "x", Clock::SimPs, 100);
        t.complete("escapee", "x", Clock::SimPs, 50, 80, Vec::new());
        t.end(outer, 200);
        let err = check_nesting(&t.take()).unwrap_err();
        assert!(err.contains("escapes parent"), "{err}");
    }

    #[test]
    fn cross_clock_children_skip_time_containment() {
        let t = Tracer::new();
        let outer = t.begin("task", "runner", Clock::Ticks, 0);
        // Simulation time vastly exceeds the tick domain — allowed.
        t.complete("sim", "model", Clock::SimPs, 0, 9_999_999, Vec::new());
        t.end(outer, 1);
        check_nesting(&t.take()).unwrap();
    }

    #[test]
    fn end_unwinds_abandoned_children() {
        let t = Tracer::new();
        let outer = t.begin("outer", "x", Clock::SimPs, 0);
        let _leaked = t.begin("leaked", "x", Clock::SimPs, 5);
        // Simulates a caught panic: 'leaked' never ends, the runner
        // still closes the task span.
        t.end(outer, 10);
        let events = t.take();
        check_nesting(&events).unwrap();
        assert_eq!(events[1].end, events[1].start, "open span closed at start");
        // A fresh span after the unwind is a root again.
        let t2 = Tracer::new();
        let a = t2.begin("a", "x", Clock::SimPs, 0);
        t2.end(a, 1);
        let b = t2.begin("b", "x", Clock::SimPs, 2);
        t2.end(b, 3);
        assert_eq!(t2.take()[1].parent, None);
    }

    #[test]
    fn absorb_rebases_ids_and_ticks() {
        let worker = Tracer::new();
        let s = worker.begin("sim.w", "model", Clock::SimPs, 0);
        worker.instant("mark", "model", Clock::Ticks, worker.tick(), Vec::new());
        worker.end(s, 50);

        let main = Tracer::new();
        let task = main.begin("task", "runner", Clock::Ticks, main.tick());
        main.absorb(worker.take());
        main.end(task, main.tick());
        let events = main.take();
        check_nesting(&events).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[1].name, "sim.w");
        assert_eq!(
            events[1].parent,
            Some(0),
            "absorbed root adopted by open span"
        );
        assert_eq!(events[2].parent, Some(1), "internal links rebased");
        assert_eq!(events[2].start, 1, "worker tick 0 rebased past main tick 0");
        assert!(
            events[0].end > events[2].start,
            "task span covers absorbed ticks"
        );
    }

    #[test]
    fn chrome_export_round_trips_and_is_well_nested() {
        let groups = vec![("fig5".to_string(), sample_tracer().take())];
        let jsontext = chrome_trace(&groups);
        let parsed = parse_chrome_trace(&jsontext).unwrap();
        assert_eq!(parsed.len(), 5, "metadata rows skipped");
        check_well_nested(&parsed).unwrap();
        let sim = parsed
            .iter()
            .find(|e| e.name == "sim.base.linpack")
            .unwrap();
        assert_eq!(sim.ph, "X");
        assert_eq!((sim.ts, sim.dur), (0, 120));
        assert_eq!(sim.pid, 1);
        assert_eq!(sim.tid, Clock::SimPs.tid());
        assert!(sim.args.iter().any(|(k, v)| k == "ops" && v == "1000"));
        let detect = parsed.iter().find(|e| e.name == "ecc.detect").unwrap();
        assert_eq!(detect.ph, "i");
        assert_eq!(detect.parent, sim.id);
    }

    #[test]
    fn well_nested_check_rejects_bad_traces() {
        let jsontext = r#"{"traceEvents":[
            {"name":"p","cat":"x","ph":"X","ts":100,"dur":10,"pid":1,"tid":1,"args":{"span_id":"0"}},
            {"name":"c","cat":"x","ph":"X","ts":50,"dur":10,"pid":1,"tid":1,"args":{"span_id":"1","parent":"0"}}
        ]}"#;
        let parsed = parse_chrome_trace(jsontext).unwrap();
        assert!(check_well_nested(&parsed).unwrap_err().contains("escapes"));
        let dangling = r#"{"traceEvents":[
            {"name":"c","cat":"x","ph":"i","s":"t","ts":5,"pid":1,"tid":1,"args":{"span_id":"0","parent":"7"}}
        ]}"#;
        let parsed = parse_chrome_trace(dangling).unwrap();
        assert!(check_well_nested(&parsed)
            .unwrap_err()
            .contains("missing parent"));
    }

    #[test]
    fn span_tree_indents_children() {
        let groups = vec![("fig5".to_string(), sample_tracer().take())];
        let tree = span_tree(&groups);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines[0], "== fig5 ==");
        assert!(
            lines[1].starts_with("task.fig5 [tick 0..2]"),
            "{}",
            lines[1]
        );
        assert!(lines[2].starts_with("  sim.base.linpack [ps 0..120]"));
        assert!(lines[3].starts_with("    ecc.detect @40 ps block=3"));
        assert!(lines[4].starts_with("    write_drain.ch0 [ps 50..90] pending=12"));
        assert!(lines[5].starts_with("  cache.miss @"), "{}", lines[5]);
    }

    #[test]
    fn identical_recordings_export_identical_bytes() {
        let a = chrome_trace(&[("t".into(), sample_tracer().take())]);
        let b = chrome_trace(&[("t".into(), sample_tracer().take())]);
        assert_eq!(a, b);
    }
}
