//! Hot-path overhead of the metric primitives. The acceptance bar is
//! counter increment + histogram record at or under ~20 ns/op.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use telemetry::{Histogram, Registry};

fn counter_inc(c: &mut Criterion) {
    let registry = Registry::new();
    let counter = registry.counter("bench.reads");
    c.bench_function("telemetry_counter_inc", |b| {
        b.iter(|| {
            counter.inc();
            black_box(&counter);
        })
    });
}

fn histogram_record(c: &mut Criterion) {
    let hist = Histogram::new();
    let mut v: u64 = 1;
    c.bench_function("telemetry_histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box(v >> 32));
        })
    });
}

fn combined_hot_path(c: &mut Criterion) {
    // The controller's per-read work: one counter bump plus one
    // histogram record — the number the acceptance criterion bounds.
    let registry = Registry::new();
    let reads = registry.counter("ctrl.reads");
    let latency = registry.histogram("ctrl.read_latency_ps");
    let mut t: u64 = 13_000;
    c.bench_function("telemetry_counter_plus_histogram", |b| {
        b.iter(|| {
            t = t.wrapping_add(625);
            reads.inc();
            latency.record(black_box(t & 0xFFFF));
        })
    });
}

criterion_group!(overhead, counter_inc, histogram_record, combined_hot_path);
criterion_main!(overhead);
