//! # Hetero-DMR
//!
//! Heterogeneously-accessed Dual Module Redundancy — the architecture
//! proposed by *"Quantifying Server Memory Frequency Margin and Using
//! It to Improve Performance in HPC Systems"* (ISCA 2021).
//!
//! The idea: server DIMMs can run ~27 % faster than their label, but
//! doing so naively sacrifices reliability. Hetero-DMR replicates
//! every block into a *free* module of the same channel and operates
//! the two modules heterogeneously:
//!
//! * **read mode** — only the copy-holding Free Module is accessed,
//!   at an unsafely fast setting; the modules holding originals sit in
//!   self-refresh, immune to anything the overclocked bus does;
//! * **write mode** — the whole channel drops back to specification
//!   (a ~1 µs transition), writes are drained in large batches, and a
//!   single broadcast transaction updates original and copy together;
//! * **errors** in copies are caught by detection-only Reed-Solomon
//!   ECC and repaired from the always-in-spec originals;
//! * an **epoch governor** bounds the silent-data-corruption rate to
//!   one event per billion years even under worst-case error models.
//!
//! Crate layout:
//!
//! * [`replication`] — free-module tracking and copy placement,
//! * [`protocol`] — the functional protocol engine on real
//!   [`dram::Channel`] + [`ecc::BlockCodec`] state (reads, writes,
//!   error injection, recovery),
//! * [`governor`] — the per-epoch SDC budget,
//! * [`adaptive`] — the closed-loop adaptive margin governor that
//!   steps the data rate per epoch from observed CE/UE telemetry
//!   (hysteresis + cool-down + safety envelope),
//! * [`monte_carlo`] — channel-/node-level margin variability
//!   (Figure 11),
//! * [`designs`] — the evaluated memory designs as
//!   [`memsim::ChannelMode`] builders (Commercial Baseline, FMR,
//!   Hetero-DMR, Hetero-DMR+FMR, the Figure 5 margin settings, and
//!   the naive channel-split strawman),
//! * [`node_model`] — the Figure 5/12/13/14/15 evaluation engine on
//!   top of [`memsim`],
//! * [`emulation`] — the Figure 16 real-system emulation formula.

pub mod adaptive;
pub mod designs;
pub mod emulation;
pub mod faults;
pub mod governor;
pub mod monte_carlo;
pub mod node_model;
pub mod profiler;
pub mod protocol;
pub mod replication;

pub use adaptive::{AdaptiveConfig, AdaptiveGovernor, Decision, Environment, MarginResponse};
pub use designs::MemoryDesign;
pub use faults::PermanentFaultTracker;
pub use governor::{EpochGovernor, GovernorState};
pub use monte_carlo::{MarginGroups, MonteCarlo};
pub use node_model::{shared_cache_stats, EvalConfig, NodeModel, UsageBucket};
pub use profiler::{NodeProfile, NodeProfiler};
pub use protocol::{HeteroDmrChannel, ReadOutcome};
pub use replication::ReplicationManager;
