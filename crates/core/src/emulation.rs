//! The real-system emulation of Section IV-B (Figure 16).
//!
//! The paper checks its simulations by emulating Hetero-DMR on the
//! physical testbed with the identity
//!
//! ```text
//! exec_time(Hetero-DMR) ≈ exec@unsafely_fast − wr@unsafely_fast + wr@safely_slow
//! ```
//!
//! i.e. take the cherry-picked "Exploit Freq+Lat Margins" run and swap
//! its DRAM-write time for write time at specification, since
//! Hetero-DMR performs all writes at the safe setting. Write time is
//! modelled as `written_bytes / bandwidth` because writebacks are
//! independent (they do not stall one another the way dependent reads
//! do).

use dram::rate::DataRate;
use dram::Picos;
use memsim::SimResult;

/// Inputs of the emulation formula, extracted from a measured (here:
/// simulated) "Exploit Freq+Lat Margins" run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulationInputs {
    /// Execution time of the unsafely fast run.
    pub exec_fast_ps: Picos,
    /// Bytes written to DRAM during the run.
    pub written_bytes: u64,
    /// Data rate the fast run wrote at.
    pub fast_rate: DataRate,
    /// Specification data rate Hetero-DMR writes at.
    pub slow_rate: DataRate,
    /// Channels in the system.
    pub channels: usize,
    /// Fraction of peak bandwidth the write stream achieves
    /// (batched writes stream well; the paper profiles the achieved
    /// bandwidth with `perf`).
    pub write_efficiency: f64,
}

impl EmulationInputs {
    /// Builds the inputs from a simulated fast run.
    pub fn from_fast_run(result: &SimResult, slow_rate: DataRate) -> EmulationInputs {
        EmulationInputs {
            exec_fast_ps: result.exec_time_ps,
            written_bytes: result.controller.writes * 64,
            fast_rate: result.read_rate,
            slow_rate,
            channels: result.channels.max(1),
            write_efficiency: 0.7,
        }
    }

    /// DRAM write time at `rate`, in picoseconds.
    fn write_time_ps(&self, rate: DataRate) -> Picos {
        let bw =
            rate.peak_bandwidth_bytes_per_s() as f64 * self.channels as f64 * self.write_efficiency;
        (self.written_bytes as f64 / bw * 1e12) as Picos
    }

    /// The emulated Hetero-DMR execution time:
    /// `exec@fast − wr@fast + wr@slow`.
    pub fn emulated_exec_ps(&self) -> Picos {
        self.exec_fast_ps
            .saturating_sub(self.write_time_ps(self.fast_rate))
            + self.write_time_ps(self.slow_rate)
    }

    /// Emulated speedup over a baseline execution time.
    pub fn emulated_speedup(&self, baseline_exec_ps: Picos) -> f64 {
        baseline_exec_ps as f64 / self.emulated_exec_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> EmulationInputs {
        EmulationInputs {
            exec_fast_ps: 1_000_000_000, // 1 ms
            written_bytes: 6_400_000,    // 6.4 MB written
            fast_rate: DataRate::MT4000,
            slow_rate: DataRate::MT3200,
            channels: 1,
            write_efficiency: 1.0,
        }
    }

    #[test]
    fn slower_writes_lengthen_execution() {
        let i = inputs();
        assert!(i.emulated_exec_ps() > i.exec_fast_ps);
        // The delta is exactly wr@3200 − wr@4000.
        let delta = (i.emulated_exec_ps() - i.exec_fast_ps) as f64;
        let wr_fast = 6_400_000.0 / 32e9 * 1e12;
        let wr_slow = 6_400_000.0 / 25.6e9 * 1e12;
        assert!((delta - (wr_slow - wr_fast)).abs() <= 1.0, "delta {delta}");
    }

    #[test]
    fn same_rates_are_identity() {
        let mut i = inputs();
        i.slow_rate = i.fast_rate;
        assert_eq!(i.emulated_exec_ps(), i.exec_fast_ps);
    }

    #[test]
    fn speedup_against_baseline() {
        let i = inputs();
        let emulated = i.emulated_exec_ps();
        assert!((i.emulated_speedup(2 * emulated) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fewer_written_bytes_smaller_penalty() {
        let big = inputs();
        let mut small = inputs();
        small.written_bytes /= 10;
        assert!(small.emulated_exec_ps() < big.emulated_exec_ps());
    }

    #[test]
    fn more_channels_shrink_write_time() {
        let one = inputs();
        let mut four = inputs();
        four.channels = 4;
        assert!(four.emulated_exec_ps() <= one.emulated_exec_ps());
    }
}
