//! Monte Carlo estimation of channel- and node-level frequency-margin
//! distributions (Section III-D, Figure 11).
//!
//! Following the paper, per-module margins are drawn from a normal
//! distribution fit to the Figure 2a measurements of 9 chips/rank
//! modules, quantized to the 200 MT/s step and capped at the 800 MT/s
//! the testbed could demonstrate. A channel's margin is the selected
//! module's margin (max under margin-aware selection, first under
//! margin-unaware); a node's margin is the minimum over its channels.
//!
//! The estimation drivers run their trials on the worker pool: each
//! trial gets a counter-derived RNG stream
//! ([`runner::seed::iteration_seed`]), so the estimate is exactly the
//! same for any `--jobs` value — the trial→seed mapping is fixed and
//! the reductions are integer counts, which commute.

use margin::composition::{channel_margin, node_margin, SelectionPolicy};
use margin::population::quantize;
use margin::stats::sample_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;
use runner::seed::iteration_seed;
use runner::{parallel_count, parallel_tally};

/// Per-module margin distribution parameters and system shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarlo {
    /// Mean of the module margin normal distribution, MT/s.
    pub mean_mts: f64,
    /// Standard deviation, MT/s.
    pub std_mts: f64,
    /// Demonstrated-margin cap, MT/s (the 4000 MT/s testbed ceiling
    /// minus the 3200 MT/s label).
    pub cap_mts: u32,
    /// Modules per channel.
    pub modules_per_channel: usize,
    /// Channels per node.
    pub channels_per_node: usize,
}

impl Default for MonteCarlo {
    fn default() -> MonteCarlo {
        MonteCarlo {
            mean_mts: 906.0,
            std_mts: 124.0,
            cap_mts: 800,
            modules_per_channel: 2,
            channels_per_node: 12,
        }
    }
}

/// The node population split into the paper's three margin groups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginGroups {
    /// Fraction of nodes usable at ≥ 0.8 GT/s extra.
    pub at_800: f64,
    /// Fraction usable at ≥ 0.6 GT/s (but < 0.8).
    pub at_600: f64,
    /// Fraction with no usable margin.
    pub at_0: f64,
}

impl MarginGroups {
    /// The group a node with `margin_mts` belongs to (800 / 600 / 0).
    pub fn group_of(margin_mts: u32) -> u32 {
        if margin_mts >= 800 {
            800
        } else if margin_mts >= 600 {
            600
        } else {
            0
        }
    }
}

impl MonteCarlo {
    /// Samples one module's measured margin.
    fn sample_module(&self, rng: &mut StdRng) -> u32 {
        let raw = sample_normal(rng, self.mean_mts, self.std_mts).max(0.0) as u32;
        quantize(raw).min(self.cap_mts)
    }

    /// Samples one channel's margin under `policy`.
    pub fn sample_channel(&self, rng: &mut StdRng, policy: SelectionPolicy) -> u32 {
        let margins: Vec<u32> = (0..self.modules_per_channel)
            .map(|_| self.sample_module(rng))
            .collect();
        channel_margin(&margins, policy)
    }

    /// Samples one node's margin under `policy`.
    pub fn sample_node(&self, rng: &mut StdRng, policy: SelectionPolicy) -> u32 {
        let channels: Vec<u32> = (0..self.channels_per_node)
            .map(|_| self.sample_channel(rng, policy))
            .collect();
        node_margin(&channels)
    }

    /// One trial's sampled channel margin: trial `t` of the estimate
    /// seeded by `seed` always draws from the same derived stream,
    /// independent of which worker runs it.
    fn trial_channel(&self, seed: u64, t: usize, policy: SelectionPolicy) -> u32 {
        let mut rng = StdRng::seed_from_u64(iteration_seed(seed, t as u64));
        self.sample_channel(&mut rng, policy)
    }

    /// One trial's sampled node margin (see [`trial_channel`]).
    ///
    /// [`trial_channel`]: MonteCarlo::trial_channel
    fn trial_node(&self, seed: u64, t: usize, policy: SelectionPolicy) -> u32 {
        let mut rng = StdRng::seed_from_u64(iteration_seed(seed, t as u64));
        self.sample_node(&mut rng, policy)
    }

    /// Fraction of channels with margin ≥ `threshold_mts`.
    pub fn channel_fraction_at_least(
        &self,
        policy: SelectionPolicy,
        threshold_mts: u32,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let hits = parallel_count(trials, |t| {
            self.trial_channel(seed, t, policy) >= threshold_mts
        });
        hits as f64 / trials as f64
    }

    /// Fraction of nodes with margin ≥ `threshold_mts`.
    pub fn node_fraction_at_least(
        &self,
        policy: SelectionPolicy,
        threshold_mts: u32,
        trials: usize,
        seed: u64,
    ) -> f64 {
        let hits = parallel_count(trials, |t| {
            self.trial_node(seed, t, policy) >= threshold_mts
        });
        hits as f64 / trials as f64
    }

    /// The node-group weights the rest of the paper uses (Hetero-DMR's
    /// margin-aware selection): ≈ 62 % at 0.8 GT/s, 36 % at 0.6 GT/s,
    /// 2 % at 0.
    pub fn node_groups(&self, policy: SelectionPolicy, trials: usize, seed: u64) -> MarginGroups {
        let counts = parallel_tally::<3, _>(trials, |t| {
            match MarginGroups::group_of(self.trial_node(seed, t, policy)) {
                800 => 0,
                600 => 1,
                _ => 2,
            }
        });
        MarginGroups {
            at_800: counts[0] as f64 / trials as f64,
            at_600: counts[1] as f64 / trials as f64,
            at_0: counts[2] as f64 / trials as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRIALS: usize = 20_000;

    #[test]
    fn channel_fractions_match_figure_11() {
        let mc = MonteCarlo::default();
        let aware = mc.channel_fraction_at_least(SelectionPolicy::MarginAware, 800, TRIALS, 1);
        let unaware = mc.channel_fraction_at_least(SelectionPolicy::MarginUnaware, 800, TRIALS, 2);
        // Paper: 96 % (aware) vs 80 % (unaware) of channels ≥ 0.8 GT/s.
        assert!((aware - 0.96).abs() < 0.03, "aware {aware}");
        assert!((unaware - 0.80).abs() < 0.04, "unaware {unaware}");
    }

    #[test]
    fn node_fractions_match_figure_11() {
        let mc = MonteCarlo::default();
        let aware_800 = mc.node_fraction_at_least(SelectionPolicy::MarginAware, 800, TRIALS, 3);
        let aware_600 = mc.node_fraction_at_least(SelectionPolicy::MarginAware, 600, TRIALS, 4);
        let unaware_800 = mc.node_fraction_at_least(SelectionPolicy::MarginUnaware, 800, TRIALS, 5);
        let unaware_600 = mc.node_fraction_at_least(SelectionPolicy::MarginUnaware, 600, TRIALS, 6);
        // Paper: 62 % / 98 % (aware), 7 % / 96 % (unaware).
        assert!((aware_800 - 0.62).abs() < 0.08, "aware 800 {aware_800}");
        assert!(aware_600 > 0.95, "aware 600 {aware_600}");
        assert!(unaware_800 < 0.2, "unaware 800 {unaware_800}");
        assert!(unaware_600 > 0.88, "unaware 600 {unaware_600}");
    }

    #[test]
    fn aware_dominates_unaware() {
        let mc = MonteCarlo::default();
        for threshold in [600, 800] {
            let aware =
                mc.node_fraction_at_least(SelectionPolicy::MarginAware, threshold, 5_000, 7);
            let unaware =
                mc.node_fraction_at_least(SelectionPolicy::MarginUnaware, threshold, 5_000, 7);
            assert!(aware >= unaware - 0.02, "threshold {threshold}");
        }
    }

    #[test]
    fn groups_sum_to_one_and_match_paper() {
        let mc = MonteCarlo::default();
        let g = mc.node_groups(SelectionPolicy::MarginAware, TRIALS, 8);
        assert!((g.at_800 + g.at_600 + g.at_0 - 1.0).abs() < 1e-9);
        assert!((g.at_800 - 0.62).abs() < 0.08, "at_800 {}", g.at_800);
        assert!((g.at_600 - 0.36).abs() < 0.08, "at_600 {}", g.at_600);
        assert!(g.at_0 < 0.06, "at_0 {}", g.at_0);
    }

    #[test]
    fn group_classification() {
        assert_eq!(MarginGroups::group_of(800), 800);
        assert_eq!(MarginGroups::group_of(1000), 800);
        assert_eq!(MarginGroups::group_of(600), 600);
        assert_eq!(MarginGroups::group_of(799), 600);
        assert_eq!(MarginGroups::group_of(599), 0);
        assert_eq!(MarginGroups::group_of(0), 0);
    }

    #[test]
    fn estimates_are_independent_of_worker_count() {
        // The trial→seed mapping is fixed and the reductions are
        // integer counts, so the estimate must be bit-identical for
        // any worker budget.
        let mc = MonteCarlo::default();
        runner::set_jobs(1);
        let groups_serial = mc.node_groups(SelectionPolicy::MarginAware, 4_000, 11);
        let frac_serial =
            mc.channel_fraction_at_least(SelectionPolicy::MarginAware, 800, 4_000, 12);
        runner::set_jobs(8);
        let groups_parallel = mc.node_groups(SelectionPolicy::MarginAware, 4_000, 11);
        let frac_parallel =
            mc.channel_fraction_at_least(SelectionPolicy::MarginAware, 800, 4_000, 12);
        runner::set_jobs(0);
        assert_eq!(groups_serial, groups_parallel);
        assert_eq!(frac_serial.to_bits(), frac_parallel.to_bits());
    }

    #[test]
    fn margins_are_quantized_and_capped() {
        let mc = MonteCarlo::default();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let m = mc.sample_channel(&mut rng, SelectionPolicy::MarginAware);
            assert!(m % 200 == 0 && m <= 800, "margin {m}");
        }
    }
}
