//! The per-epoch SDC governor (Section III-B of the paper).
//!
//! Detection-only RS-8 misses an 8-byte-plus error with probability
//! 2⁻⁶⁴. To bound the mean time to SDC at one billion years even if
//! *every* access produced an 8B+ error, Hetero-DMR counts detected
//! errors per one-hour epoch; past ~2.1 million it stops exploiting
//! margins for the remainder of the epoch, resuming fresh in the next.

use dram::{Picos, PS_PER_S};
use telemetry::{Counter, Scope};

/// One hour, in picoseconds.
pub const EPOCH_PS: Picos = 3_600 * PS_PER_S;

/// Whether margins may currently be exploited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernorState {
    /// Under budget: operate the Free Module unsafely fast.
    Exploiting,
    /// Budget exhausted: run everything at specification until the
    /// epoch rolls over.
    FallBack,
}

/// The epoch error-budget governor.
#[derive(Debug)]
pub struct EpochGovernor {
    threshold: u64,
    epoch_start: Picos,
    errors_this_epoch: u64,
    /// Lifetime totals — live telemetry counters, detached until
    /// [`EpochGovernor::attach_telemetry`] binds them to a registry.
    errors: Counter,
    fallbacks: Counter,
    epoch_rolls: Counter,
}

impl Clone for EpochGovernor {
    /// Clones fork the counters so each governor tallies its own
    /// errors (Monte-Carlo runs clone a template governor per trial).
    fn clone(&self) -> EpochGovernor {
        EpochGovernor {
            threshold: self.threshold,
            epoch_start: self.epoch_start,
            errors_this_epoch: self.errors_this_epoch,
            errors: self.errors.fork(),
            fallbacks: self.fallbacks.fork(),
            epoch_rolls: self.epoch_rolls.fork(),
        }
    }
}

impl Default for EpochGovernor {
    fn default() -> Self {
        EpochGovernor::new(ecc::sdc::default_epoch_threshold())
    }
}

impl EpochGovernor {
    /// Creates a governor with a custom per-epoch error budget.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero (the governor could never
    /// exploit).
    pub fn new(threshold: u64) -> EpochGovernor {
        assert!(threshold > 0, "error budget must be positive");
        EpochGovernor {
            threshold,
            epoch_start: 0,
            errors_this_epoch: 0,
            errors: Counter::default(),
            fallbacks: Counter::default(),
            epoch_rolls: Counter::default(),
        }
    }

    /// Rebinds the governor's counters into a registry scope, folding
    /// in values recorded before attachment.
    pub fn attach_telemetry(&mut self, scope: &Scope) {
        let rebind = |name: &str, old: &Counter| {
            let fresh = scope.counter(name);
            fresh.add(old.get());
            fresh
        };
        self.errors = rebind("errors", &self.errors);
        self.fallbacks = rebind("fallbacks", &self.fallbacks);
        self.epoch_rolls = rebind("epoch_rolls", &self.epoch_rolls);
    }

    /// The per-epoch budget.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Lifetime detected-error count.
    pub fn total_errors(&self) -> u64 {
        self.errors.get()
    }

    /// Lifetime number of epochs that hit the budget.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.get()
    }

    /// Errors counted in the current epoch.
    pub fn errors_this_epoch(&self) -> u64 {
        self.errors_this_epoch
    }

    /// Rolls the epoch forward if `now` has passed the boundary.
    fn roll(&mut self, now: Picos) {
        if now >= self.epoch_start + EPOCH_PS {
            let epochs = (now - self.epoch_start) / EPOCH_PS;
            self.epoch_start += epochs * EPOCH_PS;
            self.errors_this_epoch = 0;
            self.epoch_rolls.add(epochs);
        }
    }

    /// The governor's state at time `now`.
    pub fn state(&mut self, now: Picos) -> GovernorState {
        self.roll(now);
        if self.errors_this_epoch >= self.threshold {
            GovernorState::FallBack
        } else {
            GovernorState::Exploiting
        }
    }

    /// The long-run fraction of time Hetero-DMR stays active
    /// (exploiting margins) when errors arrive at a steady
    /// `errors_per_hour`: 1.0 while under budget, otherwise the
    /// fraction of each epoch spent reaching the budget (footnote 2 of
    /// the paper: at the 23 °C measured rates this is ~100 %).
    pub fn expected_active_fraction(&self, errors_per_hour: f64) -> f64 {
        if errors_per_hour <= self.threshold as f64 {
            1.0
        } else {
            self.threshold as f64 / errors_per_hour
        }
    }

    /// Records one detected error at `now`; returns the resulting
    /// state (so callers can react to the budget being exhausted by
    /// this very error).
    pub fn record_error(&mut self, now: Picos) -> GovernorState {
        self.roll(now);
        self.errors_this_epoch += 1;
        self.errors.inc();
        if self.errors_this_epoch == self.threshold {
            self.fallbacks.inc();
        }
        self.state(now)
    }

    /// Records `count` detected errors at `now` in one call; returns
    /// the resulting state. Equivalent to `count` calls to
    /// [`EpochGovernor::record_error`] at the same timestamp but O(1),
    /// which the adaptive layer relies on when a whole epoch's error
    /// tally (possibly millions) arrives at once.
    pub fn record_errors(&mut self, now: Picos, count: u64) -> GovernorState {
        self.roll(now);
        let before = self.errors_this_epoch;
        self.errors_this_epoch += count;
        self.errors.add(count);
        if before < self.threshold && self.errors_this_epoch >= self.threshold {
            self.fallbacks.inc();
        }
        self.state(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_matches_paper() {
        let g = EpochGovernor::default();
        assert!(g.threshold() > 2_000_000 && g.threshold() < 2_200_000);
    }

    #[test]
    fn exploits_until_threshold() {
        let mut g = EpochGovernor::new(3);
        assert_eq!(g.state(0), GovernorState::Exploiting);
        assert_eq!(g.record_error(10), GovernorState::Exploiting);
        assert_eq!(g.record_error(20), GovernorState::Exploiting);
        assert_eq!(g.record_error(30), GovernorState::FallBack);
        assert_eq!(g.state(40), GovernorState::FallBack);
        assert_eq!(g.fallbacks(), 1);
    }

    #[test]
    fn next_epoch_resets_the_budget() {
        let mut g = EpochGovernor::new(2);
        g.record_error(0);
        g.record_error(1);
        assert_eq!(g.state(2), GovernorState::FallBack);
        // One hour later: exploiting again.
        assert_eq!(g.state(EPOCH_PS), GovernorState::Exploiting);
        assert_eq!(g.errors_this_epoch(), 0);
        assert_eq!(g.total_errors(), 2);
    }

    #[test]
    fn skipping_multiple_epochs_is_handled() {
        let mut g = EpochGovernor::new(1);
        g.record_error(0);
        assert_eq!(g.state(10 * EPOCH_PS + 5), GovernorState::Exploiting);
        // The epoch boundary stays aligned to whole hours.
        g.record_error(10 * EPOCH_PS + 6);
        assert_eq!(g.state(10 * EPOCH_PS + 7), GovernorState::FallBack);
        assert_eq!(g.state(11 * EPOCH_PS), GovernorState::Exploiting);
    }

    #[test]
    fn realistic_error_rates_never_trip_it() {
        // Section II-C's measured rates are a few hundred errors/hour
        // at worst — far below the ~2.1M budget, so Hetero-DMR stays
        // active "~100% of the time".
        let mut g = EpochGovernor::default();
        for i in 0..10_000u64 {
            g.record_error(i * (EPOCH_PS / 10_000));
        }
        assert_eq!(g.state(EPOCH_PS - 1), GovernorState::Exploiting);
        assert_eq!(g.fallbacks(), 0);
    }

    #[test]
    fn active_fraction_matches_paper_footnote() {
        let g = EpochGovernor::default();
        // At the measured 23 °C error rates (hundreds per hour at
        // worst), Hetero-DMR is active ~100% of the time.
        assert_eq!(g.expected_active_fraction(1_000.0), 1.0);
        assert_eq!(g.expected_active_fraction(0.0), 1.0);
        // A pathological 10x-over-budget module is still active 10%.
        let ten_x = g.threshold() as f64 * 10.0;
        assert!((g.expected_active_fraction(ten_x) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = EpochGovernor::new(0);
    }

    #[test]
    fn bulk_record_matches_singles() {
        let mut singles = EpochGovernor::new(5);
        let mut bulk = EpochGovernor::new(5);
        for _ in 0..7 {
            singles.record_error(42);
        }
        assert_eq!(bulk.record_errors(42, 7), GovernorState::FallBack);
        assert_eq!(bulk.errors_this_epoch(), singles.errors_this_epoch());
        assert_eq!(bulk.total_errors(), singles.total_errors());
        // The budget crossing counts as exactly one fallback even when
        // a single bulk call overshoots the threshold.
        assert_eq!(bulk.fallbacks(), 1);
        assert_eq!(singles.fallbacks(), 1);
        // Further errors in the same exhausted epoch add no fallback.
        bulk.record_errors(43, 100);
        assert_eq!(bulk.fallbacks(), 1);
        // Zero-count records are state queries.
        assert_eq!(bulk.record_errors(EPOCH_PS, 0), GovernorState::Exploiting);
        assert_eq!(bulk.errors_this_epoch(), 0);
    }

    #[test]
    fn clone_forks_the_lifetime_counters() {
        // Monte-Carlo runs clone a template governor per trial; the
        // clone must inherit the totals recorded so far but tally its
        // own errors afterwards (documented on the Clone impl).
        let mut template = EpochGovernor::new(2);
        template.record_error(0);
        let mut a = template.clone();
        let mut b = template.clone();
        a.record_error(1); // exhausts a's budget (2 errors total)
        a.record_error(2);
        b.record_error(3);
        assert_eq!(template.total_errors(), 1);
        assert_eq!(a.total_errors(), 3);
        assert_eq!(b.total_errors(), 2);
        assert_eq!(a.fallbacks(), 1);
        assert_eq!(b.fallbacks(), 1, "b inherited 1 error, then hit 2");
        assert_eq!(template.fallbacks(), 0);
        // Per-epoch tallies are plain fields and also independent.
        assert_eq!(template.errors_this_epoch(), 1);
        assert_eq!(a.errors_this_epoch(), 3);
    }

    #[test]
    fn rollover_happens_at_exactly_epoch_ps() {
        let mut g = EpochGovernor::new(1);
        g.record_error(0);
        assert_eq!(g.state(EPOCH_PS - 1), GovernorState::FallBack);
        // `roll` fires on `now >= epoch_start + EPOCH_PS`: the instant
        // EPOCH_PS itself already belongs to the second epoch.
        assert_eq!(g.state(EPOCH_PS), GovernorState::Exploiting);
        assert_eq!(g.errors_this_epoch(), 0);
        // An error recorded exactly on the boundary lands in epoch 1,
        // which keeps the epoch start aligned to whole multiples.
        g.record_error(EPOCH_PS);
        assert_eq!(g.state(2 * EPOCH_PS - 1), GovernorState::FallBack);
        assert_eq!(g.state(2 * EPOCH_PS), GovernorState::Exploiting);
    }
}
