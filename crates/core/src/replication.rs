//! Free-module tracking and opportunistic replication
//! (Section III-E: "Activating and deactivating memory replication").
//!
//! When at least half of a channel's modules are free (not used by any
//! software), Hetero-DMR replicates every in-use block into the free
//! module(s) and starts operating those unsafely fast. When software
//! demand grows past half, replication is dropped and the channel
//! reverts to specification — the same software-usable capacity as a
//! conventional system, always.

/// What the manager decides after a utilization change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationAction {
    /// Start replicating: copy every in-use block into the free
    /// module, then enter heterogeneous operation.
    Activate,
    /// Stop replicating: hand the free module back to software and
    /// revert the channel to specification.
    Deactivate,
    /// No state change.
    None,
}

/// Tracks one channel's utilization and replication state.
#[derive(Debug, Clone)]
pub struct ReplicationManager {
    /// Blocks per module (all modules identical).
    blocks_per_module: u64,
    /// Modules in the channel.
    modules: usize,
    /// Blocks currently used by software across the channel.
    used_blocks: u64,
    /// Whether replication is active.
    active: bool,
    /// Lifetime activation count (for statistics).
    activations: u64,
}

impl ReplicationManager {
    /// Creates a manager for a channel of `modules` modules with
    /// `blocks_per_module` 64-byte blocks each.
    ///
    /// # Panics
    ///
    /// Panics if `modules` is zero or `blocks_per_module` is zero.
    pub fn new(modules: usize, blocks_per_module: u64) -> ReplicationManager {
        assert!(modules > 0, "channel needs at least one module");
        assert!(blocks_per_module > 0, "modules need capacity");
        ReplicationManager {
            blocks_per_module,
            modules,
            used_blocks: 0,
            active: false,
            activations: 0,
        }
    }

    /// Total channel capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.blocks_per_module * self.modules as u64
    }

    /// Current channel utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        self.used_blocks as f64 / self.capacity_blocks() as f64
    }

    /// Whether replication (and therefore heterogeneous operation) is
    /// active.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Lifetime number of activations.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Whether the channel *could* replicate at `used` blocks: the
    /// in-use data must fit outside at least half the modules.
    pub fn can_replicate(&self, used: u64) -> bool {
        used * 2 <= self.capacity_blocks()
    }

    /// Reports a new software memory demand for this channel and
    /// returns the required action.
    pub fn set_used_blocks(&mut self, used: u64) -> ReplicationAction {
        self.used_blocks = used.min(self.capacity_blocks());
        match (self.active, self.can_replicate(self.used_blocks)) {
            (false, true) => {
                self.active = true;
                self.activations += 1;
                ReplicationAction::Activate
            }
            (true, false) => {
                self.active = false;
                ReplicationAction::Deactivate
            }
            _ => ReplicationAction::None,
        }
    }

    /// The block index in the Free Module that holds the copy of
    /// location `block` of the in-use module. Broadcast writes require
    /// the copy to live at the **same** offset (the address field of a
    /// broadcast write is shared across ranks), so this is the
    /// identity on the in-module offset.
    ///
    /// # Panics
    ///
    /// Panics if `block` is outside a single module's range — such a
    /// block cannot be replicated under the same-offset constraint.
    pub fn copy_offset(&self, block: u64) -> u64 {
        assert!(
            block < self.blocks_per_module,
            "replicable blocks live in the in-use module's offset range"
        );
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> ReplicationManager {
        // Two 16 GB modules: 2^28 blocks each.
        ReplicationManager::new(2, 1 << 28)
    }

    #[test]
    fn activates_below_half_utilization() {
        let mut m = manager();
        assert!(!m.is_active());
        let action = m.set_used_blocks(1 << 27); // 25% of channel
        assert_eq!(action, ReplicationAction::Activate);
        assert!(m.is_active());
        assert_eq!(m.activations(), 1);
    }

    #[test]
    fn deactivates_when_memory_needed() {
        let mut m = manager();
        m.set_used_blocks(1 << 27);
        let action = m.set_used_blocks((1 << 28) + 1); // > 50%
        assert_eq!(action, ReplicationAction::Deactivate);
        assert!(!m.is_active());
    }

    #[test]
    fn boundary_is_exactly_half() {
        let mut m = manager();
        // Exactly half still fits: copies occupy the other half.
        assert_eq!(m.set_used_blocks(1 << 28), ReplicationAction::Activate);
        assert_eq!(
            m.set_used_blocks((1 << 28) + 1),
            ReplicationAction::Deactivate
        );
        assert_eq!(m.set_used_blocks(1 << 28), ReplicationAction::Activate);
        assert_eq!(m.activations(), 2);
    }

    #[test]
    fn stable_states_report_none() {
        let mut m = manager();
        m.set_used_blocks(100);
        assert_eq!(m.set_used_blocks(200), ReplicationAction::None);
        m.set_used_blocks(m.capacity_blocks());
        assert_eq!(
            m.set_used_blocks(m.capacity_blocks()),
            ReplicationAction::None
        );
    }

    #[test]
    fn utilization_math() {
        let mut m = manager();
        m.set_used_blocks(1 << 27);
        assert!((m.utilization() - 0.25).abs() < 1e-12);
        // Demand beyond capacity clamps.
        m.set_used_blocks(u64::MAX);
        assert_eq!(m.utilization(), 1.0);
    }

    #[test]
    fn copy_offset_is_identity_within_module() {
        let m = manager();
        assert_eq!(m.copy_offset(0), 0);
        assert_eq!(m.copy_offset(12345), 12345);
    }

    #[test]
    #[should_panic(expected = "offset range")]
    fn copy_offset_rejects_out_of_module_blocks() {
        let m = manager();
        let _ = m.copy_offset(1 << 28);
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn zero_modules_rejected() {
        let _ = ReplicationManager::new(0, 8);
    }
}
