//! Permanent-hardware-fault handling (Section III-E).
//!
//! A module that develops a permanent yet ECC-correctable fault (e.g.
//! a stuck column) is a bad place for *copies*: every fast read of the
//! afflicted block detects an error and triggers a costly pair of
//! frequency transitions. The paper's remedy is role remapping: move
//! the copies to the healthy module and let the faulty module hold
//! originals, where the fault is silently absorbed by conventional
//! ECC correction on the rare in-spec accesses.
//!
//! [`PermanentFaultTracker`] implements the detection side: it watches
//! per-block recovery events and flags a block as permanently faulty
//! once recoveries recur — a transient error is gone after the copy is
//! repaired from the original, so a block that *keeps* erroring right
//! after repair has hardware behind it.

use std::collections::HashMap;

/// Watches recovery events and recommends remapping.
#[derive(Debug, Clone)]
pub struct PermanentFaultTracker {
    /// Recoveries seen per block offset.
    recoveries: HashMap<u64, u32>,
    /// Recoveries of one block before it is declared permanent.
    threshold: u32,
}

impl Default for PermanentFaultTracker {
    fn default() -> Self {
        PermanentFaultTracker::new(3)
    }
}

impl PermanentFaultTracker {
    /// Creates a tracker that declares a block permanently faulty
    /// after `threshold` recoveries.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u32) -> PermanentFaultTracker {
        assert!(threshold > 0, "threshold must be positive");
        PermanentFaultTracker {
            recoveries: HashMap::new(),
            threshold,
        }
    }

    /// Records that `block`'s copy needed recovery. Returns `true`
    /// when the block has crossed the permanent-fault threshold and
    /// the channel should remap module roles.
    pub fn record_recovery(&mut self, block: u64) -> bool {
        let count = self.recoveries.entry(block).or_insert(0);
        *count += 1;
        *count >= self.threshold
    }

    /// A successful fast (clean) read of `block` clears its suspicion:
    /// the earlier errors were transient after all.
    pub fn record_clean(&mut self, block: u64) {
        self.recoveries.remove(&block);
    }

    /// Number of currently suspicious blocks.
    pub fn suspects(&self) -> usize {
        self.recoveries.len()
    }

    /// Resets all bookkeeping (after a remap, history is moot).
    pub fn reset(&mut self) {
        self.recoveries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_errors_never_trip_it() {
        let mut t = PermanentFaultTracker::new(3);
        for block in 0..100 {
            assert!(!t.record_recovery(block));
            t.record_clean(block);
        }
        assert_eq!(t.suspects(), 0);
    }

    #[test]
    fn repeated_recovery_of_one_block_trips_it() {
        let mut t = PermanentFaultTracker::new(3);
        assert!(!t.record_recovery(7));
        assert!(!t.record_recovery(7));
        assert!(t.record_recovery(7));
    }

    #[test]
    fn clean_read_resets_suspicion() {
        let mut t = PermanentFaultTracker::new(2);
        t.record_recovery(7);
        t.record_clean(7);
        assert!(!t.record_recovery(7), "history cleared by clean read");
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = PermanentFaultTracker::default();
        t.record_recovery(1);
        t.record_recovery(2);
        assert_eq!(t.suspects(), 2);
        t.reset();
        assert_eq!(t.suspects(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = PermanentFaultTracker::new(0);
    }
}
