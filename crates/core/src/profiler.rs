//! Boot-time margin profiling (Section III-E, "Determining Margins").
//!
//! Hetero-DMR borrows REAPER's idea of profiling memory at boot (and
//! re-profiling when idle) — but with a crucial difference the paper
//! stresses: the profile is consulted only for *performance*. If the
//! profile turns out optimistic (short profiling runs, a temperature
//! spike past the profiled point), the copies merely error more often
//! and recovery falls back on the always-in-spec originals;
//! correctness never depends on the profile being right.

use crate::monte_carlo::MarginGroups;
use dram::rate::DataRate;
use margin::composition::{channel_margin, node_margin, SelectionPolicy};
use margin::stress::{measure_margin, measure_margin_metered, StressConfig, StressMeter};

/// One module as the profiler sees it: its labelled rate and (hidden)
/// true margin, which the stress procedure measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleUnderTest {
    /// Manufacturer-labelled data rate.
    pub specified: DataRate,
    /// Ground-truth margin in MT/s (what a perfect tester would find).
    pub true_margin_mts: u32,
}

/// The result of profiling one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeProfile {
    /// Measured margin per module, per channel (slot order).
    pub module_margins: Vec<Vec<u32>>,
    /// Usable margin per channel under margin-aware selection.
    pub channel_margins: Vec<u32>,
    /// Which module each channel should operate unsafely fast
    /// (the margin-aware pick).
    pub fast_module: Vec<usize>,
    /// The node's usable margin (minimum across channels).
    pub node_margin_mts: u32,
}

impl NodeProfile {
    /// The scheduler group this node lands in (800 / 600 / 0).
    pub fn group(&self) -> u32 {
        MarginGroups::group_of(self.node_margin_mts)
    }
}

/// The boot-time profiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeProfiler {
    /// The stress-measurement procedure parameters.
    pub config: StressConfig,
}

impl NodeProfiler {
    /// Profiles a node: measures every module's margin with the
    /// stepping stress procedure and composes channel and node margins
    /// under margin-aware selection (Section III-D).
    ///
    /// # Panics
    ///
    /// Panics if any channel is empty.
    pub fn profile(&self, channels: &[Vec<ModuleUnderTest>]) -> NodeProfile {
        self.profile_impl(channels, None)
    }

    /// [`NodeProfiler::profile`] with profiling-effort accounting
    /// (modules measured, rate steps stressed) on `meter`.
    pub fn profile_metered(
        &self,
        channels: &[Vec<ModuleUnderTest>],
        meter: &StressMeter,
    ) -> NodeProfile {
        self.profile_impl(channels, Some(meter))
    }

    fn profile_impl(
        &self,
        channels: &[Vec<ModuleUnderTest>],
        meter: Option<&StressMeter>,
    ) -> NodeProfile {
        let measure = |m: &ModuleUnderTest| match meter {
            Some(meter) => {
                measure_margin_metered(m.specified, m.true_margin_mts, &self.config, meter)
            }
            None => measure_margin(m.specified, m.true_margin_mts, &self.config),
        };
        let module_margins: Vec<Vec<u32>> = channels
            .iter()
            .map(|ch| {
                assert!(!ch.is_empty(), "channels must be populated");
                ch.iter().map(measure).collect()
            })
            .collect();
        let channel_margins: Vec<u32> = module_margins
            .iter()
            .map(|m| channel_margin(m, SelectionPolicy::MarginAware))
            .collect();
        let fast_module: Vec<usize> = module_margins
            .iter()
            .map(|m| {
                m.iter()
                    .enumerate()
                    .max_by_key(|&(_, &margin)| margin)
                    .map(|(i, _)| i)
                    .expect("nonempty channel")
            })
            .collect();
        NodeProfile {
            node_margin_mts: node_margin(&channel_margins),
            module_margins,
            channel_margins,
            fast_module,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(margin: u32) -> ModuleUnderTest {
        ModuleUnderTest {
            specified: DataRate::MT3200,
            true_margin_mts: margin,
        }
    }

    #[test]
    fn profiles_a_two_channel_node() {
        let profiler = NodeProfiler::default();
        let profile = profiler.profile(&[
            vec![module(650), module(900)],
            vec![module(850), module(700)],
        ]);
        // Measured margins are quantized to 200 MT/s steps.
        assert_eq!(profile.module_margins, vec![vec![600, 800], vec![800, 600]]);
        assert_eq!(profile.channel_margins, vec![800, 800]);
        assert_eq!(profile.fast_module, vec![1, 0]);
        assert_eq!(profile.node_margin_mts, 800);
        assert_eq!(profile.group(), 800);
    }

    #[test]
    fn metered_profile_counts_modules_and_steps() {
        use telemetry::Registry;

        let mut meter = StressMeter::default();
        let r = Registry::new();
        meter.bind(&r.scope("profiler"));
        let profiler = NodeProfiler::default();
        let metered = profiler.profile_metered(
            &[
                vec![module(650), module(900)],
                vec![module(850), module(700)],
            ],
            &meter,
        );
        assert_eq!(
            metered,
            profiler.profile(&[
                vec![module(650), module(900)],
                vec![module(850), module(700)],
            ])
        );
        let snap = r.snapshot();
        assert_eq!(snap.counter("profiler.modules_profiled"), 4);
        assert_eq!(snap.counter("profiler.steps_tested"), meter.steps_tested());
        assert!(meter.steps_tested() >= 4, "every module takes steps");
    }

    #[test]
    fn slowest_channel_caps_the_node() {
        let profiler = NodeProfiler::default();
        let profile = profiler.profile(&[
            vec![module(900), module(950)],
            vec![module(620), module(640)],
        ]);
        assert_eq!(profile.node_margin_mts, 600);
        assert_eq!(profile.group(), 600);
    }

    #[test]
    fn marginless_node_lands_in_group_zero() {
        let profiler = NodeProfiler::default();
        let profile = profiler.profile(&[vec![module(150), module(180)]]);
        assert_eq!(profile.node_margin_mts, 0);
        assert_eq!(profile.group(), 0);
    }

    #[test]
    fn cap_respects_the_testbed_limit() {
        let profiler = NodeProfiler::default();
        let profile = profiler.profile(&[vec![module(1_500)]]);
        // The 4000 MT/s system cap truncates at 800 for 3200 modules.
        assert_eq!(profile.node_margin_mts, 800);
    }

    #[test]
    fn optimistic_profile_is_a_performance_bug_not_a_safety_bug() {
        // Profile says 800, but the module later degrades (e.g., a
        // thermal excursion): the protocol still returns correct data,
        // it just pays recovery costs — the Section III-E argument.
        use crate::protocol::HeteroDmrChannel;
        use ecc::ErrorModel;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let profiler = NodeProfiler::default();
        let profile = profiler.profile(&[vec![module(620), module(820)]]);
        assert_eq!(profile.node_margin_mts, 800);

        // Operate per the (now stale) profile; every read errors.
        let mut rng = StdRng::seed_from_u64(8);
        let mut ch = HeteroDmrChannel::new(1 << 12);
        let mut t = ch.set_used_blocks(1 << 10, 0);
        for block in 0..20u64 {
            let (data, _, end) = ch
                .read(block, t, Some((&mut rng, ErrorModel::ByteBurst(8))))
                .unwrap();
            assert_eq!(data, [0u8; 64]);
            t = end;
        }
    }
}
