//! The node-level evaluation engine behind Figures 5, 12, 13, 14,
//! and 15.
//!
//! Runs the [`memsim`] simulator for a (design, suite, hierarchy)
//! triple, applies the paper's memory-usage fallback semantics
//! (free-memory designs revert to the baseline above their
//! threshold), and aggregates suite averages / usage-bucket weights /
//! margin-group weights exactly as the paper's "average across six
//! HPC benchmark suites" and "[0~100%]" bars do.
//!
//! Results are memoized twice: per engine (a plain map) and process
//! wide ([`shared_cache`]), keyed by a content fingerprint of the
//! hierarchy and eval config plus the exact design and suite, so
//! trials, variants, and figures that evaluate the same configuration
//! share one simulation. Cached entries carry the run's telemetry
//! snapshot, replayed into the recalling engine's scope on a hit —
//! metrics output is byte-identical with the cache on or off.

use crate::designs::MemoryDesign;
use crate::monte_carlo::MarginGroups;
use dram::power::ActivityCounters;
use energy::{EnergyBreakdown, EnergyModel};
use memsim::config::HierarchyConfig;
use memsim::{NodeSim, SimResult};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use telemetry::trace::{kv, Clock, Tracer};
use telemetry::{slug, Registry, Scope, Snapshot};
use workloads::{Suite, TraceGen};

/// The paper's Figure 12 memory-usage buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UsageBucket {
    /// `[0 – 25 %)` utilization.
    Low,
    /// `[25 – 50 %)`.
    Mid,
    /// `[50 – 100 %]`.
    High,
}

impl UsageBucket {
    /// All buckets in Figure 12 order.
    pub const ALL: [UsageBucket; 3] = [UsageBucket::Low, UsageBucket::Mid, UsageBucket::High];

    /// Figure 12's bucket label.
    pub fn label(self) -> &'static str {
        match self {
            UsageBucket::Low => "[0~25%)",
            UsageBucket::Mid => "[25~50%)",
            UsageBucket::High => "[50~100%]",
        }
    }

    /// A representative utilization within the bucket.
    pub fn representative_utilization(self) -> f64 {
        match self {
            UsageBucket::Low => 0.15,
            UsageBucket::Mid => 0.35,
            UsageBucket::High => 0.75,
        }
    }
}

/// Simulation length, seeding, and window partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Memory operations simulated per core.
    pub ops_per_core: usize,
    /// Base RNG seed (per-core streams derive from it).
    pub seed: u64,
    /// Time windows each simulation is split into (1 = one straight
    /// run). The cursor API guarantees any partition is byte-identical
    /// to an unwindowed run; windows only set the granularity at which
    /// per-window tallies flush into telemetry and at which the
    /// time-parallel runner path could overlap work.
    pub windows: u32,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            ops_per_core: 20_000,
            seed: 0xD1A2,
            windows: 1,
        }
    }
}

/// The telemetry label for one `(design, suite)` run, relative to an
/// engine's metrics scope.
fn run_label(design: MemoryDesign, suite: Suite) -> String {
    format!("{}.{}", slug(&design.name()), slug(suite.name()))
}

/// One full simulation of `design` on `suite`: pure with respect to
/// its arguments (no memoization, no engine state), which is what
/// makes [`NodeModel::prime`] safe to fan out across workers.
/// `sink`, when present, is the fully-labelled scope the run's
/// telemetry lands under (callers nest [`run_label`] themselves).
fn simulate(
    hierarchy: &HierarchyConfig,
    config: &EvalConfig,
    sink: Option<&Scope>,
    trace: Option<&Tracer>,
    design: MemoryDesign,
    suite: Suite,
) -> SimResult {
    // The sim span opens at t=0 on the simulation clock and closes at
    // the run's final exec time; the simulator's own spans (write
    // drains, recovery chains) nest under it by stack discipline.
    let span = trace.map(|t| {
        t.begin(
            format!("sim.{}", run_label(design, suite)),
            "model",
            Clock::SimPs,
            0,
        )
    });
    let (modes, mirror) = design.per_channel_modes(hierarchy.memory.channels);
    let mut node = NodeSim::with_modes(*hierarchy, modes, mirror);
    if let Some(scope) = sink {
        node.attach_telemetry(scope);
    }
    if let Some(t) = trace {
        node.attach_trace(t);
    }
    let streams: Vec<TraceGen> = (0..hierarchy.cores)
        .map(|i| {
            TraceGen::new(
                suite.params(),
                config.seed.wrapping_add(i as u64),
                config.ops_per_core,
            )
        })
        .collect();
    // Start in steady state: fill each core's LLC partition with
    // its stream's recent past (the paper warms its gem5 caches
    // before the measured interval), dirty at the store fraction.
    // Every design gets the identical warm state so write volumes
    // are comparable; Hetero-DMR's cleaning then drains the same
    // dirty blocks in batches that eviction would have trickled.
    let warm = node.l3_blocks_per_core();
    for (i, stream) in streams.iter().enumerate() {
        node.prewarm_core(i, stream.warmup_blocks(warm, suite.params().write_fraction));
    }
    let result = run_windowed(node, streams, config.windows);
    if let (Some(t), Some(span)) = (trace, span) {
        t.end_with(
            span,
            result.exec_time_ps,
            vec![kv("instructions", result.instructions)],
        );
    }
    result
}

/// Executes a prepared node to completion, split into `windows` time
/// windows driven through [`runner::windows::window_chain`]. The
/// cursor API makes any partition byte-identical to `node.run(..)`,
/// so windowing changes *when* tallies flush into telemetry — once
/// per window boundary instead of once per op — never *what* they
/// total to. The final window's budget is unbounded, so an uneven
/// op count still runs to completion.
fn run_windowed(mut node: NodeSim, streams: Vec<TraceGen>, windows: u32) -> SimResult {
    if windows <= 1 {
        return node.run(streams);
    }
    let windows = windows as usize;
    let total_ops: u64 = streams.iter().map(|s| s.remaining() as u64).sum();
    let budget = total_ops.div_ceil(windows as u64).max(1);
    let cursor = node.begin(streams);
    let ((mut node, cursor), _) =
        runner::windows::window_chain((node, cursor), windows, |(mut node, mut cursor), i| {
            let cap = if i + 1 == windows { u64::MAX } else { budget };
            node.run_steps(&mut cursor, cap);
            ((node, cursor), ())
        });
    node.finish(cursor)
}

/// [`simulate`] with its telemetry captured in a private registry, so
/// the run's metrics travel with the result: the shared cache stores
/// the snapshot and replays it (see [`Scope::absorb`]) into whichever
/// scope later recalls the entry.
fn simulate_snapshotted(
    hierarchy: &HierarchyConfig,
    config: &EvalConfig,
    trace: Option<&Tracer>,
    design: MemoryDesign,
    suite: Suite,
) -> (SimResult, Snapshot) {
    let registry = Registry::new();
    let scope = registry.scope(&run_label(design, suite));
    let result = simulate(hierarchy, config, Some(&scope), trace, design, suite);
    (result, registry.snapshot())
}

/// A shared-cache key: the content fingerprint of everything that
/// determines a run's outcome (hierarchy and eval config, hashed) plus
/// the design and suite, kept exact.
type SharedKey = (u64, MemoryDesign, Suite);

/// A cached run: the simulation result plus, when the miss ran with
/// metrics attached, the telemetry snapshot a hit replays.
type SharedEntry = (SimResult, Option<Snapshot>);

/// The process-wide result cache: identical `(hierarchy, eval config,
/// design, suite)` runs across engines — different trials, variants,
/// figures — resolve to one simulation.
fn shared_cache() -> &'static Mutex<HashMap<SharedKey, SharedEntry>> {
    static CACHE: OnceLock<Mutex<HashMap<SharedKey, SharedEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

static SHARED_HITS: AtomicU64 = AtomicU64::new(0);
static SHARED_MISSES: AtomicU64 = AtomicU64::new(0);

/// Lifetime `(hits, misses)` of the process-wide result cache.
pub fn shared_cache_stats() -> (u64, u64) {
    (
        SHARED_HITS.load(Ordering::Relaxed),
        SHARED_MISSES.load(Ordering::Relaxed),
    )
}

/// Folds the eval config into the hierarchy fingerprint: the complete
/// content address of a simulation's inputs (the design and suite ride
/// alongside in the key, unhashed).
fn cache_fingerprint(hierarchy: &HierarchyConfig, config: &EvalConfig) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = hierarchy.fingerprint();
    // `windows` provably cannot change a run's outcome (the window
    // differential tests pin that), but it stays in the fingerprint so
    // the cache can never paper over a regression in that guarantee.
    for w in [
        config.ops_per_core as u64,
        config.seed,
        config.windows as u64,
    ] {
        h = (h ^ w).wrapping_mul(PRIME);
    }
    h
}

/// The evaluation engine for one hierarchy, with run memoization.
#[derive(Debug)]
pub struct NodeModel {
    hierarchy: HierarchyConfig,
    config: EvalConfig,
    cache: RefCell<HashMap<(MemoryDesign, Suite), SimResult>>,
    metrics: Option<Scope>,
    trace: Option<Tracer>,
    fingerprint: u64,
    shared: bool,
}

impl NodeModel {
    /// Creates an engine for `hierarchy`.
    pub fn new(hierarchy: HierarchyConfig, config: EvalConfig) -> NodeModel {
        let fingerprint = cache_fingerprint(&hierarchy, &config);
        NodeModel {
            hierarchy,
            config,
            cache: RefCell::new(HashMap::new()),
            metrics: None,
            trace: None,
            fingerprint,
            shared: true,
        }
    }

    /// Opts this engine in or out of the process-wide result cache
    /// (on by default; benchmarks opt out to measure real simulation
    /// cost, and `--no-model-cache` opts whole runs out).
    pub fn set_shared_cache(&mut self, shared: bool) {
        self.shared = shared;
    }

    /// Routes simulator telemetry into `scope`: every fresh (design,
    /// suite) run attaches its [`NodeSim`] under
    /// `<scope>.<design>.<suite>`. Memoized replays record nothing, so
    /// each configuration contributes exactly one run's worth of
    /// counts no matter how many figures consult it.
    pub fn set_metrics_scope(&mut self, scope: Scope) {
        self.metrics = Some(scope);
    }

    /// Routes causal trace spans into `tracer`: fresh runs record a
    /// `sim.<design>.<suite>` span on the simulation clock with the
    /// simulator's own spans nested inside, and shared-cache lookups
    /// record `cache.hit` / `cache.miss` instants on the engine's tick
    /// clock. Engine-local memo hits record nothing, mirroring the
    /// metrics contract.
    pub fn set_trace(&mut self, tracer: &Tracer) {
        self.trace = Some(tracer.clone());
    }

    /// The hierarchy under evaluation.
    pub fn hierarchy(&self) -> &HierarchyConfig {
        &self.hierarchy
    }

    /// Runs (or recalls) the simulation of `design` on `suite` with
    /// the design fully active.
    pub fn run(&self, design: MemoryDesign, suite: Suite) -> SimResult {
        if let Some(hit) = self.cache.borrow().get(&(design, suite)) {
            return hit.clone();
        }
        let result = self.run_uncached(design, suite);
        self.cache
            .borrow_mut()
            .insert((design, suite), result.clone());
        result
    }

    /// A run that missed this engine's memo: consult the shared cache
    /// (replaying the stored telemetry snapshot on a hit, so metrics
    /// output is indistinguishable from simulating here), or simulate
    /// and publish.
    fn run_uncached(&self, design: MemoryDesign, suite: Suite) -> SimResult {
        if !self.shared {
            let sink = self
                .metrics
                .as_ref()
                .map(|s| s.scope(&run_label(design, suite)));
            return simulate(
                &self.hierarchy,
                &self.config,
                sink.as_ref(),
                self.trace.as_ref(),
                design,
                suite,
            );
        }
        if let Some(result) = self.shared_lookup(design, suite) {
            return result;
        }
        SHARED_MISSES.fetch_add(1, Ordering::Relaxed);
        self.trace_cache_event("cache.miss", design, suite);
        let key = (self.fingerprint, design, suite);
        match &self.metrics {
            Some(scope) => {
                let (result, snap) = simulate_snapshotted(
                    &self.hierarchy,
                    &self.config,
                    self.trace.as_ref(),
                    design,
                    suite,
                );
                scope.absorb(&snap);
                // Unconditional insert: also upgrades a snapshot-less
                // entry left by a metrics-free run.
                shared_cache()
                    .lock()
                    .unwrap()
                    .insert(key, (result.clone(), Some(snap)));
                result
            }
            None => {
                let result = simulate(
                    &self.hierarchy,
                    &self.config,
                    None,
                    self.trace.as_ref(),
                    design,
                    suite,
                );
                shared_cache()
                    .lock()
                    .unwrap()
                    .entry(key)
                    .or_insert_with(|| (result.clone(), None));
                result
            }
        }
    }

    /// A shared-cache hit usable by this engine. With metrics attached
    /// the entry must carry a snapshot to replay — snapshot-less
    /// entries (recorded by metrics-free runs) miss instead, and the
    /// re-run upgrades them.
    fn shared_lookup(&self, design: MemoryDesign, suite: Suite) -> Option<SimResult> {
        let cache = shared_cache().lock().unwrap();
        let (result, snap) = cache.get(&(self.fingerprint, design, suite))?;
        let result = match (&self.metrics, snap) {
            (None, _) => result.clone(),
            (Some(scope), Some(snap)) => {
                scope.absorb(snap);
                result.clone()
            }
            (Some(_), None) => return None,
        };
        SHARED_HITS.fetch_add(1, Ordering::Relaxed);
        self.trace_cache_event("cache.hit", design, suite);
        Some(result)
    }

    /// A `cache.hit` / `cache.miss` instant on the engine's tick
    /// clock, naming the run it resolved.
    fn trace_cache_event(&self, name: &str, design: MemoryDesign, suite: Suite) {
        if let Some(t) = &self.trace {
            let tick = t.tick();
            t.instant(
                name,
                "model",
                Clock::Ticks,
                tick,
                vec![kv("run", run_label(design, suite))],
            );
        }
    }

    /// Runs every not-yet-memoized `(design, suite)` pair on the
    /// worker pool and fills the cache, so subsequent [`run`] calls
    /// are recalls. Each simulation is single-threaded and seeded
    /// purely from the engine config, and telemetry lands under a
    /// per-pair scope, so priming in parallel yields bit-identical
    /// results and metrics to running the pairs one by one.
    ///
    /// [`run`]: NodeModel::run
    pub fn prime(&self, pairs: &[(MemoryDesign, Suite)]) {
        let mut missing: Vec<(MemoryDesign, Suite)> = Vec::new();
        {
            let cache = self.cache.borrow();
            for &pair in pairs {
                if !cache.contains_key(&pair) && !missing.contains(&pair) {
                    missing.push(pair);
                }
            }
        }
        if self.shared {
            // Shared-cache hits resolve inline (replaying their stored
            // snapshots); only true misses go to the worker pool.
            missing.retain(|&(design, suite)| match self.shared_lookup(design, suite) {
                Some(result) => {
                    self.cache.borrow_mut().insert((design, suite), result);
                    false
                }
                None => true,
            });
        }
        if missing.is_empty() {
            return;
        }
        let (hierarchy, config, metrics) = (&self.hierarchy, &self.config, self.metrics.as_ref());
        // Workers trace into private tracers; the engine absorbs the
        // buffers in `missing` input order, so the merged trace is
        // identical to running the pairs serially.
        let want_trace = self.trace.is_some();
        if !self.shared {
            let results = runner::parallel_map(missing.clone(), move |_, (design, suite)| {
                let sink = metrics.map(|s| s.scope(&run_label(design, suite)));
                let worker = want_trace.then(Tracer::new);
                let result = simulate(
                    hierarchy,
                    config,
                    sink.as_ref(),
                    worker.as_ref(),
                    design,
                    suite,
                );
                (result, worker.map(|t| t.take()))
            });
            let mut cache = self.cache.borrow_mut();
            for (pair, (result, spans)) in missing.into_iter().zip(results) {
                if let (Some(t), Some(spans)) = (&self.trace, spans) {
                    t.absorb(spans);
                }
                cache.insert(pair, result);
            }
            return;
        }
        let want_snap = metrics.is_some();
        let results = runner::parallel_map(missing.clone(), move |_, (design, suite)| {
            let worker = want_trace.then(Tracer::new);
            let out = if want_snap {
                let (result, snap) =
                    simulate_snapshotted(hierarchy, config, worker.as_ref(), design, suite);
                (result, Some(snap))
            } else {
                (
                    simulate(hierarchy, config, None, worker.as_ref(), design, suite),
                    None,
                )
            };
            (out.0, out.1, worker.map(|t| t.take()))
        });
        SHARED_MISSES.fetch_add(results.len() as u64, Ordering::Relaxed);
        let mut cache = self.cache.borrow_mut();
        for ((design, suite), (result, snap, spans)) in missing.into_iter().zip(results) {
            if let (Some(scope), Some(snap)) = (&self.metrics, &snap) {
                scope.absorb(snap);
            }
            if let (Some(t), Some(spans)) = (&self.trace, spans) {
                self.trace_cache_event("cache.miss", design, suite);
                t.absorb(spans);
            }
            let key = (self.fingerprint, design, suite);
            let mut shared = shared_cache().lock().unwrap();
            match snap {
                Some(snap) => {
                    shared.insert(key, (result.clone(), Some(snap)));
                }
                None => {
                    shared.entry(key).or_insert_with(|| (result.clone(), None));
                }
            }
            drop(shared);
            cache.insert((design, suite), result);
        }
    }

    /// The design actually in force in a usage bucket: free-memory
    /// designs fall back when utilization crosses their threshold, and
    /// Hetero-DMR+FMR regresses to plain Hetero-DMR in `[25, 50 %)`.
    pub fn effective_design(design: MemoryDesign, bucket: UsageBucket) -> MemoryDesign {
        let util = bucket.representative_utilization();
        match design {
            MemoryDesign::HeteroDmrFmr { margin_mts } if util >= 0.25 => {
                Self::effective_design(MemoryDesign::HeteroDmr { margin_mts }, bucket)
            }
            d => match d.free_memory_threshold() {
                Some(threshold) if util >= threshold => MemoryDesign::CommercialBaseline,
                _ => d,
            },
        }
    }

    /// Performance of `design` on `suite` in `bucket`, normalized to
    /// the Commercial Baseline (>1 is faster).
    pub fn normalized(&self, design: MemoryDesign, suite: Suite, bucket: UsageBucket) -> f64 {
        let effective = Self::effective_design(design, bucket);
        if effective == MemoryDesign::CommercialBaseline
            && design != MemoryDesign::CommercialBaseline
        {
            return 1.0;
        }
        let base = self.run(MemoryDesign::CommercialBaseline, suite);
        let run = self.run(effective, suite);
        run.speedup_over(&base)
    }

    /// Normalized performance averaged across the six suites
    /// (each suite weighted equally, as the paper does).
    pub fn suite_average(&self, design: MemoryDesign, bucket: UsageBucket) -> f64 {
        Suite::ALL
            .iter()
            .map(|&s| self.normalized(design, s, bucket))
            .sum::<f64>()
            / Suite::ALL.len() as f64
    }

    /// Figure 12's `[0~100%]` bar: bucket averages weighted by the
    /// fraction of jobs in each usage bucket.
    pub fn usage_weighted(&self, design: MemoryDesign, bucket_weights: [f64; 3]) -> f64 {
        UsageBucket::ALL
            .iter()
            .zip(bucket_weights)
            .map(|(&b, w)| w * self.suite_average(design, b))
            .sum()
    }

    /// The headline aggregation: usage-weighted performance further
    /// weighted across node margin groups (0.8 / 0.6 / 0 GT/s), with
    /// zero-margin nodes running the baseline.
    pub fn margin_weighted<F>(
        &self,
        family: F,
        groups: &MarginGroups,
        bucket_weights: [f64; 3],
    ) -> f64
    where
        F: Fn(u32) -> MemoryDesign,
    {
        groups.at_800 * self.usage_weighted(family(800), bucket_weights)
            + groups.at_600 * self.usage_weighted(family(600), bucket_weights)
            + groups.at_0
    }

    /// Energy of a run for Figure 13. The self-refresh residency of
    /// the original-holding modules under Hetero-DMR comes from the
    /// simulator's bank-state residency tap (via
    /// [`SimResult::activity`]), not a fixed fraction.
    pub fn energy(
        &self,
        design: MemoryDesign,
        suite: Suite,
        model: &EnergyModel,
    ) -> EnergyBreakdown {
        let result = self.run(design, suite);
        let activity: ActivityCounters = result.activity();
        let modules = self.hierarchy.memory.channels * self.hierarchy.memory.modules_per_channel;
        model.energy(&activity, modules, result.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(h: HierarchyConfig) -> NodeModel {
        NodeModel::new(
            h,
            EvalConfig {
                ops_per_core: 6_000,
                seed: 42,
                windows: 1,
            },
        )
    }

    #[test]
    fn fallback_semantics() {
        use MemoryDesign as D;
        let hdmr = D::HeteroDmr { margin_mts: 800 };
        let both = D::HeteroDmrFmr { margin_mts: 800 };
        assert_eq!(NodeModel::effective_design(hdmr, UsageBucket::Low), hdmr);
        assert_eq!(NodeModel::effective_design(hdmr, UsageBucket::Mid), hdmr);
        assert_eq!(
            NodeModel::effective_design(hdmr, UsageBucket::High),
            D::CommercialBaseline
        );
        assert_eq!(NodeModel::effective_design(both, UsageBucket::Low), both);
        assert_eq!(NodeModel::effective_design(both, UsageBucket::Mid), hdmr);
        assert_eq!(
            NodeModel::effective_design(both, UsageBucket::High),
            D::CommercialBaseline
        );
        // Margin-setting overclocking ignores utilization.
        assert_eq!(
            NodeModel::effective_design(D::ExploitFreqLat, UsageBucket::High),
            D::ExploitFreqLat
        );
    }

    #[test]
    fn exploiting_margins_speeds_up_every_suite() {
        let m = model(HierarchyConfig::hierarchy1());
        for suite in Suite::ALL {
            let s = m.normalized(MemoryDesign::ExploitFreqLat, suite, UsageBucket::Low);
            assert!(
                s > 1.02 && s < 1.45,
                "{suite}: freq+lat speedup {s} out of plausible range"
            );
        }
    }

    #[test]
    fn figure5_ordering_latency_lt_freq_lt_both() {
        let m = model(HierarchyConfig::hierarchy1());
        let lat = m.suite_average(MemoryDesign::ExploitLatency, UsageBucket::Low);
        let freq = m.suite_average(MemoryDesign::ExploitFrequency, UsageBucket::Low);
        let both = m.suite_average(MemoryDesign::ExploitFreqLat, UsageBucket::Low);
        assert!(lat < freq, "latency {lat} vs freq {freq}");
        assert!(freq <= both + 0.01, "freq {freq} vs both {both}");
        // Paper: ~1.19x average for freq+lat.
        assert!((both - 1.19).abs() < 0.08, "freq+lat average {both}");
    }

    #[test]
    fn hetero_dmr_tracks_freq_lat_with_bounded_cost() {
        let m = model(HierarchyConfig::hierarchy1());
        let hdmr = m.suite_average(
            MemoryDesign::HeteroDmr { margin_mts: 800 },
            UsageBucket::Low,
        );
        let ideal = m.suite_average(MemoryDesign::ExploitFreqLat, UsageBucket::Low);
        assert!(hdmr > 1.04, "Hetero-DMR speedup {hdmr}");
        // Below the unprotected cherry-picked setting — the price of
        // rigorous reliability (the paper measures 2-3%; our
        // simulator's rank-consolidation penalty is harsher, see
        // EXPERIMENTS.md) — but it must stay a clear net win.
        assert!(hdmr < ideal, "protection is not free");
        assert!(ideal - hdmr < 0.16, "hdmr {hdmr} vs ideal {ideal}");
    }

    #[test]
    fn lower_margin_lower_speedup() {
        let m = model(HierarchyConfig::hierarchy1());
        let hi = m.suite_average(
            MemoryDesign::HeteroDmr { margin_mts: 800 },
            UsageBucket::Low,
        );
        let lo = m.suite_average(
            MemoryDesign::HeteroDmr { margin_mts: 600 },
            UsageBucket::Low,
        );
        assert!(lo <= hi + 0.01, "600 MT/s {lo} vs 800 MT/s {hi}");
        assert!(lo > 1.0, "600 MT/s margin still helps: {lo}");
    }

    #[test]
    fn high_usage_bucket_is_baseline() {
        let m = model(HierarchyConfig::hierarchy1());
        let s = m.suite_average(
            MemoryDesign::HeteroDmr { margin_mts: 800 },
            UsageBucket::High,
        );
        assert_eq!(s, 1.0);
    }

    #[test]
    fn usage_weighting_blends_buckets() {
        let m = model(HierarchyConfig::hierarchy1());
        let design = MemoryDesign::HeteroDmr { margin_mts: 800 };
        let low = m.suite_average(design, UsageBucket::Low);
        let blended = m.usage_weighted(design, [0.60, 0.15, 0.25]);
        assert!(blended > 1.0 && blended < low);
    }

    #[test]
    fn metrics_scope_records_each_config_once() {
        let mut m = model(HierarchyConfig::hierarchy1());
        let r = telemetry::Registry::new();
        m.set_metrics_scope(r.scope("node"));
        let _ = m.run(MemoryDesign::CommercialBaseline, Suite::Hpcg);
        let once = r.snapshot();
        assert!(once.counter("node.commercial_baseline.hpcg.ops") > 0);
        assert!(once.counter("node.commercial_baseline.hpcg.ch0.controller.reads") > 0);
        let _ = m.run(MemoryDesign::CommercialBaseline, Suite::Hpcg);
        assert_eq!(r.snapshot(), once, "memoized replays record nothing");
    }

    #[test]
    fn prime_matches_serial_runs() {
        let pairs = [
            (MemoryDesign::CommercialBaseline, Suite::Hpcg),
            (MemoryDesign::ExploitFreqLat, Suite::Hpcg),
            (MemoryDesign::ExploitFreqLat, Suite::Hpcg), // duplicate is fine
        ];
        let primed = model(HierarchyConfig::hierarchy1());
        primed.prime(&pairs);
        let serial = model(HierarchyConfig::hierarchy1());
        for (design, suite) in [pairs[0], pairs[1]] {
            assert_eq!(
                primed.run(design, suite).exec_time_ps,
                serial.run(design, suite).exec_time_ps,
                "{design:?}/{suite:?}"
            );
        }
    }

    #[test]
    fn shared_cache_replays_metrics_identically() {
        let pair = (MemoryDesign::ExploitLatency, Suite::Lulesh);
        // Reference: record directly, shared cache off.
        let mut direct = model(HierarchyConfig::hierarchy1());
        direct.set_shared_cache(false);
        let rd = telemetry::Registry::new();
        direct.set_metrics_scope(rd.scope("node"));
        let _ = direct.run(pair.0, pair.1);
        // Ensure a snapshot-bearing shared entry exists (miss or hit,
        // either leaves one behind)...
        let mut warm = model(HierarchyConfig::hierarchy1());
        let rw = telemetry::Registry::new();
        warm.set_metrics_scope(rw.scope("node"));
        let _ = warm.run(pair.0, pair.1);
        // ...so this run is a guaranteed snapshot replay.
        let (hits_before, _) = shared_cache_stats();
        let mut replay = model(HierarchyConfig::hierarchy1());
        let rr = telemetry::Registry::new();
        replay.set_metrics_scope(rr.scope("node"));
        let result = replay.run(pair.0, pair.1);
        let (hits_after, _) = shared_cache_stats();
        assert!(hits_after > hits_before, "expected a shared-cache hit");
        assert_eq!(result.exec_time_ps, direct.run(pair.0, pair.1).exec_time_ps);
        assert_eq!(rr.snapshot(), rd.snapshot(), "replayed metrics differ");
    }

    #[test]
    fn shared_cache_keys_on_eval_config() {
        let cfg = |seed| EvalConfig {
            ops_per_core: 3_000,
            seed,
            windows: 1,
        };
        let a = NodeModel::new(HierarchyConfig::hierarchy1(), cfg(7));
        let b = NodeModel::new(HierarchyConfig::hierarchy1(), cfg(8));
        let ra = a.run(MemoryDesign::CommercialBaseline, Suite::Lulesh);
        let rb = b.run(MemoryDesign::CommercialBaseline, Suite::Lulesh);
        assert_ne!(
            ra.exec_time_ps, rb.exec_time_ps,
            "different seeds must not share cache entries"
        );
    }

    #[test]
    fn run_memoization_is_stable() {
        let m = model(HierarchyConfig::hierarchy1());
        let a = m.run(MemoryDesign::CommercialBaseline, Suite::Hpcg);
        let b = m.run(MemoryDesign::CommercialBaseline, Suite::Hpcg);
        assert_eq!(a.exec_time_ps, b.exec_time_ps);
    }

    #[test]
    fn cleaning_overhead_is_small() {
        // Figure 14: Hetero-DMR's extra DRAM accesses per instruction
        // are ~1% on average.
        let m = model(HierarchyConfig::hierarchy1());
        let base = m.run(MemoryDesign::CommercialBaseline, Suite::Npb);
        let hdmr = m.run(MemoryDesign::HeteroDmr { margin_mts: 800 }, Suite::Npb);
        let overhead =
            hdmr.dram_accesses_per_instruction() / base.dram_accesses_per_instruction() - 1.0;
        assert!(overhead.abs() < 0.10, "accesses/instr overhead {overhead}");
    }

    #[test]
    fn trace_records_sim_spans_and_cache_instants() {
        use telemetry::trace::{check_nesting, Clock, Ph, Tracer};
        // Private seed so this test owns its shared-cache entries.
        let mk = || {
            NodeModel::new(
                HierarchyConfig::hierarchy1(),
                EvalConfig {
                    ops_per_core: 2_000,
                    seed: 0xACE5,
                    windows: 1,
                },
            )
        };
        let tracer = Tracer::new();
        let mut m = mk();
        m.set_trace(&tracer);
        let pairs = [
            (MemoryDesign::CommercialBaseline, Suite::Hpcg),
            (MemoryDesign::ExploitFreqLat, Suite::Hpcg),
        ];
        m.prime(&pairs);
        let _ = m.run(pairs[0].0, pairs[0].1);
        let events = tracer.take();
        check_nesting(&events).unwrap();
        let sims: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("sim.") && e.ph == Ph::Span)
            .collect();
        assert_eq!(sims.len(), 2, "one sim span per primed pair");
        assert!(sims.iter().all(|e| e.clock == Clock::SimPs && e.end > 0));
        assert_eq!(
            events.iter().filter(|e| e.name == "cache.miss").count(),
            2,
            "both primed pairs were shared-cache misses"
        );
        // A second engine recalling the same config hits the shared
        // cache and records only the hit instant, no sim span.
        let hit_tracer = Tracer::new();
        let mut m2 = mk();
        m2.set_trace(&hit_tracer);
        let _ = m2.run(pairs[0].0, pairs[0].1);
        let hits = hit_tracer.take();
        assert!(hits.iter().any(|e| e.name == "cache.hit"));
        assert!(!hits.iter().any(|e| e.name.starts_with("sim.")));
    }

    /// Satellite of the batched/windowed hot loop: window boundaries
    /// flush per-window tally locals into the shared telemetry
    /// handles, so a windowed run must end with *identical* counters —
    /// and an identical `SimResult` — to the unwindowed run, not just
    /// close ones.
    #[test]
    fn windowed_run_matches_unwindowed_bit_for_bit() {
        let cfg = |windows| EvalConfig {
            ops_per_core: 3_000,
            seed: 0x51DE,
            windows,
        };
        let run = |windows| {
            let mut m = NodeModel::new(HierarchyConfig::hierarchy1(), cfg(windows));
            m.set_shared_cache(false);
            let r = telemetry::Registry::new();
            m.set_metrics_scope(r.scope("node"));
            let result = m.run(MemoryDesign::HeteroDmr { margin_mts: 800 }, Suite::Lulesh);
            (result, r.snapshot())
        };
        let (plain_result, plain_metrics) = run(1);
        for windows in [2, 5, 64] {
            let (result, metrics) = run(windows);
            assert_eq!(result, plain_result, "{windows} windows: SimResult drifted");
            assert_eq!(
                metrics, plain_metrics,
                "{windows} windows: telemetry counters drifted"
            );
        }
    }

    #[test]
    fn energy_improves_under_hetero_dmr() {
        let m = model(HierarchyConfig::hierarchy1());
        let em = EnergyModel::default();
        let base = m.energy(MemoryDesign::CommercialBaseline, Suite::Hpcg, &em);
        let hdmr = m.energy(
            MemoryDesign::HeteroDmr { margin_mts: 800 },
            Suite::Hpcg,
            &em,
        );
        assert!(
            hdmr.epi_nj() < base.epi_nj(),
            "EPI should improve: {} vs {}",
            hdmr.epi_nj(),
            base.epi_nj()
        );
    }
}
