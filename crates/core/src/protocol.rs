//! The functional Hetero-DMR protocol engine.
//!
//! This module executes the paper's Figure 8 protocol against real
//! state: a [`dram::Channel`] (frequency-transition and self-refresh
//! machinery), an [`ecc::BlockCodec`] (Bamboo-style detection-only /
//! detect+correct decodes), the [`crate::replication`] manager, and
//! the [`crate::governor`] SDC budget. Block contents are held
//! byte-for-byte, so the central reliability claim is *executable*:
//! whatever error model corrupts the unsafely fast copies, every read
//! returns the data that was written.
//!
//! Timing fidelity (queueing, bandwidth, batching) lives in `memsim`;
//! this engine models protocol-visible latencies only (the 1 µs
//! frequency transitions and self-refresh exits).

use crate::faults::PermanentFaultTracker;
use crate::governor::{EpochGovernor, GovernorState};
use crate::replication::{ReplicationAction, ReplicationManager};
use dram::channel::{Channel, ChannelConfig};
use dram::module::ModuleId;
use dram::Picos;
use ecc::bamboo::{BlockCodec, DetectOutcome, EccBlock, BLOCK_DATA_BYTES};
use ecc::inject::{inject, ErrorModel};
use ecc::tally::ErrorTally;
use rand::Rng;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use telemetry::series::{Series, SeriesStore};
use telemetry::trace::{kv, Clock, Tracer};
use telemetry::{Counter, Scope};

/// The operating state of a Hetero-DMR channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpMode {
    /// No replication (memory > 50 % used): conventional operation at
    /// specification.
    Conventional,
    /// Replicated, channel unsafely fast, originals in self-refresh;
    /// reads served by copies.
    ReadMode,
    /// Replicated, channel at specification; broadcast writes update
    /// originals and copies together.
    WriteMode,
    /// Replicated but the epoch error budget is exhausted: everything
    /// at specification until the next epoch.
    Degraded,
}

/// How a read was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Clean copy read at the unsafely fast setting.
    FastClean,
    /// The copy was corrupt; the block was recovered from the in-spec
    /// original and the copy repaired in place.
    Recovered,
    /// Served from the originals at specification (conventional /
    /// write-mode / degraded operation).
    Safe,
}

/// Protocol-level errors (caller misuse, not memory errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// The operation is not legal in the current [`OpMode`].
    WrongMode {
        /// The mode the channel was in.
        current: OpMode,
    },
    /// An unrecoverable original-block error (beyond ECC correction) —
    /// the same event that would take down a conventional system.
    UncorrectableOriginal {
        /// The affected block.
        block: u64,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::WrongMode { current } => {
                write!(f, "operation illegal in {current:?}")
            }
            ProtocolError::UncorrectableOriginal { block } => {
                write!(f, "uncorrectable error in original block {block}")
            }
        }
    }
}

impl Error for ProtocolError {}

/// Live protocol metric handles; [`ProtocolStats`] is materialized
/// from these on demand (single source of truth, no parallel
/// bookkeeping). Detached until
/// [`HeteroDmrChannel::attach_telemetry`] binds them.
#[derive(Debug, Default)]
struct ProtocolMetrics {
    fast_reads: Counter,
    recoveries: Counter,
    safe_reads: Counter,
    writes: Counter,
    remaps: Counter,
    mode_switches: Counter,
}

impl ProtocolMetrics {
    fn bind(&mut self, scope: &Scope) {
        let rebind = |name: &str, old: &Counter| {
            let fresh = scope.counter(name);
            fresh.add(old.get());
            fresh
        };
        self.fast_reads = rebind("fast_reads", &self.fast_reads);
        self.recoveries = rebind("recoveries", &self.recoveries);
        self.safe_reads = rebind("safe_reads", &self.safe_reads);
        self.writes = rebind("writes", &self.writes);
        self.remaps = rebind("remaps", &self.remaps);
        self.mode_switches = rebind("mode_switches", &self.mode_switches);
    }

    fn stats(&self) -> ProtocolStats {
        ProtocolStats {
            fast_reads: self.fast_reads.get(),
            recoveries: self.recoveries.get(),
            safe_reads: self.safe_reads.get(),
            writes: self.writes.get(),
            remaps: self.remaps.get(),
        }
    }
}

/// Protocol statistics — a snapshot view over the live metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Reads served fast and clean.
    pub fast_reads: u64,
    /// Reads that needed recovery from the original.
    pub recoveries: u64,
    /// Reads served at specification.
    pub safe_reads: u64,
    /// Broadcast writes performed.
    pub writes: u64,
    /// Module-role remaps after permanent-fault detection
    /// (Section III-E).
    pub remaps: u64,
}

/// One channel under the Hetero-DMR protocol.
#[derive(Debug)]
pub struct HeteroDmrChannel {
    channel: Channel,
    codec: BlockCodec,
    governor: EpochGovernor,
    replication: ReplicationManager,
    originals: HashMap<u64, EccBlock>,
    copies: HashMap<u64, EccBlock>,
    mode: OpMode,
    metrics: ProtocolMetrics,
    /// CE/UE/SDC accounting for every error the channel sees.
    tally: ErrorTally,
    /// Permanent-fault detection for the copy-holding module.
    fault_tracker: PermanentFaultTracker,
    /// Block offsets of the *physically faulty* locations in the
    /// module currently holding copies (simulated stuck cells).
    faulty_copy_blocks: HashSet<u64>,
    /// Whether module roles have been swapped to move copies off the
    /// faulty module.
    roles_swapped: bool,
    /// Causal trace sink (see [`HeteroDmrChannel::attach_trace`]).
    trace: Option<Tracer>,
    /// Health-plane rollups (see [`HeteroDmrChannel::attach_series`]).
    series: Option<EccSeries>,
}

/// Windowed sim-time rollups of the channel's ECC event stream.
#[derive(Debug, Clone)]
struct EccSeries {
    /// Detection-only decode failures per window.
    detect: Series,
    /// Re-read recovery latency sketch (picoseconds per recovery).
    reread_ps: Series,
    /// Budget-exhausted down-bins per window.
    down_bin: Series,
}

impl HeteroDmrChannel {
    /// Creates a conventional (unreplicated) channel with the paper's
    /// default configuration and `blocks_per_module` of software-
    /// visible capacity per module.
    pub fn new(blocks_per_module: u64) -> HeteroDmrChannel {
        HeteroDmrChannel::with_governor(blocks_per_module, EpochGovernor::default())
    }

    /// Creates a channel with a custom SDC governor (small budgets are
    /// useful in tests and ablations).
    pub fn with_governor(blocks_per_module: u64, governor: EpochGovernor) -> HeteroDmrChannel {
        let config = ChannelConfig::paper_default();
        let modules = config.modules;
        HeteroDmrChannel {
            channel: Channel::new(config),
            codec: BlockCodec::new(),
            governor,
            replication: ReplicationManager::new(modules, blocks_per_module),
            originals: HashMap::new(),
            copies: HashMap::new(),
            mode: OpMode::Conventional,
            metrics: ProtocolMetrics::default(),
            tally: ErrorTally::default(),
            fault_tracker: PermanentFaultTracker::default(),
            faulty_copy_blocks: HashSet::new(),
            roles_swapped: false,
            trace: None,
            series: None,
        }
    }

    /// Current operating mode.
    pub fn mode(&self) -> OpMode {
        self.mode
    }

    /// Protocol statistics so far, materialized from the live metrics.
    pub fn stats(&self) -> ProtocolStats {
        self.metrics.stats()
    }

    /// Rebinds this channel's protocol metrics (and its governor's,
    /// under `governor`) into a registry scope.
    pub fn attach_telemetry(&mut self, scope: &Scope) {
        self.metrics.bind(scope);
        self.governor.attach_telemetry(&scope.scope("governor"));
        self.tally.bind(&scope.scope("ecc"));
    }

    /// The channel's CE/UE/SDC error ledgers.
    pub fn tally(&self) -> &ErrorTally {
        &self.tally
    }

    /// Records protocol causality into `tracer`, all on the
    /// simulation-picosecond clock: `mode.read_enter` / `mode.read_exit`
    /// instants at every Figure 8 transition, an `ecc.detect` instant
    /// when a fast read fails the detection-only decode, an
    /// `ecc.reread` span (parented to its detect instant) covering the
    /// slow-down → re-read → repair → resume chain, and a `down_bin`
    /// instant when the governor exhausts the epoch budget.
    pub fn attach_trace(&mut self, tracer: &Tracer) {
        self.trace = Some(tracer.clone());
    }

    /// Streams the channel's ECC events into sim-time windowed series
    /// under `prefix`: `<prefix>.ecc.detect` (detections per window),
    /// `<prefix>.ecc.reread_ps` (re-read recovery latency sketch, one
    /// sample per recovery), and `<prefix>.ecc.down_bin` (budget
    /// exhaustions per window) — all on the simulation-picosecond
    /// clock with `width_ps`-wide windows, the same timestamps the
    /// trace spans carry.
    pub fn attach_series(&mut self, store: &SeriesStore, prefix: &str, width_ps: u64) {
        self.series = Some(EccSeries {
            detect: store.series(&format!("{prefix}.ecc.detect"), width_ps),
            reread_ps: store.series(&format!("{prefix}.ecc.reread_ps"), width_ps),
            down_bin: store.series(&format!("{prefix}.ecc.down_bin"), width_ps),
        });
    }

    /// Switches the operating mode, tallying actual transitions.
    fn set_mode(&mut self, mode: OpMode) {
        if self.mode != mode {
            self.metrics.mode_switches.inc();
        }
        self.mode = mode;
    }

    /// The governor (error budget) state.
    pub fn governor(&self) -> &EpochGovernor {
        &self.governor
    }

    /// Completed channel frequency transitions.
    pub fn transitions(&self) -> u64 {
        self.channel.transitions()
    }

    /// Whether a permanent fault forced the module roles to swap.
    pub fn roles_swapped(&self) -> bool {
        self.roles_swapped
    }

    /// Injects a permanent (stuck-cell, ECC-correctable) fault into
    /// the copy-holding module at `offset`: every fast read of that
    /// block returns corrupted data until the roles are remapped.
    pub fn inject_persistent_copy_fault(&mut self, offset: u64) {
        self.faulty_copy_blocks.insert(offset);
    }

    /// Section III-E's remedy: move the copies to the healthy module
    /// and park the originals on the faulty one, where the (single-
    /// byte, correctable) fault is absorbed by conventional ECC on the
    /// rare in-spec reads instead of triggering frequency transitions
    /// on every fast read.
    fn swap_roles(&mut self) {
        std::mem::swap(&mut self.originals, &mut self.copies);
        self.roles_swapped = true;
        self.metrics.remaps.inc();
        self.fault_tracker.reset();
    }

    fn address_of(block: u64) -> u64 {
        block * BLOCK_DATA_BYTES as u64
    }

    fn stored(map: &HashMap<u64, EccBlock>, codec: &BlockCodec, block: u64) -> EccBlock {
        map.get(&block)
            .copied()
            .unwrap_or_else(|| codec.encode(Self::address_of(block), &[0u8; BLOCK_DATA_BYTES]))
    }

    /// Reports the channel's software memory demand. Crossing the 50 %
    /// boundary activates or deactivates replication; activation
    /// copies every block and enters read mode (returning the time the
    /// channel is fast), deactivation reverts to conventional
    /// operation.
    pub fn set_used_blocks(&mut self, used: u64, now: Picos) -> Picos {
        match self.replication.set_used_blocks(used) {
            ReplicationAction::Activate => {
                // Populate copies from originals (done at spec, before
                // heterogeneous operation starts).
                self.copies = self.originals.clone();
                self.enter_read_mode(now)
            }
            ReplicationAction::Deactivate => {
                self.copies.clear();
                if self.mode == OpMode::ReadMode {
                    let t = self.leave_read_mode(now);
                    self.set_mode(OpMode::Conventional);
                    t
                } else {
                    self.set_mode(OpMode::Conventional);
                    now
                }
            }
            ReplicationAction::None => now,
        }
    }

    /// Transitions into unsafely fast read mode (Figure 8b): originals
    /// precharged and put into self-refresh, channel clocked up.
    /// Returns when the channel is usable.
    fn enter_read_mode(&mut self, now: Picos) -> Picos {
        let timing = *match self.channel.state_at(now) {
            dram::channel::FrequencyState::Safe => &self.channel.config().safe_timing,
            _ => &self.channel.config().fast_timing,
        };
        let originals = self
            .channel
            .module_mut(ModuleId(0))
            .expect("module 0 exists");
        if !originals.in_self_refresh() {
            let done = originals.precharge_all(now, &timing);
            originals
                .enter_self_refresh(done)
                .expect("precharged module accepts self-refresh");
        }
        let ready = self
            .channel
            .begin_speed_up(now)
            .expect("safe channel can speed up");
        self.set_mode(OpMode::ReadMode);
        if let Some(tracer) = &self.trace {
            tracer.instant(
                "mode.read_enter",
                "protocol",
                Clock::SimPs,
                ready,
                Vec::new(),
            );
        }
        ready
    }

    /// Leaves read mode: channel back to spec, originals out of
    /// self-refresh. Returns when both are ready.
    fn leave_read_mode(&mut self, now: Picos) -> Picos {
        let until = self
            .channel
            .begin_slow_down(now)
            .expect("fast channel can slow down");
        let timing = self.channel.config().safe_timing;
        let originals = self
            .channel
            .module_mut(ModuleId(0))
            .expect("module 0 exists");
        let ready = originals
            .exit_self_refresh(until, &timing)
            .expect("originals were in self-refresh");
        let safe_at = ready.max(until);
        if let Some(tracer) = &self.trace {
            tracer.instant(
                "mode.read_exit",
                "protocol",
                Clock::SimPs,
                safe_at,
                Vec::new(),
            );
        }
        safe_at
    }

    /// Enters write mode (Figure 8a). Legal from read mode; a no-op
    /// when already safe.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::WrongMode`] when replication is inactive.
    pub fn begin_write_mode(&mut self, now: Picos) -> Result<Picos, ProtocolError> {
        match self.mode {
            OpMode::ReadMode => {
                let ready = self.leave_read_mode(now);
                self.set_mode(OpMode::WriteMode);
                Ok(ready)
            }
            OpMode::WriteMode | OpMode::Degraded => Ok(now),
            OpMode::Conventional => Err(ProtocolError::WrongMode { current: self.mode }),
        }
    }

    /// Returns to read mode after a write batch (Figure 8b).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::WrongMode`] when not in write mode, or when
    /// degraded (the governor keeps the channel safe until the next
    /// epoch — use [`HeteroDmrChannel::try_resume`]).
    pub fn begin_read_mode(&mut self, now: Picos) -> Result<Picos, ProtocolError> {
        match self.mode {
            OpMode::WriteMode => Ok(self.enter_read_mode(now)),
            current => Err(ProtocolError::WrongMode { current }),
        }
    }

    /// After a governor fallback, checks whether a new epoch has begun
    /// and resumes heterogeneous operation if so. Returns `Some(ready
    /// time)` when resumed.
    pub fn try_resume(&mut self, now: Picos) -> Option<Picos> {
        if self.mode == OpMode::Degraded && self.governor.state(now) == GovernorState::Exploiting {
            Some(self.enter_read_mode(now))
        } else {
            None
        }
    }

    /// Writes a block. In write mode this is a broadcast update of
    /// original and copy in one transaction; in conventional/degraded
    /// operation it writes the original (and keeps the copy fresh when
    /// one exists).
    ///
    /// # Errors
    ///
    /// [`ProtocolError::WrongMode`] in read mode — Hetero-DMR never
    /// writes at the unsafely fast setting; the caller must batch
    /// writes behind [`HeteroDmrChannel::begin_write_mode`].
    pub fn write(
        &mut self,
        block: u64,
        data: &[u8; BLOCK_DATA_BYTES],
        _now: Picos,
    ) -> Result<(), ProtocolError> {
        if self.mode == OpMode::ReadMode {
            return Err(ProtocolError::WrongMode { current: self.mode });
        }
        let encoded = self.codec.encode(Self::address_of(block), data);
        self.originals.insert(block, encoded);
        if self.mode != OpMode::Conventional {
            // Same bus transaction updates the copy at the same offset
            // (identical data AND identical ECC bytes — Section III-C).
            let offset = self.replication.copy_offset(block);
            self.copies.insert(offset, encoded);
        }
        self.metrics.writes.inc();
        Ok(())
    }

    /// Reads a block, optionally injecting an error of class `model`
    /// into the copy access (simulating out-of-spec corruption).
    ///
    /// Returns the data, how it was obtained, and the completion time.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UncorrectableOriginal`] only if the *original*
    /// suffered an unrecoverable natural error — the same failure a
    /// conventional system would report.
    pub fn read<R: Rng + ?Sized>(
        &mut self,
        block: u64,
        now: Picos,
        injection: Option<(&mut R, ErrorModel)>,
    ) -> Result<([u8; BLOCK_DATA_BYTES], ReadOutcome, Picos), ProtocolError> {
        let addr = Self::address_of(block);
        if self.mode != OpMode::ReadMode {
            // Safe path: read the original with detect+correct. After a
            // role swap the permanent fault sits here, correctable by
            // conventional ECC.
            let mut original = Self::stored(&self.originals, &self.codec, block);
            if self.roles_swapped && self.faulty_copy_blocks.contains(&block) {
                original.data[0] ^= 0x01;
            }
            let fixed = self.codec.correct(addr, &mut original).map_err(|_| {
                self.tally.note_ue();
                ProtocolError::UncorrectableOriginal { block }
            })?;
            if fixed > 0 {
                self.tally.note_ce();
            }
            self.originals.insert(block, original);
            self.metrics.safe_reads.inc();
            return Ok((original.data, ReadOutcome::Safe, now));
        }

        // Fast path: read the copy at the unsafely fast setting.
        let offset = self.replication.copy_offset(block);
        let mut observed = Self::stored(&self.copies, &self.codec, offset);
        // A permanent fault in the copy-holding module corrupts every
        // fast read of its block (until roles are remapped).
        if !self.roles_swapped && self.faulty_copy_blocks.contains(&offset) {
            observed.data[0] ^= 0x01;
        }
        let mut requested_addr = addr;
        let mut injected = false;
        if let Some((rng, model)) = injection {
            self.tally.note_injected(model);
            injected = true;
            let inj = inject(rng, model, addr, &mut observed);
            if inj.effective_address != addr {
                // Address/command error: the device returned some other
                // location's content.
                let other_block = inj.effective_address / BLOCK_DATA_BYTES as u64;
                observed = Self::stored(
                    &self.copies,
                    &self.codec,
                    other_block % self.replication.capacity_blocks().max(1),
                );
                requested_addr = addr; // the CPU still checks against what it asked for
            }
        }
        let _ = requested_addr;

        match self.codec.detect(addr, &observed) {
            DetectOutcome::Clean => {
                if injected {
                    // An injected error passed the detection-only
                    // decode: the 2⁻⁶⁴ silent escape, made countable.
                    self.tally.note_sdc();
                }
                self.metrics.fast_reads.inc();
                self.fault_tracker.record_clean(block);
                Ok((observed.data, ReadOutcome::FastClean, now))
            }
            DetectOutcome::Detected => {
                if let Some(series) = &self.series {
                    series.detect.record(now, 1);
                }
                let detect = self.trace.as_ref().map(|t| {
                    t.instant(
                        "ecc.detect",
                        "protocol",
                        Clock::SimPs,
                        now,
                        vec![kv("block", block), kv("injected", injected)],
                    )
                });
                let result = self.recover(block, now, detect);
                if result.is_ok() && self.fault_tracker.record_recovery(block) {
                    self.swap_roles();
                }
                result
            }
        }
    }

    /// Figure 8c: slow the channel to specification, read the
    /// original reliably, overwrite the corrupted copy, and speed back
    /// up (unless the governor has exhausted the epoch budget).
    fn recover(
        &mut self,
        block: u64,
        now: Picos,
        cause: Option<u64>,
    ) -> Result<([u8; BLOCK_DATA_BYTES], ReadOutcome, Picos), ProtocolError> {
        let addr = Self::address_of(block);
        let safe_at = self.leave_read_mode(now);
        self.set_mode(OpMode::WriteMode);

        let mut original = Self::stored(&self.originals, &self.codec, block);
        if self.roles_swapped && self.faulty_copy_blocks.contains(&block) {
            original.data[0] ^= 0x01;
        }
        if self.codec.correct(addr, &mut original).is_err() {
            self.tally.note_ue();
            if let Some(series) = &self.series {
                series.reread_ps.record(now, safe_at.saturating_sub(now));
            }
            if let Some(tracer) = &self.trace {
                tracer.complete_with_parent(
                    "ecc.reread",
                    "protocol",
                    Clock::SimPs,
                    now,
                    safe_at,
                    cause,
                    vec![kv("block", block), kv("outcome", "uncorrectable")],
                );
            }
            return Err(ProtocolError::UncorrectableOriginal { block });
        }
        self.originals.insert(block, original);
        // Overwrite (repair) the corrupted copy with the good value.
        let offset = self.replication.copy_offset(block);
        self.copies.insert(offset, original);

        // The detected copy error was made good from the original:
        // a corrected error in the system-level ledger.
        self.tally.note_ce();
        self.metrics.recoveries.inc();
        let end = match self.governor.record_error(safe_at) {
            GovernorState::Exploiting => {
                let ready = self.enter_read_mode(safe_at);
                self.set_mode(OpMode::ReadMode);
                ready
            }
            GovernorState::FallBack => {
                self.set_mode(OpMode::Degraded);
                safe_at
            }
        };
        if let Some(series) = &self.series {
            series.reread_ps.record(now, end.saturating_sub(now));
            if self.mode == OpMode::Degraded {
                series.down_bin.record(safe_at, 1);
            }
        }
        if let Some(tracer) = &self.trace {
            let outcome = match self.mode {
                OpMode::ReadMode => "resumed",
                OpMode::Degraded => "degraded",
                _ => "write_mode",
            };
            let reread = tracer.complete_with_parent(
                "ecc.reread",
                "protocol",
                Clock::SimPs,
                now,
                end,
                cause,
                vec![kv("block", block), kv("outcome", outcome)],
            );
            if self.mode == OpMode::Degraded {
                // The governor exhausted the epoch's error budget: the
                // channel stays down-binned (at specification) until
                // the next epoch.
                tracer.instant_with_parent(
                    "down_bin",
                    "protocol",
                    Clock::SimPs,
                    safe_at,
                    Some(reread),
                    vec![kv("block", block)],
                );
            }
        }
        Ok((original.data, ReadOutcome::Recovered, end))
    }

    /// Injects a *natural* (in-spec) error into an original block —
    /// the kind conventional ECC handles — flipping the given
    /// `(byte index, xor mask)` pairs.
    pub fn corrupt_original(&mut self, block: u64, flips: &[(usize, u8)]) {
        let mut b = Self::stored(&self.originals, &self.codec, block);
        for &(idx, mask) in flips {
            if idx < BLOCK_DATA_BYTES {
                b.data[idx] ^= mask;
            } else {
                b.ecc[idx - BLOCK_DATA_BYTES] ^= mask;
            }
        }
        self.originals.insert(block, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const BLOCKS: u64 = 1 << 20;

    /// A channel with replication active (25 % utilization).
    fn replicated() -> (HeteroDmrChannel, Picos) {
        let mut ch = HeteroDmrChannel::new(BLOCKS);
        let t = ch.set_used_blocks(BLOCKS / 2, 0);
        (ch, t)
    }

    fn data(tag: u8) -> [u8; 64] {
        [tag; 64]
    }

    #[test]
    fn starts_conventional_reads_safely() {
        let mut ch = HeteroDmrChannel::new(BLOCKS);
        assert_eq!(ch.mode(), OpMode::Conventional);
        ch.write(5, &data(0xAA), 0).unwrap();
        let (d, outcome, _) = ch.read::<StdRng>(5, 10, None).unwrap();
        assert_eq!(d, data(0xAA));
        assert_eq!(outcome, ReadOutcome::Safe);
    }

    #[test]
    fn activation_enters_read_mode_with_fast_clean_reads() {
        let mut ch = HeteroDmrChannel::new(BLOCKS);
        ch.write(7, &data(0x11), 0).unwrap();
        let ready = ch.set_used_blocks(BLOCKS / 4, 100);
        assert_eq!(ch.mode(), OpMode::ReadMode);
        assert!(ready >= 100 + dram::channel::FREQUENCY_TRANSITION_PS);
        let (d, outcome, _) = ch.read::<StdRng>(7, ready, None).unwrap();
        assert_eq!(d, data(0x11));
        assert_eq!(outcome, ReadOutcome::FastClean);
        assert_eq!(ch.stats().fast_reads, 1);
    }

    #[test]
    fn writes_forbidden_in_read_mode() {
        let (mut ch, t) = replicated();
        let err = ch.write(3, &data(1), t).unwrap_err();
        assert!(matches!(err, ProtocolError::WrongMode { .. }));
    }

    #[test]
    fn write_mode_round_trip_updates_copy() {
        let (mut ch, t) = replicated();
        let w = ch.begin_write_mode(t).unwrap();
        assert_eq!(ch.mode(), OpMode::WriteMode);
        ch.write(9, &data(0x42), w).unwrap();
        let r = ch.begin_read_mode(w + 10).unwrap();
        // The copy (fast path) has the new value.
        let (d, outcome, _) = ch.read::<StdRng>(9, r, None).unwrap();
        assert_eq!(d, data(0x42));
        assert_eq!(outcome, ReadOutcome::FastClean);
    }

    #[test]
    fn every_error_model_recovers_to_written_data() {
        // The paper's central claim, executed: no matter what
        // corruption hits the unsafely fast copies, reads return the
        // written data.
        let mut rng = StdRng::seed_from_u64(77);
        for model in ErrorModel::ALL {
            let (mut ch, mut t) = replicated();
            let w = ch.begin_write_mode(t).unwrap();
            ch.write(13, &data(0x5C), w).unwrap();
            t = ch.begin_read_mode(w).unwrap();
            let (d, outcome, end) = ch.read(13, t, Some((&mut rng, model))).unwrap();
            assert_eq!(d, data(0x5C), "{model:?} corrupted the result");
            assert_eq!(outcome, ReadOutcome::Recovered, "{model:?}");
            assert!(end > t, "recovery costs transitions");
            // Channel resumed fast operation; the copy is repaired.
            assert_eq!(ch.mode(), OpMode::ReadMode);
            let (d2, o2, _) = ch.read::<StdRng>(13, end, None).unwrap();
            assert_eq!(d2, data(0x5C));
            assert_eq!(o2, ReadOutcome::FastClean, "copy was repaired in place");
        }
    }

    #[test]
    fn trace_chains_detect_to_reread_and_marks_down_bin() {
        use telemetry::trace::{check_nesting, Ph, Tracer};
        let mut rng = StdRng::seed_from_u64(5);
        let mut ch = HeteroDmrChannel::with_governor(BLOCKS, EpochGovernor::new(1));
        let tracer = Tracer::new();
        ch.attach_trace(&tracer);
        let t = ch.set_used_blocks(BLOCKS / 4, 0);
        // One erroring read exhausts the single-error budget, so the
        // recovery chain ends in a down-bin.
        let (_, outcome, end) = ch
            .read(1, t, Some((&mut rng, ErrorModel::SingleByte)))
            .unwrap();
        assert_eq!(outcome, ReadOutcome::Recovered);
        assert_eq!(ch.mode(), OpMode::Degraded);
        let events = tracer.take();
        check_nesting(&events).unwrap();
        let find = |n: &str| events.iter().find(|e| e.name == n).unwrap();
        let detect = find("ecc.detect");
        let reread = find("ecc.reread");
        let down_bin = find("down_bin");
        assert_eq!(detect.ph, Ph::Instant);
        assert_eq!(detect.start, t);
        assert_eq!(reread.parent, Some(detect.id), "reread caused by detect");
        assert_eq!((reread.start, reread.end), (t, end));
        assert_eq!(down_bin.parent, Some(reread.id));
        assert!(events.iter().any(|e| e.name == "mode.read_enter"));
        assert!(events.iter().any(|e| e.name == "mode.read_exit"));
        assert!(reread
            .args
            .iter()
            .any(|(k, v)| k == "outcome" && v == "degraded"));
    }

    #[test]
    fn series_tap_mirrors_the_ecc_event_stream() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ch = HeteroDmrChannel::with_governor(BLOCKS, EpochGovernor::new(1));
        let store = SeriesStore::new();
        // One-millisecond windows on the picosecond clock.
        ch.attach_series(&store, "chan0", 1_000_000_000);
        let t = ch.set_used_blocks(BLOCKS / 4, 0);
        let (_, outcome, end) = ch
            .read(1, t, Some((&mut rng, ErrorModel::SingleByte)))
            .unwrap();
        assert_eq!(outcome, ReadOutcome::Recovered);
        assert_eq!(ch.mode(), OpMode::Degraded);
        let snap = store.snapshot();
        let total = |name: &str| snap.get(name).map_or(0, |e| e.total_count());
        assert_eq!(total("chan0.ecc.detect"), 1);
        assert_eq!(total("chan0.ecc.down_bin"), 1);
        let reread = snap.get("chan0.ecc.reread_ps").unwrap();
        assert_eq!(reread.total_count(), 1);
        assert_eq!(reread.windows[0].1.sum, end - t, "latency sample in ps");
        // Clean fast reads contribute nothing.
        ch.read::<StdRng>(1, t + crate::governor::EPOCH_PS, None)
            .unwrap();
        assert_eq!(total("chan0.ecc.detect"), 1);
    }

    #[test]
    fn recovery_costs_two_transitions() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut ch, t) = replicated();
        let before = ch.transitions();
        let (_, _, _end) = ch
            .read(21, t, Some((&mut rng, ErrorModel::FullBlock)))
            .unwrap();
        // Down to spec + back up.
        assert_eq!(ch.transitions(), before + 2);
    }

    #[test]
    fn governor_exhaustion_degrades_until_next_epoch() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ch = HeteroDmrChannel::with_governor(BLOCKS, EpochGovernor::new(2));
        let t = ch.set_used_blocks(BLOCKS / 4, 0);
        // Two erroring reads exhaust the budget.
        let (_, _, t1) = ch
            .read(1, t, Some((&mut rng, ErrorModel::SingleByte)))
            .unwrap();
        let (_, _, t2) = ch
            .read(2, t1, Some((&mut rng, ErrorModel::SingleByte)))
            .unwrap();
        assert_eq!(ch.mode(), OpMode::Degraded);
        // Degraded reads are safe and correct.
        let (d, outcome, _) = ch.read::<StdRng>(1, t2, None).unwrap();
        assert_eq!(outcome, ReadOutcome::Safe);
        assert_eq!(d, [0u8; 64]);
        // Next epoch: resumes.
        let resumed = ch.try_resume(crate::governor::EPOCH_PS + t2);
        assert!(resumed.is_some());
        assert_eq!(ch.mode(), OpMode::ReadMode);
    }

    #[test]
    fn natural_original_errors_are_corrected() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mut ch, t) = replicated();
        let w = ch.begin_write_mode(t).unwrap();
        ch.write(30, &data(0x77), w).unwrap();
        // A ≤4-byte natural fault hits the original…
        ch.corrupt_original(30, &[(3, 0x10), (40, 0x02)]);
        let t = ch.begin_read_mode(w).unwrap();
        // …and the copy gets an out-of-spec error at the same time.
        let (d, outcome, _) = ch
            .read(30, t, Some((&mut rng, ErrorModel::ByteBurst(6))))
            .unwrap();
        assert_eq!(d, data(0x77), "recovery corrected the natural error too");
        assert_eq!(outcome, ReadOutcome::Recovered);
    }

    #[test]
    fn uncorrectable_original_is_reported_not_hidden() {
        let mut rng = StdRng::seed_from_u64(11);
        let (mut ch, t) = replicated();
        // Five corrupted bytes exceed RS-8 correction in the original.
        ch.corrupt_original(40, &[(0, 1), (10, 2), (20, 3), (30, 4), (40, 5)]);
        let err = ch
            .read(40, t, Some((&mut rng, ErrorModel::FullBlock)))
            .unwrap_err();
        assert_eq!(err, ProtocolError::UncorrectableOriginal { block: 40 });
    }

    #[test]
    fn deactivation_reverts_to_conventional() {
        let (mut ch, t) = replicated();
        let done = ch.set_used_blocks(BLOCKS * 3 / 2, t);
        assert_eq!(ch.mode(), OpMode::Conventional);
        let (_, outcome, _) = ch.read::<StdRng>(0, done, None).unwrap();
        assert_eq!(outcome, ReadOutcome::Safe);
    }

    #[test]
    fn permanent_fault_triggers_role_remap() {
        // Section III-E: a stuck cell in the copy module causes
        // recovery (and two frequency transitions) on EVERY fast read
        // of that block — until the roles are remapped, after which
        // reads are fast and clean again and the transitions stop.
        let (mut ch, mut t) = replicated();
        let w = ch.begin_write_mode(t).unwrap();
        ch.write(5, &data(0x66), w).unwrap();
        t = ch.begin_read_mode(w).unwrap();
        ch.inject_persistent_copy_fault(5);

        let mut outcomes = Vec::new();
        for _ in 0..6 {
            let (d, outcome, end) = ch.read::<StdRng>(5, t, None).unwrap();
            assert_eq!(d, data(0x66), "data always intact");
            outcomes.push(outcome);
            t = end;
        }
        // Three recoveries (the tracker's default threshold), then a
        // remap makes the remaining reads fast and clean.
        assert!(ch.roles_swapped(), "roles must have been remapped");
        assert_eq!(ch.stats().remaps, 1);
        assert_eq!(
            outcomes,
            vec![
                ReadOutcome::Recovered,
                ReadOutcome::Recovered,
                ReadOutcome::Recovered,
                ReadOutcome::FastClean,
                ReadOutcome::FastClean,
                ReadOutcome::FastClean,
            ]
        );
        let transitions_after_remap = ch.transitions();
        let (_, o, end) = ch.read::<StdRng>(5, t, None).unwrap();
        assert_eq!(o, ReadOutcome::FastClean);
        assert_eq!(
            ch.transitions(),
            transitions_after_remap,
            "no more transitions once remapped"
        );
        // The fault now sits under the originals: a safe read still
        // returns correct data (conventional ECC absorbs it).
        let t2 = ch.begin_write_mode(end).unwrap();
        let (d, o, _) = ch.read::<StdRng>(5, t2, None).unwrap();
        assert_eq!(d, data(0x66));
        assert_eq!(o, ReadOutcome::Safe);
    }

    #[test]
    fn transient_errors_do_not_remap() {
        let mut rng = StdRng::seed_from_u64(21);
        let (mut ch, mut t) = replicated();
        for block in 0..10u64 {
            let (_, _, end) = ch
                .read(block, t, Some((&mut rng, ErrorModel::SingleByte)))
                .unwrap();
            t = end;
        }
        assert!(!ch.roles_swapped(), "distinct transient errors never remap");
        assert_eq!(ch.stats().remaps, 0);
    }

    #[test]
    fn unwritten_blocks_read_as_zeros_everywhere() {
        let (mut ch, t) = replicated();
        let (d, outcome, _) = ch.read::<StdRng>(999, t, None).unwrap();
        assert_eq!(d, [0u8; 64]);
        assert_eq!(outcome, ReadOutcome::FastClean);
    }
}
