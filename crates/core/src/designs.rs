//! The evaluated memory designs as [`memsim::ChannelMode`] builders.

use dram::timing::MemorySetting;
use dram::PS_PER_US;
use memsim::config::{ChannelMode, HierarchyConfig};

/// A memory-system design from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryDesign {
    /// Conventional system at manufacturer specification
    /// (with the fairness writeback cache).
    CommercialBaseline,
    /// Figure 5: exploit latency margins only (cherry-picked modules,
    /// no reliability protection).
    ExploitLatency,
    /// Figure 5: exploit frequency margin only.
    ExploitFrequency,
    /// Figure 5: exploit frequency + latency margins.
    ExploitFreqLat,
    /// FMR [MICRO'19]: free-memory replication for latency only.
    Fmr,
    /// Hetero-DMR with the given node-level frequency margin (MT/s).
    HeteroDmr {
        /// Node-level frequency margin in MT/s (800 or 600 in Fig 12).
        margin_mts: u32,
    },
    /// Hetero-DMR applied on top of FMR (two copies below 25 %
    /// utilization).
    HeteroDmrFmr {
        /// Node-level frequency margin in MT/s.
        margin_mts: u32,
    },
    /// The Section III-A strawman: copies in *different channels*,
    /// half the channels fast, duplicated writes.
    NaiveDmr {
        /// Frequency margin of the fast half, MT/s.
        margin_mts: u32,
    },
    /// Hetero-DMR whose overclock is chosen online by the closed-loop
    /// [`crate::adaptive`] governor instead of a one-shot stress test.
    /// The channel mode below is the *envelope* (maximum) setting; the
    /// per-epoch operating point walks between specification and this
    /// bound one 200 MT/s bin at a time.
    AdaptiveDmr {
        /// Stress-test-derived safety envelope in MT/s: the governor
        /// never strengthens past this margin.
        max_margin_mts: u32,
    },
}

impl MemoryDesign {
    /// Short display name.
    pub fn name(self) -> String {
        match self {
            MemoryDesign::CommercialBaseline => "Commercial Baseline".into(),
            MemoryDesign::ExploitLatency => "Exploit Latency Margin".into(),
            MemoryDesign::ExploitFrequency => "Exploit Frequency Margin".into(),
            MemoryDesign::ExploitFreqLat => "Exploit Freq+Lat Margins".into(),
            MemoryDesign::Fmr => "FMR".into(),
            MemoryDesign::HeteroDmr { margin_mts } => {
                format!("Hetero-DMR@{:.1}GT/s", margin_mts as f64 / 1000.0)
            }
            MemoryDesign::HeteroDmrFmr { margin_mts } => {
                format!("Hetero-DMR+FMR@{:.1}GT/s", margin_mts as f64 / 1000.0)
            }
            MemoryDesign::NaiveDmr { margin_mts } => {
                format!(
                    "Naive channel-split DMR@{:.1}GT/s",
                    margin_mts as f64 / 1000.0
                )
            }
            MemoryDesign::AdaptiveDmr { max_margin_mts } => {
                format!("Adaptive-DMR<=+{:.1}GT/s", max_margin_mts as f64 / 1000.0)
            }
        }
    }

    /// Whether the design relies on free memory (and therefore falls
    /// back to the baseline when utilization crosses its threshold).
    pub fn free_memory_threshold(self) -> Option<f64> {
        match self {
            MemoryDesign::Fmr
            | MemoryDesign::HeteroDmr { .. }
            | MemoryDesign::NaiveDmr { .. }
            | MemoryDesign::AdaptiveDmr { .. } => Some(0.5),
            // Two copies need ≥ 3/4 free… the paper runs H+F below
            // 25 % and regresses it to plain Hetero-DMR in [25, 50).
            MemoryDesign::HeteroDmrFmr { .. } => Some(0.25),
            _ => None,
        }
    }

    /// The per-channel behaviour of this design (uniform across
    /// channels; the naive strawman additionally needs
    /// [`MemoryDesign::per_channel_modes`]).
    pub fn channel_mode(self) -> ChannelMode {
        let built = match self {
            MemoryDesign::CommercialBaseline => Ok(ChannelMode::commercial_baseline()),
            MemoryDesign::ExploitLatency => Ok(ChannelMode::preset(MemorySetting::LatencyMargin)),
            MemoryDesign::ExploitFrequency => {
                Ok(ChannelMode::preset(MemorySetting::FrequencyMargin))
            }
            MemoryDesign::ExploitFreqLat => Ok(ChannelMode::preset(MemorySetting::FreqLatMargin)),
            // FMR pairs ranks and keeps copies at the same offsets of
            // the paired rank; software data still interleaves across
            // every rank (only whole-module designs like Hetero-DMR
            // must confine data to the in-use module).
            MemoryDesign::Fmr => ChannelMode::builder()
                .fmr_read_choice(true)
                .broadcast_copies(1)
                .build(),
            MemoryDesign::HeteroDmr { margin_mts } => {
                let (fast, safe) = HierarchyConfig::hetero_dmr_timings(margin_mts);
                ChannelMode::builder()
                    .read_timing(fast)
                    .write_timing(safe)
                    .turnaround_penalty_ps(PS_PER_US)
                    // The 12 800-write batches the LLC cleaning of
                    // Section III-E exists to build (100× a
                    // conventional 128-write batch).
                    .write_high_watermark(12_800)
                    .write_batch(usize::MAX)
                    .read_ranks(Some(2))
                    .broadcast_copies(1)
                    .software_ranks(Some(2))
                    .build()
            }
            MemoryDesign::HeteroDmrFmr { margin_mts } => MemoryDesign::HeteroDmr { margin_mts }
                .channel_mode()
                .to_builder()
                .fmr_read_choice(true)
                .broadcast_copies(2)
                .build(),
            MemoryDesign::NaiveDmr { margin_mts } => {
                // The fast half's mode; see per_channel_modes.
                ChannelMode::builder()
                    .data_rate(dram::rate::DataRate::MT3200.plus_margin(margin_mts))
                    .build()
            }
            // The envelope setting: identical plumbing to a static
            // Hetero-DMR binned at the maximum margin. Intermediate
            // operating points come from
            // `MemoryDesign::HeteroDmr { margin_mts: bin * 200 }`.
            MemoryDesign::AdaptiveDmr { max_margin_mts } => {
                return MemoryDesign::HeteroDmr {
                    margin_mts: max_margin_mts,
                }
                .channel_mode()
            }
        };
        built.unwrap_or_else(|e| panic!("{}: invalid channel mode: {e}", self.name()))
    }

    /// Per-channel modes for designs that operate channels
    /// heterogeneously. Returns `(modes, mirror_writes)`.
    pub fn per_channel_modes(self, channels: usize) -> (Vec<ChannelMode>, bool) {
        match self {
            MemoryDesign::NaiveDmr { .. } => {
                // First half safe (originals), second half fast (copies).
                let safe = ChannelMode::commercial_baseline();
                let fast = self.channel_mode();
                let modes = (0..channels)
                    .map(|c| if c < channels / 2 { safe } else { fast })
                    .collect();
                (modes, true)
            }
            _ => (vec![self.channel_mode(); channels], false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_all_spec() {
        let m = MemoryDesign::CommercialBaseline.channel_mode();
        assert_eq!(m.read_timing.data_rate.mts(), 3200);
        assert_eq!(m.turnaround_penalty_ps, 0);
    }

    #[test]
    fn figure5_settings_apply_table2() {
        assert_eq!(
            MemoryDesign::ExploitLatency
                .channel_mode()
                .read_timing
                .t_rcd_ns,
            11.5
        );
        assert_eq!(
            MemoryDesign::ExploitFrequency
                .channel_mode()
                .read_timing
                .data_rate
                .mts(),
            4000
        );
        let fl = MemoryDesign::ExploitFreqLat.channel_mode();
        assert_eq!(fl.read_timing.data_rate.mts(), 4000);
        assert_eq!(fl.read_timing.t_rcd_ns, 11.5);
        // Cherry-picked overclocking writes fast too (no protection).
        assert_eq!(fl.write_timing, fl.read_timing);
    }

    #[test]
    fn hetero_dmr_mode_has_the_protocol_knobs() {
        let m = MemoryDesign::HeteroDmr { margin_mts: 800 }.channel_mode();
        assert_eq!(m.read_timing.data_rate.mts(), 4000);
        assert_eq!(m.write_timing.data_rate.mts(), 3200, "writes at spec");
        assert_eq!(m.turnaround_penalty_ps, PS_PER_US);
        assert_eq!(m.write_high_watermark, 12_800);
        assert_eq!(m.read_ranks, Some(2));
        assert_eq!(m.broadcast_copies, 1);
        let m6 = MemoryDesign::HeteroDmr { margin_mts: 600 }.channel_mode();
        assert_eq!(m6.read_timing.data_rate.mts(), 3800);
    }

    #[test]
    fn hdmr_fmr_extends_hdmr() {
        let m = MemoryDesign::HeteroDmrFmr { margin_mts: 800 }.channel_mode();
        assert!(m.fmr_read_choice);
        assert_eq!(m.broadcast_copies, 2);
        assert_eq!(m.read_ranks, Some(2));
    }

    #[test]
    fn fmr_is_spec_rate_with_copy_choice() {
        let m = MemoryDesign::Fmr.channel_mode();
        assert_eq!(m.read_timing.data_rate.mts(), 3200);
        assert!(m.fmr_read_choice);
        assert_eq!(m.turnaround_penalty_ps, 0);
    }

    #[test]
    fn naive_dmr_splits_channels_and_mirrors_writes() {
        let (modes, mirror) = MemoryDesign::NaiveDmr { margin_mts: 800 }.per_channel_modes(4);
        assert!(mirror);
        assert_eq!(modes.len(), 4);
        assert_eq!(modes[0].read_timing.data_rate.mts(), 3200);
        assert_eq!(modes[1].read_timing.data_rate.mts(), 3200);
        assert_eq!(modes[2].read_timing.data_rate.mts(), 4000);
        assert_eq!(modes[3].read_timing.data_rate.mts(), 4000);
    }

    #[test]
    fn uniform_designs_replicate_one_mode() {
        let (modes, mirror) = MemoryDesign::Fmr.per_channel_modes(4);
        assert!(!mirror);
        assert!(modes.iter().all(|m| *m == modes[0]));
    }

    #[test]
    fn free_memory_thresholds() {
        assert_eq!(
            MemoryDesign::CommercialBaseline.free_memory_threshold(),
            None
        );
        assert_eq!(MemoryDesign::ExploitFreqLat.free_memory_threshold(), None);
        assert_eq!(
            MemoryDesign::HeteroDmr { margin_mts: 800 }.free_memory_threshold(),
            Some(0.5)
        );
        assert_eq!(
            MemoryDesign::HeteroDmrFmr { margin_mts: 800 }.free_memory_threshold(),
            Some(0.25)
        );
    }

    #[test]
    fn adaptive_envelope_matches_static_binning() {
        // The adaptive design's envelope mode is plumbing-identical to
        // a static Hetero-DMR binned at the same (maximum) margin.
        let a = MemoryDesign::AdaptiveDmr {
            max_margin_mts: 800,
        };
        assert_eq!(
            a.channel_mode(),
            MemoryDesign::HeteroDmr { margin_mts: 800 }.channel_mode()
        );
        assert_eq!(a.free_memory_threshold(), Some(0.5));
        assert_eq!(a.name(), "Adaptive-DMR<=+0.8GT/s");
        // Intermediate bins are plain Hetero-DMR modes and must build
        // at every 200 MT/s step of the ladder.
        for bin in 0..=4u32 {
            let m = MemoryDesign::HeteroDmr {
                margin_mts: bin * 200,
            }
            .channel_mode();
            assert_eq!(m.read_timing.data_rate.mts(), 3200 + bin * 200);
            assert_eq!(m.write_timing.data_rate.mts(), 3200, "writes at spec");
        }
    }

    #[test]
    fn names_are_informative() {
        assert_eq!(
            MemoryDesign::HeteroDmr { margin_mts: 800 }.name(),
            "Hetero-DMR@0.8GT/s"
        );
        assert!(MemoryDesign::NaiveDmr { margin_mts: 600 }
            .name()
            .contains("0.6"));
    }
}
