//! The closed-loop adaptive margin governor.
//!
//! The paper bins each module's frequency margin once, offline, with a
//! stress test — but AL-DRAM showed timing margins are a *moving*
//! target: temperature, aging, and workload phase all shift the safe
//! operating point. This module closes the loop online: each one-hour
//! epoch the [`AdaptiveGovernor`] reads the detected-error tally from
//! the existing [`EpochGovernor`] telemetry and steps the channel's
//! data rate up or down one 200 MT/s bin.
//!
//! Three mechanisms make the loop safe and stable:
//!
//! * **Hysteresis** — separate strengthen/weaken thresholds with a
//!   wide dead band, plus a cool-down of `cooldown_epochs` holds after
//!   every step, so a single noisy epoch cannot whipsaw the rate.
//! * **Reprobe ceiling** — when error feedback forces a step down from
//!   bin *b*, the governor remembers *b* as unsafe and refuses to
//!   strengthen back into it for `reprobe_epochs`. Between reprobes
//!   the trajectory is therefore monotone below the ceiling: sustained
//!   strengthen/weaken oscillation is structurally impossible, at most
//!   one up-down probe per reprobe window (see
//!   `adaptive_properties.rs` for the machine-checked statement).
//! * **Safety envelope** — the bin never exceeds the stress-test
//!   derived `max_bin`, never moves up by more than one per epoch, and
//!   any epoch containing an uncorrectable error triggers an immediate
//!   multi-bin retreat that overrides the cool-down.
//!
//! The governor itself is RNG-free; the [`run_closed_loop`] driver
//! samples error counts with the runner's counter-based discipline
//! (epoch *i* draws from `seed::iteration_seed(seed, i)`), so every
//! trajectory is reproducible and independent of thread scheduling.

use crate::governor::{EpochGovernor, EPOCH_PS};
use dram::rate::DataRate;
use margin::stress::sample_poisson;
use margin::temperature::TemperatureTransient;
use rand::rngs::StdRng;
use rand::SeedableRng;
use telemetry::series::{Series, SeriesStore};
use telemetry::trace::{kv, Clock, Tracer};
use telemetry::{Counter, Scope};
use workloads::PhaseSchedule;

/// Width of one adaptation bin: the 200 MT/s BIOS step the paper's
/// stress tests walk ([`DataRate::STEP_MTS`]).
pub const BIN_MTS: u32 = DataRate::STEP_MTS;

/// Tuning of the adaptive control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Strengthen (step one bin up) when the epoch's detected-error
    /// count is at or below this.
    pub strengthen_below: u64,
    /// Weaken (step one bin down) when the epoch's detected-error
    /// count is at or above this. Counts in the open interval
    /// `(strengthen_below, weaken_above)` are the hysteresis dead band
    /// and hold the current bin.
    pub weaken_above: u64,
    /// Epochs to hold after any step before stepping again.
    pub cooldown_epochs: u32,
    /// Epochs the reprobe ceiling stays lowered after an error-driven
    /// step down, before the governor may probe the abandoned bin
    /// again.
    pub reprobe_epochs: u32,
    /// Safety envelope: the stress-test-derived maximum bin. The
    /// operating margin never exceeds `max_bin * BIN_MTS`.
    pub max_bin: u8,
    /// Bins retreated immediately when an epoch contains an
    /// uncorrectable error (clamped at bin 0).
    pub ue_retreat_bins: u8,
}

impl AdaptiveConfig {
    /// A config with validation.
    ///
    /// # Panics
    ///
    /// Panics unless `strengthen_below < weaken_above` (the dead band
    /// must exist), `cooldown_epochs >= 1`, `reprobe_epochs >=
    /// cooldown_epochs`, and `ue_retreat_bins >= 1`.
    pub fn new(
        strengthen_below: u64,
        weaken_above: u64,
        cooldown_epochs: u32,
        reprobe_epochs: u32,
        max_bin: u8,
        ue_retreat_bins: u8,
    ) -> AdaptiveConfig {
        assert!(
            strengthen_below < weaken_above,
            "hysteresis dead band must be non-empty: \
             strengthen_below {strengthen_below} >= weaken_above {weaken_above}"
        );
        assert!(cooldown_epochs >= 1, "cool-down must be positive");
        assert!(
            reprobe_epochs >= cooldown_epochs,
            "reprobe window shorter than the cool-down would re-open \
             an abandoned bin while still cooling down"
        );
        assert!(ue_retreat_bins >= 1, "a UE must move the rate down");
        AdaptiveConfig {
            strengthen_below,
            weaken_above,
            cooldown_epochs,
            reprobe_epochs,
            max_bin,
            ue_retreat_bins,
        }
    }

    /// Defaults derived from the paper's measured rates: modules at
    /// their margin see at most hundreds of CE per hour, and an order
    /// of magnitude more signals the bin above the margin, so the dead
    /// band `(100, 10_000)` separates the two regimes cleanly while
    /// staying far under the ~2.1 M/epoch SDC budget.
    pub fn defaults(max_bin: u8) -> AdaptiveConfig {
        AdaptiveConfig::new(100, 10_000, 2, 12, max_bin, 2)
    }
}

/// What the governor did with one epoch of error feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Stay at the current bin.
    Hold,
    /// Step one bin up (faster).
    Strengthen,
    /// Step one bin down (safer).
    Weaken,
    /// Uncorrectable error: drop `bins` immediately (0 when already at
    /// specification — the UE is still recorded and the cool-down
    /// still restarts).
    Retreat {
        /// Bins actually dropped (`<= ue_retreat_bins`).
        bins: u8,
    },
}

/// The closed-loop governor: owns the per-epoch SDC budget governor
/// and walks the operating bin from its error feedback.
#[derive(Debug)]
pub struct AdaptiveGovernor {
    config: AdaptiveConfig,
    /// The SDC budget bookkeeper every epoch's CE tally feeds.
    budget: EpochGovernor,
    bin: u8,
    /// Epochs left holding after the last step.
    cooldown: u32,
    /// Epochs left on the lowered reprobe ceiling (0 = ceiling open).
    reprobe: u32,
    /// Current strengthen ceiling (`max_bin` unless reprobing).
    ceiling: u8,
    epochs_observed: u64,
    steps_up: Counter,
    steps_down: Counter,
    retreats: Counter,
    holds: Counter,
    tracer: Option<Tracer>,
    series: Option<GovernorSeries>,
}

/// Health-plane rollups of the closed loop's per-epoch telemetry
/// (see [`AdaptiveGovernor::attach_series`]).
#[derive(Debug, Clone)]
struct GovernorSeries {
    /// Corrected errors observed, per epoch window.
    ce: Series,
    /// Uncorrectable errors observed, per epoch window.
    ue: Series,
    /// Operating bin after the epoch's decision.
    bin: Series,
}

impl AdaptiveGovernor {
    /// A governor starting at specification (bin 0) with the default
    /// SDC epoch budget.
    pub fn new(config: AdaptiveConfig) -> AdaptiveGovernor {
        AdaptiveGovernor::with_budget(config, EpochGovernor::default())
    }

    /// A governor over a custom budget governor (tests shrink the
    /// threshold).
    pub fn with_budget(config: AdaptiveConfig, budget: EpochGovernor) -> AdaptiveGovernor {
        AdaptiveGovernor {
            ceiling: config.max_bin,
            config,
            budget,
            bin: 0,
            cooldown: 0,
            reprobe: 0,
            epochs_observed: 0,
            steps_up: Counter::default(),
            steps_down: Counter::default(),
            retreats: Counter::default(),
            holds: Counter::default(),
            tracer: None,
            series: None,
        }
    }

    /// Rebinds the governor's counters (and the inner budget
    /// governor's) into a registry scope, folding in values recorded
    /// before attachment.
    pub fn attach_telemetry(&mut self, scope: &Scope) {
        let rebind = |name: &str, old: &Counter| {
            let fresh = scope.counter(name);
            fresh.add(old.get());
            fresh
        };
        self.steps_up = rebind("steps_up", &self.steps_up);
        self.steps_down = rebind("steps_down", &self.steps_down);
        self.retreats = rebind("retreats", &self.retreats);
        self.holds = rebind("holds", &self.holds);
        self.budget.attach_telemetry(scope);
    }

    /// Emits `governor.step` / `governor.retreat` spans onto `tracer`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Streams each observed epoch into sim-time series under
    /// `prefix`: `<prefix>.ce` and `<prefix>.ue` (errors per epoch)
    /// and `<prefix>.bin` (operating bin after the decision), one
    /// epoch-wide window each on the simulation-picosecond clock —
    /// the same timestamps the governor's trace spans carry, so a
    /// detector breach in these series can be walked back to
    /// `governor.step` / `governor.retreat` spans.
    pub fn attach_series(&mut self, store: &SeriesStore, prefix: &str) {
        self.series = Some(GovernorSeries {
            ce: store.series(&format!("{prefix}.ce"), EPOCH_PS),
            ue: store.series(&format!("{prefix}.ue"), EPOCH_PS),
            bin: store.series(&format!("{prefix}.bin"), EPOCH_PS),
        });
    }

    /// Current operating bin.
    pub fn bin(&self) -> u8 {
        self.bin
    }

    /// Current operating margin over specification, MT/s.
    pub fn margin_mts(&self) -> u32 {
        self.bin as u32 * BIN_MTS
    }

    /// Current data rate.
    pub fn data_rate(&self) -> DataRate {
        DataRate::MT3200.plus_margin(self.margin_mts())
    }

    /// Current strengthen ceiling (equals `config.max_bin` except
    /// while a reprobe window is pending).
    pub fn ceiling(&self) -> u8 {
        self.ceiling
    }

    /// The loop tuning.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// The inner SDC budget governor.
    pub fn budget(&self) -> &EpochGovernor {
        &self.budget
    }

    /// Epochs fed through [`AdaptiveGovernor::observe_epoch`].
    pub fn epochs_observed(&self) -> u64 {
        self.epochs_observed
    }

    /// Lifetime decision tallies `(up, down, retreats, holds)`.
    pub fn decision_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.steps_up.get(),
            self.steps_down.get(),
            self.retreats.get(),
            self.holds.get(),
        )
    }

    /// Feeds one epoch of error feedback — `ce` detected-corrected
    /// errors and `ue` uncorrectable errors observed during epoch
    /// `epoch` — and applies the resulting decision to the operating
    /// bin. Epoch `i` spans sim time `[i * EPOCH_PS, (i+1) *
    /// EPOCH_PS)`.
    pub fn observe_epoch(&mut self, epoch: u64, ce: u64, ue: u64) -> Decision {
        let start = epoch * EPOCH_PS;
        self.epochs_observed += 1;
        // The CE stream still funds the SDC budget: detection-only ECC
        // converts every detected error into budget spend regardless
        // of what the adaptive layer decides.
        self.budget.record_errors(start, ce);
        if self.reprobe > 0 {
            self.reprobe -= 1;
            if self.reprobe == 0 {
                // Window over: the abandoned bin may be probed again
                // (conditions — temperature, phase — may have moved).
                self.ceiling = self.config.max_bin;
            }
        }

        let from = self.bin;
        let decision = if ue > 0 {
            Decision::Retreat {
                bins: self.config.ue_retreat_bins.min(self.bin),
            }
        } else if self.cooldown > 0 {
            self.cooldown -= 1;
            Decision::Hold
        } else if ce <= self.config.strengthen_below && self.bin < self.ceiling {
            Decision::Strengthen
        } else if ce >= self.config.weaken_above && self.bin > 0 {
            Decision::Weaken
        } else {
            Decision::Hold
        };

        match decision {
            Decision::Hold => self.holds.inc(),
            Decision::Strengthen => {
                self.bin += 1;
                self.cooldown = self.config.cooldown_epochs;
                self.steps_up.inc();
            }
            Decision::Weaken => {
                self.bin -= 1;
                self.cooldown = self.config.cooldown_epochs;
                // Remember `from` as error-hostile: no re-probing it
                // until the window expires.
                self.lower_ceiling(from);
                self.steps_down.inc();
            }
            Decision::Retreat { bins } => {
                self.bin -= bins;
                self.cooldown = self.config.cooldown_epochs;
                self.lower_ceiling(from);
                self.retreats.inc();
            }
        }
        if let Some(series) = &self.series {
            series.ce.record(start, ce);
            series.ue.record(start, ue);
            series.bin.record(start, self.bin as u64);
        }
        self.emit_trace(epoch, from, decision, ce, ue);
        debug_assert!(self.bin <= self.ceiling && self.ceiling <= self.config.max_bin);
        decision
    }

    fn lower_ceiling(&mut self, from: u8) {
        self.ceiling = from.saturating_sub(1).max(self.bin);
        self.reprobe = self.config.reprobe_epochs;
    }

    fn emit_trace(&self, epoch: u64, from: u8, decision: Decision, ce: u64, ue: u64) {
        let Some(t) = &self.tracer else { return };
        let name = match decision {
            Decision::Hold => return,
            Decision::Strengthen | Decision::Weaken => "governor.step",
            Decision::Retreat { .. } => "governor.retreat",
        };
        let start = epoch * EPOCH_PS;
        t.complete(
            name,
            "adaptive",
            Clock::SimPs,
            start,
            start + EPOCH_PS - 1,
            vec![
                kv("epoch", epoch),
                kv("bin_from", from),
                kv("bin_to", self.bin),
                kv("ce", ce),
                kv("ue", ue),
            ],
        );
    }
}

/// How a channel's *true* margin responds to operating conditions —
/// the physical ground truth the governor can only sense through error
/// counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginResponse {
    /// True frequency margin at baseline conditions, MT/s.
    pub true_margin_mts: u32,
    /// Mean detected errors per epoch while safely under the margin
    /// (background CE rate).
    pub ce_floor_per_epoch: f64,
    /// Mean detected errors per epoch operating exactly *at* the
    /// margin.
    pub ce_at_margin_per_epoch: f64,
    /// Multiplicative CE growth for each bin operated *over* the
    /// margin.
    pub ce_growth_per_bin: f64,
    /// Mean UE per epoch for each bin operated *beyond one bin over*
    /// the margin (the first overshoot bin only degrades CE).
    pub ue_per_epoch_per_bin: f64,
}

impl MarginResponse {
    /// A module with the paper's typical profile: measurable-but-tiny
    /// CE at its margin, steep growth past it.
    pub fn typical(true_margin_mts: u32) -> MarginResponse {
        MarginResponse {
            true_margin_mts,
            ce_floor_per_epoch: 2.0,
            ce_at_margin_per_epoch: 400.0,
            ce_growth_per_bin: 200.0,
            ue_per_epoch_per_bin: 3.0,
        }
    }

    /// Poisson means `(ce, ue)` per epoch when operating at
    /// `operating_margin_mts` under disturbance `d`.
    pub fn lambda(&self, operating_margin_mts: u32, d: Disturbance) -> (f64, f64) {
        let effective = self.true_margin_mts as i64 + d.margin_shift_mts as i64;
        let over_bins = (operating_margin_mts as i64 - effective) as f64 / BIN_MTS as f64;
        let ce = if over_bins < 0.0 {
            self.ce_floor_per_epoch
        } else {
            self.ce_at_margin_per_epoch * self.ce_growth_per_bin.powf(over_bins)
        };
        let ue = self.ue_per_epoch_per_bin * (over_bins - 1.0).max(0.0);
        (ce * d.intensity, ue * d.intensity)
    }
}

/// The conditions of one epoch, as they perturb the margin response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disturbance {
    /// Shift of the true margin in MT/s (negative = margin loss, e.g.
    /// from heat or aging).
    pub margin_shift_mts: i32,
    /// Error-exposure multiplier in `(0, 1]` from the workload phase
    /// (compute-bound phases touch memory less, hiding errors).
    pub intensity: f64,
}

impl Default for Disturbance {
    fn default() -> Disturbance {
        Disturbance {
            margin_shift_mts: 0,
            intensity: 1.0,
        }
    }
}

/// Linear margin loss from DRAM aging, starting at `onset_epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgingDrift {
    /// Margin lost per thousand epochs, MT/s.
    pub mts_per_kilo_epoch: u32,
    /// First epoch the drift applies.
    pub onset_epoch: u64,
}

impl AgingDrift {
    /// No aging.
    pub fn none() -> AgingDrift {
        AgingDrift {
            mts_per_kilo_epoch: 0,
            onset_epoch: 0,
        }
    }

    /// Margin shift (≤ 0) at `epoch`.
    pub fn shift_at(&self, epoch: u64) -> i32 {
        let aged = epoch.saturating_sub(self.onset_epoch);
        -((aged * self.mts_per_kilo_epoch as u64 / 1000) as i32)
    }
}

/// A composite disturbance scenario: temperature schedule, aging
/// drift, and workload phases, evaluated per epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct Environment {
    /// Ambient-temperature schedule.
    pub temperature: TemperatureTransient,
    /// Margin lost (MT/s) while the temperature is in excursion — the
    /// 45 °C chamber's ~4× error-rate multiplier expressed as the
    /// margin loss that produces it.
    pub excursion_margin_loss_mts: u32,
    /// Aging drift.
    pub aging: AgingDrift,
    /// Workload phase schedule.
    pub phases: PhaseSchedule,
}

impl Environment {
    /// Room temperature, no aging, a single steady suite: the
    /// conditions an offline stress test implicitly assumes hold
    /// forever.
    pub fn steady(suite: workloads::Suite) -> Environment {
        Environment {
            temperature: TemperatureTransient::steady(margin::AmbientTemperature::Room23C),
            excursion_margin_loss_mts: 0,
            aging: AgingDrift::none(),
            phases: PhaseSchedule::steady(suite),
        }
    }

    /// The disturbance in effect during `epoch`.
    pub fn disturbance_at(&self, epoch: u64) -> Disturbance {
        let mut shift = self.aging.shift_at(epoch);
        if self.temperature.is_excursion(epoch) {
            shift -= self.excursion_margin_loss_mts as i32;
        }
        Disturbance {
            margin_shift_mts: shift,
            intensity: self.phases.relative_intensity_at(epoch),
        }
    }
}

/// One epoch of a closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: u64,
    /// Operating bin *during* the epoch (errors were sampled at it).
    pub bin_during: u8,
    /// Bin after the governor's decision.
    pub bin_after: u8,
    /// Detected-corrected errors sampled this epoch.
    pub ce: u64,
    /// Uncorrectable errors sampled this epoch.
    pub ue: u64,
    /// The governor's decision.
    pub decision: Decision,
}

/// Drives `governor` against a physical `response` under `env` for
/// `epochs` epochs. Error counts are Poisson draws whose RNG stream
/// derives from `seed::iteration_seed(seed, epoch)` — the runner's
/// counter-based discipline — so a trajectory depends only on `(seed,
/// epochs)` and its inputs, never on scheduling.
pub fn run_closed_loop(
    governor: &mut AdaptiveGovernor,
    response: &MarginResponse,
    env: &Environment,
    seed: u64,
    epochs: u64,
) -> Vec<EpochRecord> {
    (0..epochs)
        .map(|epoch| {
            let d = env.disturbance_at(epoch);
            let (lambda_ce, lambda_ue) = response.lambda(governor.margin_mts(), d);
            let mut rng = StdRng::seed_from_u64(runner::seed::iteration_seed(seed, epoch));
            let ce = sample_poisson(&mut rng, lambda_ce);
            let ue = sample_poisson(&mut rng, lambda_ue);
            let bin_during = governor.bin();
            let decision = governor.observe_epoch(epoch, ce, ue);
            EpochRecord {
                epoch,
                bin_during,
                bin_after: governor.bin(),
                ce,
                ue,
                decision,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Suite;

    fn quiet_config() -> AdaptiveConfig {
        AdaptiveConfig::new(100, 10_000, 1, 4, 4, 2)
    }

    #[test]
    fn climbs_one_bin_per_quiet_epoch_up_to_the_envelope() {
        let mut g = AdaptiveGovernor::new(quiet_config());
        let mut epoch = 0u64;
        let mut max_seen = 0u8;
        while epoch < 40 {
            let before = g.bin();
            let d = g.observe_epoch(epoch, 0, 0);
            assert!(g.bin() <= before + 1, "never more than +1 per epoch");
            assert!(g.bin() <= 4, "never past the envelope");
            assert!(matches!(d, Decision::Strengthen | Decision::Hold));
            max_seen = max_seen.max(g.bin());
            epoch += 1;
        }
        assert_eq!(max_seen, 4, "reaches the envelope");
        assert_eq!(g.bin(), 4, "and stays there");
        let (up, down, retreat, _hold) = g.decision_counts();
        assert_eq!((up, down, retreat), (4, 0, 0));
    }

    #[test]
    fn cooldown_holds_between_steps() {
        let cfg = AdaptiveConfig::new(100, 10_000, 3, 6, 4, 2);
        let mut g = AdaptiveGovernor::new(cfg);
        assert_eq!(g.observe_epoch(0, 0, 0), Decision::Strengthen);
        for e in 1..=3 {
            assert_eq!(g.observe_epoch(e, 0, 0), Decision::Hold, "epoch {e}");
        }
        assert_eq!(g.observe_epoch(4, 0, 0), Decision::Strengthen);
    }

    #[test]
    fn dead_band_holds() {
        let mut g = AdaptiveGovernor::new(quiet_config());
        g.observe_epoch(0, 0, 0);
        g.observe_epoch(1, 0, 0); // bin 2 after cool-downs? (cooldown 1)
        let bin = g.bin();
        // 5_000 errors sit strictly between the thresholds: hold.
        for e in 2..8 {
            g.observe_epoch(e, 5_000, 0);
        }
        assert_eq!(g.bin(), bin, "dead band never moves the bin");
    }

    #[test]
    fn ue_retreats_immediately_even_during_cooldown() {
        let cfg = AdaptiveConfig::new(100, 10_000, 3, 6, 4, 2);
        let mut g = AdaptiveGovernor::new(cfg);
        g.observe_epoch(0, 0, 0);
        g.observe_epoch(1, 0, 0); // cool-down hold
        assert_eq!(g.bin(), 1);
        // Still cooling down, but a UE overrides it… from bin 1 only
        // one bin of retreat is available.
        assert_eq!(g.observe_epoch(2, 50, 1), Decision::Retreat { bins: 1 });
        assert_eq!(g.bin(), 0);
        // A UE at specification still "retreats" (0 bins) and counts.
        assert_eq!(g.observe_epoch(3, 0, 1), Decision::Retreat { bins: 0 });
        let (_, _, retreats, _) = g.decision_counts();
        assert_eq!(retreats, 2);
    }

    #[test]
    fn weaken_lowers_the_reprobe_ceiling() {
        let cfg = AdaptiveConfig::new(100, 10_000, 1, 4, 4, 2);
        let mut g = AdaptiveGovernor::new(cfg);
        g.observe_epoch(0, 0, 0); // -> bin 1
        g.observe_epoch(1, 0, 0); // cool-down hold
        g.observe_epoch(2, 0, 0); // -> bin 2
        g.observe_epoch(3, 0, 0); // cool-down hold
        assert_eq!(g.bin(), 2);
        assert_eq!(g.observe_epoch(4, 50_000, 0), Decision::Weaken);
        assert_eq!(g.bin(), 1);
        assert_eq!(g.ceiling(), 1, "bin 2 is off-limits while reprobing");
        // Quiet epochs cannot climb past the ceiling until it expires.
        for e in 5..8 {
            g.observe_epoch(e, 0, 0);
            assert!(g.bin() <= 1, "epoch {e}");
        }
        // Reprobe window (4 epochs from the weaken) has expired: the
        // abandoned bin may be probed again.
        assert_eq!(g.observe_epoch(8, 0, 0), Decision::Strengthen);
        assert_eq!(g.bin(), 2, "ceiling re-opens after the window");
    }

    #[test]
    fn budget_governor_sees_the_ce_stream() {
        let cfg = quiet_config();
        let mut g = AdaptiveGovernor::with_budget(cfg, EpochGovernor::new(1_000));
        g.observe_epoch(0, 600, 0);
        assert_eq!(g.budget().errors_this_epoch(), 600);
        g.observe_epoch(0, 600, 0);
        assert_eq!(g.budget().fallbacks(), 1, "budget exhaustion recorded");
        g.observe_epoch(1, 5, 0);
        assert_eq!(g.budget().errors_this_epoch(), 5, "fresh epoch");
        assert_eq!(g.budget().total_errors(), 1_205);
    }

    #[test]
    fn telemetry_attachment_folds_existing_counts() {
        let registry = telemetry::Registry::new();
        let mut g = AdaptiveGovernor::new(quiet_config());
        g.observe_epoch(0, 0, 0); // one strengthen before attachment
        g.attach_telemetry(&registry.scope("adaptive"));
        g.observe_epoch(1, 0, 0); // cool-down hold
        g.observe_epoch(2, 0, 0); // strengthen
        let snap = registry.snapshot();
        assert_eq!(snap.counter("adaptive.steps_up"), 2);
        assert_eq!(snap.counter("adaptive.holds"), 1);
        assert_eq!(snap.counter("adaptive.errors"), 0, "budget attached too");
    }

    #[test]
    fn series_tap_records_one_window_per_epoch() {
        let store = SeriesStore::new();
        let mut g = AdaptiveGovernor::new(quiet_config());
        g.attach_series(&store, "gov");
        g.observe_epoch(0, 3, 0); // strengthen → bin 1
        g.observe_epoch(1, 7, 0); // cool-down hold
        g.observe_epoch(2, 0, 1); // retreat → bin 0
        let snap = store.snapshot();
        let windows = |name: &str| snap.get(name).unwrap().windows.clone();
        let ce = windows("gov.ce");
        assert_eq!(ce.len(), 3);
        assert_eq!(ce[0].0, 0);
        assert_eq!(ce[1].0, EPOCH_PS);
        assert_eq!(ce.iter().map(|(_, w)| w.sum).collect::<Vec<_>>(), [3, 7, 0]);
        assert_eq!(
            windows("gov.ue")
                .iter()
                .map(|(_, w)| w.sum)
                .collect::<Vec<_>>(),
            [0, 0, 1]
        );
        assert_eq!(
            windows("gov.bin")
                .iter()
                .map(|(_, w)| w.sum)
                .collect::<Vec<_>>(),
            [1, 1, 0],
            "bin after each decision"
        );
    }

    #[test]
    fn trace_spans_name_the_transitions() {
        let tracer = Tracer::new();
        let mut g = AdaptiveGovernor::new(quiet_config());
        g.set_tracer(tracer.clone());
        g.observe_epoch(0, 0, 0); // strengthen
        g.observe_epoch(1, 0, 0); // hold: no span
        g.observe_epoch(2, 0, 1); // retreat
        let events = tracer.take();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["governor.step", "governor.retreat"]);
        assert_eq!(events[0].start, 0);
        assert_eq!(events[0].end, EPOCH_PS - 1);
        assert_eq!(events[1].start, 2 * EPOCH_PS);
    }

    #[test]
    fn margin_response_regimes() {
        let r = MarginResponse::typical(600);
        let calm = Disturbance::default();
        let (ce_under, ue_under) = r.lambda(200, calm);
        assert_eq!((ce_under, ue_under), (2.0, 0.0), "well under margin");
        let (ce_at, ue_at) = r.lambda(600, calm);
        assert_eq!((ce_at, ue_at), (400.0, 0.0), "at margin: CE only");
        let (ce_over, ue_over) = r.lambda(800, calm);
        assert_eq!(ce_over, 80_000.0, "one bin over: 200x CE");
        assert_eq!(ue_over, 0.0, "one bin over: still no UE");
        let (_, ue_two_over) = r.lambda(1000, calm);
        assert_eq!(ue_two_over, 3.0, "two bins over: UEs appear");
        // A hot epoch shifts the margin down two bins: operating at
        // the cold margin is now two bins over.
        let hot = Disturbance {
            margin_shift_mts: -400,
            intensity: 1.0,
        };
        assert_eq!(r.lambda(600, hot), r.lambda(1000, calm));
        // Half intensity halves the exposure.
        let lazy = Disturbance {
            margin_shift_mts: 0,
            intensity: 0.5,
        };
        assert_eq!(r.lambda(600, lazy).0, 200.0);
    }

    #[test]
    fn environment_composes_disturbances() {
        let env = Environment {
            temperature: TemperatureTransient::cooling_failure(5, 3),
            excursion_margin_loss_mts: 400,
            aging: AgingDrift {
                mts_per_kilo_epoch: 1000,
                onset_epoch: 0,
            },
            phases: PhaseSchedule::steady(Suite::Hpcg),
        };
        let d0 = env.disturbance_at(0);
        assert_eq!(d0.margin_shift_mts, 0);
        assert_eq!(d0.intensity, 1.0);
        // Epoch 6: hot (-400) and 6 epochs of aging (-6).
        assert_eq!(env.disturbance_at(6).margin_shift_mts, -406);
        // Epoch 8: excursion over, aging continues.
        assert_eq!(env.disturbance_at(8).margin_shift_mts, -8);
    }

    #[test]
    fn closed_loop_is_deterministic_and_tracks_the_margin() {
        let cfg = AdaptiveConfig::defaults(4);
        let response = MarginResponse::typical(600);
        let env = Environment::steady(Suite::Hpcg);
        let mut g1 = AdaptiveGovernor::new(cfg);
        let mut g2 = AdaptiveGovernor::new(cfg);
        let run1 = run_closed_loop(&mut g1, &response, &env, 42, 200);
        let run2 = run_closed_loop(&mut g2, &response, &env, 42, 200);
        assert_eq!(run1, run2, "same seed, same trajectory");
        // Settles at the true margin's bin (600/200 = 3) and holds.
        for rec in &run1[20..] {
            assert_eq!(rec.bin_after, 3, "epoch {}", rec.epoch);
        }
        let mut g3 = AdaptiveGovernor::new(cfg);
        let run3 = run_closed_loop(&mut g3, &response, &env, 43, 200);
        assert_ne!(run1, run3, "different seed, different error draws");
    }
}
