//! Differential test: offline binning vs. online adaptation.
//!
//! Under the exact conditions an offline stress test assumes — zero
//! disturbance, a constant error-rate curve — the adaptive governor
//! has no information advantage, so it must settle onto the same bin
//! the one-shot `margin::stress::measure_margin` selection picks, to
//! within ±1 bin (the dead band leaves the governor free to park on
//! either side of a margin that falls between bins).

use hetero_dmr::adaptive::{
    run_closed_loop, AdaptiveConfig, AdaptiveGovernor, Environment, MarginResponse, BIN_MTS,
};
use margin::stress::{measure_margin, StressConfig};
use runner::seed::iteration_seed;
use workloads::Suite;

/// The stress-test envelope both selectors share: 200 MT/s steps up
/// to the 4000 MT/s system cap, i.e. bins 0..=4 over DDR4-3200.
fn stress_config() -> StressConfig {
    StressConfig::default()
}

fn static_bin(true_margin_mts: u32) -> u8 {
    let margin = measure_margin(
        dram::rate::DataRate::MT3200,
        true_margin_mts,
        &stress_config(),
    );
    (margin / BIN_MTS) as u8
}

fn adaptive_bin(true_margin_mts: u32, seed: u64) -> u8 {
    let max_bin =
        ((stress_config().rate_cap_mts - dram::rate::DataRate::MT3200.mts()) / BIN_MTS) as u8;
    let cfg = AdaptiveConfig::defaults(max_bin);
    let mut g = AdaptiveGovernor::new(cfg);
    let response = MarginResponse::typical(true_margin_mts);
    let env = Environment::steady(Suite::Hpcg);
    let records = run_closed_loop(&mut g, &response, &env, seed, 120);
    // "Settled" means the tail of the run stays on one bin.
    let tail = &records[records.len() - 40..];
    let settled = tail[0].bin_after;
    assert!(
        tail.iter().all(|r| r.bin_after == settled),
        "margin {true_margin_mts}: tail still moving: {:?}",
        tail.iter().map(|r| r.bin_after).collect::<Vec<_>>()
    );
    settled
}

#[test]
fn adaptive_settles_onto_the_static_selection() {
    // True margins across the whole ladder, both on- and off-bin.
    for true_margin in (0..=1100).step_by(100) {
        let offline = static_bin(true_margin);
        for trial in 0..4u64 {
            let online = adaptive_bin(true_margin, iteration_seed(0xD1FF, trial));
            let diff = (online as i16 - offline as i16).abs();
            assert!(
                diff <= 1,
                "true margin {true_margin} MT/s, trial {trial}: \
                 offline bin {offline}, online bin {online}"
            );
        }
    }
}

#[test]
fn both_selectors_respect_the_rate_cap() {
    // A module whose silicon margin exceeds the system cap: offline
    // binning stops at the cap, and so must the adaptive governor.
    let offline = static_bin(2_000);
    assert_eq!(offline, 4, "cap at 4000 MT/s = bin 4");
    let online = adaptive_bin(2_000, 7);
    assert_eq!(online, 4);
}

#[test]
fn zero_margin_module_stays_at_spec() {
    assert_eq!(static_bin(0), 0);
    let online = adaptive_bin(0, 11);
    assert!(online <= 1, "within a bin of the static pick");
}
