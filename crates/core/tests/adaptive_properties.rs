//! Property-based invariant harness for the closed-loop adaptive
//! margin governor (`core::adaptive`).
//!
//! Random error traces and disturbance schedules, against random loop
//! tunings, must uphold the safety contract machine-checked here:
//!
//! 1. the operating bin never violates the safety envelope,
//! 2. the bin never climbs more than one bin in a single epoch,
//! 3. every UE epoch produces an immediate retreat,
//! 4. the cool-down rate-limits voluntary steps,
//! 5. under fixed conditions the trajectory converges — after warmup
//!    it visits at most two adjacent bins (no strengthen/weaken
//!    oscillation beyond the hysteresis/reprobe bounds),
//! 6. closed-loop trajectories are a pure function of the seed.
//!
//! The vendored proptest stand-in derives every case
//! deterministically from the test name, so the suite is its own
//! regression anchor; the `regressions` module additionally pins
//! hand-picked adversarial inputs as plain tests (the committed
//! regression seeds).

use hetero_dmr::adaptive::{
    run_closed_loop, AdaptiveConfig, AdaptiveGovernor, AgingDrift, Decision, Environment,
    MarginResponse, BIN_MTS,
};
use margin::temperature::TemperatureTransient;
use proptest::prelude::*;
use workloads::{PhaseSchedule, Suite};

/// Random-but-valid loop tunings.
fn config_strategy() -> impl Strategy<Value = AdaptiveConfig> {
    (
        0u64..500,    // strengthen_below
        1u64..20_000, // dead-band width
        1u32..5,      // cooldown_epochs
        0u32..16,     // reprobe_epochs extra over the cool-down
        0u8..7,       // max_bin
        1u8..5,       // ue_retreat_bins
    )
        .prop_map(|(sb, gap, cd, extra, max_bin, ue)| {
            AdaptiveConfig::new(sb, sb + gap, cd, cd + extra, max_bin, ue)
        })
}

/// A random per-epoch `(ce, ue)` error trace. CE spans the whole
/// dynamic range around any threshold; UEs are rare but present.
fn trace_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..40_000, 0u64..3), 1..250)
}

/// A random disturbance scenario over the built-in models.
fn environment_strategy() -> impl Strategy<Value = Environment> {
    (0u64..50, 0u64..50, 0u32..3, 0u32..300, 1u64..8).prop_map(
        |(onset, dur, aging, loss, dwell)| Environment {
            temperature: TemperatureTransient::cooling_failure(onset, dur),
            excursion_margin_loss_mts: loss,
            aging: AgingDrift {
                mts_per_kilo_epoch: aging * 100,
                onset_epoch: 0,
            },
            phases: PhaseSchedule::alternating(Suite::Hpcg, Suite::Npb, dwell),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariant 1+2: whatever the feedback, the bin stays inside
    /// `[0, max_bin]`, never exceeds the reprobe ceiling, and never
    /// climbs more than one bin per epoch.
    #[test]
    fn envelope_never_violated(cfg in config_strategy(), trace in trace_strategy()) {
        let mut g = AdaptiveGovernor::new(cfg);
        for (epoch, &(ce, ue)) in trace.iter().enumerate() {
            let before = g.bin();
            let decision = g.observe_epoch(epoch as u64, ce, ue);
            prop_assert!(g.bin() <= cfg.max_bin,
                "epoch {epoch}: bin {} past envelope {}", g.bin(), cfg.max_bin);
            prop_assert!(g.bin() <= g.ceiling(),
                "epoch {epoch}: bin {} past ceiling {}", g.bin(), g.ceiling());
            prop_assert!(g.bin() <= before + 1,
                "epoch {epoch}: climbed {} -> {}", before, g.bin());
            if g.bin() == before + 1 {
                prop_assert_eq!(decision, Decision::Strengthen);
            }
            prop_assert_eq!(g.margin_mts(), g.bin() as u32 * BIN_MTS);
        }
    }

    /// Invariant 3: a UE epoch always produces `Decision::Retreat`,
    /// dropping `min(ue_retreat_bins, bin)` bins on the spot — even
    /// mid-cool-down.
    #[test]
    fn ue_always_retreats(cfg in config_strategy(), trace in trace_strategy()) {
        let mut g = AdaptiveGovernor::new(cfg);
        for (epoch, &(ce, ue)) in trace.iter().enumerate() {
            let before = g.bin();
            let decision = g.observe_epoch(epoch as u64, ce, ue);
            if ue > 0 {
                let expect = cfg.ue_retreat_bins.min(before);
                prop_assert_eq!(decision, Decision::Retreat { bins: expect });
                prop_assert_eq!(g.bin(), before - expect);
            } else {
                prop_assert!(
                    !matches!(decision, Decision::Retreat { .. }),
                    "epoch {epoch}: retreat without a UE"
                );
            }
        }
    }

    /// Invariant 4: after any step (voluntary or retreat), the next
    /// `cooldown_epochs` UE-free epochs all hold.
    #[test]
    fn cooldown_rate_limits_steps(cfg in config_strategy(), trace in trace_strategy()) {
        let mut g = AdaptiveGovernor::new(cfg);
        let mut cooling = 0u32;
        for (epoch, &(ce, ue)) in trace.iter().enumerate() {
            let decision = g.observe_epoch(epoch as u64, ce, ue);
            match decision {
                Decision::Hold => cooling = cooling.saturating_sub(1),
                Decision::Retreat { .. } => cooling = cfg.cooldown_epochs,
                Decision::Strengthen | Decision::Weaken => {
                    prop_assert_eq!(cooling, 0,
                        "epoch {}: voluntary step with {} cool-down epochs left",
                        epoch, cooling);
                    cooling = cfg.cooldown_epochs;
                }
            }
        }
    }

    /// Invariant 5 (convergence): against any *fixed* monotone
    /// error-rate curve with no UEs, the trajectory settles — after a
    /// warmup generous enough to climb the ladder and complete one
    /// reprobe, it visits at most two adjacent bins. Sustained
    /// strengthen/weaken oscillation is impossible.
    #[test]
    fn converges_under_fixed_conditions(
        cfg in config_strategy(),
        deltas in proptest::collection::vec(0u64..25_000, 8),
    ) {
        // Monotone non-decreasing CE per bin (prefix sums).
        let mut ce_at_bin = Vec::with_capacity(deltas.len());
        let mut acc = 0u64;
        for d in &deltas {
            acc += d;
            ce_at_bin.push(acc);
        }
        let warmup = (cfg.max_bin as u64 + 2) * (cfg.cooldown_epochs as u64 + 2)
            + cfg.reprobe_epochs as u64
            + 4;
        let total = warmup + 60;
        let mut g = AdaptiveGovernor::new(cfg);
        let mut visited = std::collections::BTreeSet::new();
        for epoch in 0..total {
            g.observe_epoch(epoch, ce_at_bin[g.bin() as usize], 0);
            if epoch >= warmup {
                visited.insert(g.bin());
            }
        }
        prop_assert!(visited.len() <= 2, "visited {visited:?} after warmup");
        if visited.len() == 2 {
            let lo = *visited.iter().next().unwrap();
            let hi = *visited.iter().next_back().unwrap();
            prop_assert_eq!(hi - lo, 1, "non-adjacent bins {visited:?}");
        }
    }

    /// Invariant 6: a closed-loop trajectory is a pure function of
    /// `(config, response, environment, seed)` — the runner's
    /// counter-based RNG discipline leaves nothing schedule-dependent.
    /// The safety envelope also holds under the sampled trajectories.
    #[test]
    fn closed_loop_deterministic_and_safe(
        cfg in config_strategy(),
        env in environment_strategy(),
        true_margin in 0u32..1200,
        seed in any::<u64>(),
    ) {
        let response = MarginResponse::typical(true_margin);
        let mut g1 = AdaptiveGovernor::new(cfg);
        let mut g2 = AdaptiveGovernor::new(cfg);
        let run1 = run_closed_loop(&mut g1, &response, &env, seed, 120);
        let run2 = run_closed_loop(&mut g2, &response, &env, seed, 120);
        prop_assert_eq!(&run1, &run2);
        for rec in &run1 {
            prop_assert!(rec.bin_after <= cfg.max_bin);
            prop_assert!(rec.bin_after <= rec.bin_during + 1);
            if rec.ue > 0 {
                prop_assert!(
                    matches!(rec.decision, Decision::Retreat { .. }),
                    "epoch {}: UE without a retreat",
                    rec.epoch
                );
            }
        }
        // The budget governor saw exactly the sampled CE stream.
        let total_ce: u64 = run1.iter().map(|r| r.ce).sum();
        prop_assert_eq!(g1.budget().total_errors(), total_ce);
    }
}

/// Committed regression inputs: adversarial traces worth pinning
/// forever, independent of how the property strategies evolve.
mod regressions {
    use super::*;

    /// A UE on the very first epoch, at bin 0: the retreat must clamp
    /// at specification instead of underflowing.
    #[test]
    fn ue_at_specification_clamps() {
        let cfg = AdaptiveConfig::new(100, 10_000, 2, 6, 4, 3);
        let mut g = AdaptiveGovernor::new(cfg);
        assert_eq!(g.observe_epoch(0, 0, 1), Decision::Retreat { bins: 0 });
        assert_eq!(g.bin(), 0);
    }

    /// Alternating quiet/noisy epochs exactly at the thresholds: the
    /// reprobe ceiling must cap the flip-flop at one probe per window.
    #[test]
    fn threshold_edge_flip_flop_is_bounded() {
        let cfg = AdaptiveConfig::new(100, 101, 1, 8, 4, 1);
        let mut g = AdaptiveGovernor::new(cfg);
        let mut weakens = 0u64;
        for epoch in 0..100u64 {
            // At or below bin 1 the channel is quiet; above it, loud.
            let ce = if g.bin() <= 1 { 100 } else { 101 };
            if g.observe_epoch(epoch, ce, 0) == Decision::Weaken {
                weakens += 1;
            }
        }
        // 100 epochs / (8-epoch reprobe window + probe) allows at
        // most ~11 weakens; without the ceiling it would approach 50.
        assert!(weakens <= 12, "weakened {weakens} times in 100 epochs");
        assert!(g.bin() <= 2, "settled near the quiet region");
    }

    /// A max-retreat config recovering after a transient: the bin
    /// must re-climb once the window expires and conditions clear.
    #[test]
    fn recovers_after_transient_ue_burst() {
        let cfg = AdaptiveConfig::new(100, 10_000, 1, 4, 4, 4);
        let mut g = AdaptiveGovernor::new(cfg);
        for epoch in 0..12u64 {
            g.observe_epoch(epoch, 0, 0);
        }
        assert_eq!(g.bin(), 4, "climbed to the envelope");
        g.observe_epoch(12, 0, 2); // UE burst: full retreat
        assert_eq!(g.bin(), 0);
        let mut peak = 0u8;
        for epoch in 13..60u64 {
            g.observe_epoch(epoch, 0, 0);
            peak = peak.max(g.bin());
        }
        assert_eq!(peak, 4, "recovered to the envelope after the window");
    }

    /// Saturating CE counts (far past any threshold) must not panic
    /// or overflow the budget bookkeeping.
    #[test]
    fn extreme_error_counts_are_safe() {
        let cfg = AdaptiveConfig::new(0, 1, 1, 1, 6, 1);
        let mut g = AdaptiveGovernor::new(cfg);
        for epoch in 0..20u64 {
            g.observe_epoch(epoch, u64::MAX / 1024, 0);
        }
        assert_eq!(g.bin(), 0);
        assert!(g.budget().fallbacks() > 0, "budget exhausted every epoch");
    }
}
