//! Naive reference implementation of the channel controller.
//!
//! [`ReferenceController`] freezes the original scan-and-sort
//! algorithms that [`crate::controller::ChannelController`] used
//! before it moved to indexed, allocation-free structures:
//!
//! * `pick_next_read` is a pair of linear `min_by_key` scans over the
//!   pending-read `Vec` (ties broken by current vector position, which
//!   the `swap_remove` bookkeeping shuffles),
//! * completions live in a `HashMap<token, Picos>`,
//! * refresh catch-up is a `while` loop advancing one tREFI at a time,
//! * the write queue is an unsorted `Vec` with a per-drain
//!   `sort_unstable_by_key`.
//!
//! It exists purely as the referee for the differential property test
//! (`tests/differential.rs`): any op sequence must produce identical
//! latencies and statistics on both implementations. It deliberately
//! carries no telemetry — statistics are plain integers.

use crate::address::DramCoord;
use crate::config::{ChannelMode, MemoryConfig};
use crate::controller::ControllerStats;
use dram::timing::TimingParams;
use dram::Picos;
use std::collections::HashMap;

/// Bank-fairness bypass cap (same constant as the real controller).
const MAX_BYPASS: u32 = 64;

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    act_allowed_at: Picos,
    next_column_at: Picos,
    pre_allowed_at: Picos,
    last_use: Picos,
}

#[derive(Debug, Clone, Copy)]
struct PendingRead {
    token: u64,
    coord: DramCoord,
    arrival: Picos,
    bypasses: u32,
    tracked: bool,
}

/// The naive scan-and-sort controller (see module docs). API mirrors
/// [`crate::controller::ChannelController`] so the differential test
/// can drive both from one op sequence; token *values* are an opaque
/// implementation detail and differ between the two.
#[derive(Debug, Clone)]
pub struct ReferenceController {
    mode: ChannelMode,
    mem: MemoryConfig,
    banks: Vec<BankState>,
    bus_free_at: Picos,
    write_mode_until: Picos,
    next_refresh: Vec<Picos>,
    write_queue: Vec<DramCoord>,
    pending_reads: Vec<PendingRead>,
    completions: HashMap<u64, Picos>,
    next_token: u64,
    page_timeout_ps: Picos,
    stats: ControllerStats,
}

impl ReferenceController {
    /// Creates a reference controller for one channel.
    pub fn new(
        mode: ChannelMode,
        mem: MemoryConfig,
        page_timeout_ps: Picos,
    ) -> ReferenceController {
        let ranks = mem.ranks_per_channel();
        let refi = mode.read_timing.t_refi_ps();
        ReferenceController {
            mode,
            mem,
            banks: vec![BankState::default(); ranks * mem.banks_per_rank],
            bus_free_at: 0,
            write_mode_until: 0,
            next_refresh: (0..ranks).map(|r| refi + r as Picos * 100_000).collect(),
            write_queue: Vec::new(),
            pending_reads: Vec::new(),
            completions: HashMap::new(),
            next_token: 0,
            page_timeout_ps,
            stats: ControllerStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Pending (queued, not yet drained) writes.
    pub fn pending_writes(&self) -> usize {
        self.write_queue.len()
    }

    fn bank_index(&self, rank: usize, bank: usize) -> usize {
        rank * self.mem.banks_per_rank + bank
    }

    fn apply_refresh(&mut self, rank: usize, now: Picos) {
        if let Some(read_ranks) = self.mode.read_ranks {
            let first_read_rank = self.mem.ranks_per_channel() - read_ranks;
            if rank < first_read_rank {
                return; // self-refreshed original module
            }
        }
        let t = self.mode.read_timing;
        while self.next_refresh[rank] <= now {
            let start = self.next_refresh[rank];
            let end = start + t.t_rfc_ps();
            for b in 0..self.mem.banks_per_rank {
                let idx = self.bank_index(rank, b);
                let bank = &mut self.banks[idx];
                bank.act_allowed_at = bank.act_allowed_at.max(end);
                bank.next_column_at = bank.next_column_at.max(end);
                bank.open_row = None;
            }
            self.next_refresh[rank] += t.t_refi_ps();
            self.stats.refreshes += 1;
        }
    }

    fn read_rank(&self, home_rank: usize) -> usize {
        match self.mode.read_ranks {
            Some(n) => {
                let base = self.mem.ranks_per_channel() - n;
                base + home_rank % n
            }
            None => home_rank,
        }
    }

    /// Enqueues a read; see the real controller's `submit_read`.
    pub fn submit_read(&mut self, coord: DramCoord, arrival: Picos, tracked: bool) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        if !tracked {
            let queued_prefetches = self.pending_reads.iter().filter(|r| !r.tracked).count();
            if queued_prefetches >= 192 {
                return token;
            }
        }
        self.pending_reads.push(PendingRead {
            token,
            coord,
            arrival,
            bypasses: 0,
            tracked,
        });
        token
    }

    /// Schedules every queued read.
    pub fn process_reads(&mut self) {
        while !self.pending_reads.is_empty() {
            self.schedule_one_read();
        }
    }

    fn schedule_one_read(&mut self) {
        let pick = self.pick_next_read();
        let request = self.pending_reads.swap_remove(pick);
        for other in &mut self.pending_reads {
            if other.arrival < request.arrival {
                other.bypasses += 1;
            }
        }
        let done = self.serve_read(request.coord, request.arrival);
        if request.tracked {
            self.completions.insert(request.token, done);
        }
    }

    fn pick_next_read(&self) -> usize {
        let oldest = self
            .pending_reads
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.arrival)
            .map(|(i, _)| i)
            .expect("nonempty queue");
        if self.pending_reads[oldest].bypasses >= MAX_BYPASS {
            return oldest;
        }
        self.pending_reads
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                let idx = self.bank_index(self.read_rank(r.coord.rank), r.coord.bank);
                self.banks[idx].open_row == Some(r.coord.row)
            })
            .min_by_key(|(_, r)| r.arrival)
            .map(|(i, _)| i)
            .unwrap_or(oldest)
    }

    /// The completion time of a previously submitted tracked read.
    pub fn resolve_read(&mut self, token: u64) -> Picos {
        while !self.completions.contains_key(&token) {
            assert!(
                !self.pending_reads.is_empty(),
                "token submitted, tracked, and not yet resolved"
            );
            self.schedule_one_read();
        }
        self.completions.remove(&token).expect("just scheduled")
    }

    fn serve_read(&mut self, coord: DramCoord, arrival: Picos) -> Picos {
        let now = arrival.max(self.write_mode_until);
        let t = self.mode.read_timing;
        let rank = self.read_rank(coord.rank);
        self.apply_refresh(rank, now);

        let idx = if self.mode.fmr_read_choice {
            let total = self.mem.ranks_per_channel();
            let mirror = match self.mode.read_ranks {
                Some(n) if n > 1 => {
                    let base = total - n;
                    base + (rank - base + 1) % n
                }
                Some(_) => rank,
                None => (rank + total / 2) % total,
            };
            self.apply_refresh(mirror, now);
            let a = self.bank_index(rank, coord.bank);
            let b = self.bank_index(mirror, coord.bank);
            self.faster_bank(a, b, coord.row, now)
        } else {
            self.bank_index(rank, coord.bank)
        };

        let (data_end, hit) = self.column_access(idx, coord.row, now, &t, true);
        self.stats.reads += 1;
        if hit {
            self.stats.row_hits += 1;
        }
        let latency = data_end.saturating_sub(arrival);
        self.stats.read_latency_sum_ps += latency;
        data_end
    }

    fn faster_bank(&self, home: usize, mirror: usize, row: u64, now: Picos) -> usize {
        let open = |i: usize| {
            let bank = &self.banks[i];
            bank.open_row == Some(row) && now.saturating_sub(bank.last_use) <= self.page_timeout_ps
        };
        match (open(home), open(mirror)) {
            (true, _) => home,
            (false, true) => mirror,
            (false, false) => {
                let margin = self.mode.read_timing.t_rp_ps() + self.mode.read_timing.t_rcd_ps();
                if self.banks[mirror].pre_allowed_at + margin < self.banks[home].pre_allowed_at {
                    mirror
                } else {
                    home
                }
            }
        }
    }

    fn column_access(
        &mut self,
        idx: usize,
        row: u64,
        now: Picos,
        t: &TimingParams,
        is_read: bool,
    ) -> (Picos, bool) {
        let page_timeout = self.page_timeout_ps;
        let bank = &mut self.banks[idx];

        if bank.open_row.is_some() && now.saturating_sub(bank.last_use) > page_timeout {
            let closed_at = bank.pre_allowed_at.max(bank.last_use + page_timeout);
            bank.open_row = None;
            bank.act_allowed_at = bank.act_allowed_at.max(closed_at + t.t_rp_ps());
        }

        let cas = if is_read { t.t_cas_ps() } else { t.t_cwl_ps() };
        let (cmd_time, hit) = match bank.open_row {
            Some(open) if open == row => (now.max(bank.next_column_at), true),
            Some(_) => {
                let pre_at = now.max(bank.pre_allowed_at);
                let act_at = pre_at + t.t_rp_ps();
                self.stats.activates += 1;
                bank.open_row = Some(row);
                bank.pre_allowed_at = act_at + t.t_ras_ps();
                (act_at + t.t_rcd_ps(), false)
            }
            None => {
                let act_at = now.max(bank.act_allowed_at);
                self.stats.activates += 1;
                bank.open_row = Some(row);
                bank.pre_allowed_at = act_at + t.t_ras_ps();
                (act_at + t.t_rcd_ps(), false)
            }
        };
        let data_start = (cmd_time + cas).max(self.bus_free_at);
        let data_end = data_start + t.burst_ps();
        let effective_cmd = data_start - cas;
        self.bus_free_at = data_end;
        self.stats.bus_busy_ps += t.burst_ps();

        let bank = &mut self.banks[idx];
        bank.last_use = data_end;
        bank.next_column_at = effective_cmd + t.burst_ps();
        bank.pre_allowed_at = if is_read {
            bank.pre_allowed_at.max(effective_cmd + t.t_rtp_ps())
        } else {
            bank.pre_allowed_at.max(data_end + t.t_wr_ps())
        };
        (data_end, hit)
    }

    fn shadow_write(&mut self, idx: usize, row: u64, end: Picos, t: &TimingParams) {
        let bank = &mut self.banks[idx];
        if bank.open_row != Some(row) {
            self.stats.activates += 1;
        }
        bank.open_row = Some(row);
        bank.last_use = end;
        bank.next_column_at = bank.next_column_at.max(end);
        bank.pre_allowed_at = bank.pre_allowed_at.max(end + t.t_wr_ps());
    }

    /// Queues a write.
    pub fn enqueue_write(&mut self, coord: DramCoord) {
        self.write_queue.push(coord);
    }

    /// Enters write mode at `now`, draining pending writes (batched).
    pub fn drain_writes(&mut self, now: Picos) -> Picos {
        self.process_reads();
        let t = self.mode.write_timing;
        let mut queue = std::mem::take(&mut self.write_queue);
        if queue.is_empty() {
            return now;
        }
        self.stats.write_mode_entries += 1;
        queue.sort_unstable_by_key(|c| (c.rank, c.bank, c.row, c.column));

        let start = now.max(self.bus_free_at) + t.t_wtr_ps() + self.mode.turnaround_penalty_ps;
        self.bus_free_at = start;

        let batch = queue.len().min(self.mode.write_batch.max(1));
        let mut clock = start;
        for coord in queue.drain(..batch) {
            self.apply_refresh(coord.rank, start);
            let (end, hit) = self.column_access(
                self.bank_index(coord.rank, coord.bank),
                coord.row,
                start,
                &t,
                false,
            );
            self.stats.writes += 1;
            if hit {
                self.stats.row_hits += 1;
            }
            if self.mode.broadcast_copies > 0 {
                self.stats.broadcast_extra_cells += self.mode.broadcast_copies as u64;
                let total = self.mem.ranks_per_channel();
                let copy_rank = match self.mode.read_ranks {
                    Some(n) if n > 0 => total - n + coord.rank % n,
                    _ => (coord.rank + total / 2) % total,
                };
                if copy_rank != coord.rank {
                    self.shadow_write(self.bank_index(copy_rank, coord.bank), coord.row, end, &t);
                }
            }
            clock = clock.max(end);
        }
        self.write_queue = queue;

        let resume = clock + t.t_wtr_ps() + self.mode.turnaround_penalty_ps;
        self.bus_free_at = resume;
        if self.mode.turnaround_penalty_ps > 0 {
            self.write_mode_until = resume;
        }
        resume
    }
}
