//! Per-channel DDR4 memory controller.
//!
//! Models the Table IV controller: per-bank row-buffer state with the
//! hybrid page policy (close an idle row after a 200-cycle timeout),
//! data-bus serialization, refresh, and batched write drains with
//! read/write turnaround. The [`ChannelMode`] knobs turn the same
//! controller into the Commercial Baseline, FMR, Hetero-DMR, or
//! Hetero-DMR+FMR:
//!
//! * separate read-mode and write-mode timing sets (Hetero-DMR reads
//!   beyond spec, writes at spec),
//! * a per-switch turnaround penalty (the 1 µs frequency transition),
//! * large write batches fed by LLC cleaning and the victim writeback
//!   cache,
//! * read-rank restriction (only the Free Module is read), and
//! * FMR's read-from-the-faster-copy choice.
//!
//! # Scheduling structures
//!
//! The hot path is batched and data-oriented (the original
//! scan-and-sort forms survive as
//! [`crate::reference::ReferenceController`], the differential-test
//! referee):
//!
//! * the read queue is struct-of-arrays: parallel `Vec`s of arrival
//!   time, row, serving-bank index, bypass count, and token, and the
//!   single per-pick pass — a fused sweep that ages bypassed requests
//!   and rebuilds both cached pick candidates — is one tight
//!   branch-light loop over dense integer arrays instead of
//!   pointer-chasing index walks,
//! * both FR-FCFS candidates — the oldest request and the oldest row
//!   hit, keyed `(arrival, slot)` where the slot component reproduces
//!   the old first-position tie-break exactly, because slots mirror
//!   the `swap_remove` positions the scans used to walk — are cached
//!   minima, making the pick itself `O(1)`: submissions can only
//!   lower them (one compare, plus one bank probe for the hit
//!   candidate), and the fused sweep recomputes them for free,
//! * completions live in a token→slot slab (`Vec` + free list) rather
//!   than a `HashMap`,
//! * pending writes live in a sorted `Vec` keyed `(rank·bank, row,
//!   column)` with an unsorted append tail and a drain cursor:
//!   enqueue is a push, a drain sorts the live region once
//!   (duplicates land adjacent, reproducing the retired `BTreeMap`'s
//!   multiplicity groups in the same key order) and pops the oldest
//!   key in `O(1)` by advancing the cursor, and
//! * refresh catch-up is computed in closed form instead of walking
//!   one tREFI at a time.
//!
//! Statistics accrue into plain per-controller locals (no atomics in
//! the loop); [`ChannelController::stats`] folds the pending tallies
//! in on read, and run/window/bind boundaries flush them to the
//! telemetry handles in one batch.

use crate::address::DramCoord;
use crate::config::{ChannelMode, MemoryConfig};
use dram::timing::TimingParams;
use dram::Picos;
use telemetry::{bucket_index, Counter, Histogram, Scope, BUCKETS};

/// How many younger row-hit requests may bypass an older request
/// before age wins — Table IV's "FR-FCFS scheduling policy with bank
/// fairness".
const MAX_BYPASS: u32 = 64;

/// Token handed out for untracked (fire-and-forget) reads. Callers
/// never resolve these, so no completion slot is consumed.
const UNTRACKED_TOKEN: u64 = u64::MAX;

/// Sentinel for "no row open" in a bank's row-buffer slot. Real rows
/// come from address bits and can never reach `u64::MAX`.
const ROW_NONE: u64 = u64::MAX;

/// The controller's live metric handles. The hot loop never touches
/// these directly — events accrue into [`PendingTallies`] and reach
/// the handles in one batch per flush point.
///
/// Handles start *detached* (visible only through
/// [`ChannelController::stats`]); [`bind`](ControllerMetrics::bind)
/// rebinds them to a registry scope, folding in whatever was already
/// recorded, after which the same events are visible in registry
/// snapshots.
#[derive(Debug, Default)]
pub struct ControllerMetrics {
    reads: Counter,
    writes: Counter,
    activates: Counter,
    row_hits: Counter,
    wb_cache_hits: Counter,
    write_mode_entries: Counter,
    bus_busy_ps: Counter,
    read_latency_sum_ps: Counter,
    refreshes: Counter,
    broadcast_extra_cells: Counter,
    read_latency_ps: Histogram,
    /// Residency tap: bank-time-in-state totals published once by
    /// [`ChannelController::finalize_residency`] (the hot path accrues
    /// into a plain struct; only the finalized totals reach the
    /// registry).
    residency_active_bank_ps: Counter,
    residency_refresh_bank_ps: Counter,
    residency_self_refresh_bank_ps: Counter,
    residency_write_mode_ps: Counter,
}

impl ControllerMetrics {
    /// Rebind every handle to registry-backed metrics under `scope`,
    /// carrying forward values recorded while detached.
    pub fn bind(&mut self, scope: &Scope) {
        let rebind = |name: &str, old: &Counter| {
            let fresh = scope.counter(name);
            fresh.add(old.get());
            fresh
        };
        self.reads = rebind("reads", &self.reads);
        self.writes = rebind("writes", &self.writes);
        self.activates = rebind("activates", &self.activates);
        self.row_hits = rebind("row_hits", &self.row_hits);
        self.wb_cache_hits = rebind("wb_cache_hits", &self.wb_cache_hits);
        self.write_mode_entries = rebind("write_mode_entries", &self.write_mode_entries);
        self.bus_busy_ps = rebind("bus_busy_ps", &self.bus_busy_ps);
        self.read_latency_sum_ps = rebind("read_latency_sum_ps", &self.read_latency_sum_ps);
        self.refreshes = rebind("refreshes", &self.refreshes);
        self.broadcast_extra_cells = rebind("broadcast_extra_cells", &self.broadcast_extra_cells);
        self.residency_active_bank_ps =
            rebind("residency_active_bank_ps", &self.residency_active_bank_ps);
        self.residency_refresh_bank_ps =
            rebind("residency_refresh_bank_ps", &self.residency_refresh_bank_ps);
        self.residency_self_refresh_bank_ps = rebind(
            "residency_self_refresh_bank_ps",
            &self.residency_self_refresh_bank_ps,
        );
        self.residency_write_mode_ps =
            rebind("residency_write_mode_ps", &self.residency_write_mode_ps);
        let hist = scope.histogram("read_latency_ps");
        hist.merge_from(&self.read_latency_ps);
        self.read_latency_ps = hist;
    }

    /// Detached deep copy: same current values, independent future
    /// updates. Backing for `ChannelController: Clone` — a cloned
    /// controller must not alias its twin's metrics.
    fn fork(&self) -> Self {
        ControllerMetrics {
            reads: self.reads.fork(),
            writes: self.writes.fork(),
            activates: self.activates.fork(),
            row_hits: self.row_hits.fork(),
            wb_cache_hits: self.wb_cache_hits.fork(),
            write_mode_entries: self.write_mode_entries.fork(),
            bus_busy_ps: self.bus_busy_ps.fork(),
            read_latency_sum_ps: self.read_latency_sum_ps.fork(),
            refreshes: self.refreshes.fork(),
            broadcast_extra_cells: self.broadcast_extra_cells.fork(),
            read_latency_ps: self.read_latency_ps.fork(),
            residency_active_bank_ps: self.residency_active_bank_ps.fork(),
            residency_refresh_bank_ps: self.residency_refresh_bank_ps.fork(),
            residency_self_refresh_bank_ps: self.residency_self_refresh_bank_ps.fork(),
            residency_write_mode_ps: self.residency_write_mode_ps.fork(),
        }
    }

    /// The per-read latency distribution (arrival → last data beat).
    /// Pending (unflushed) window tallies are not yet visible here;
    /// they are published by the next flush point (run end, window
    /// boundary, or telemetry bind).
    pub fn read_latency_histogram(&self) -> &Histogram {
        &self.read_latency_ps
    }
}

/// Plain per-controller event tallies: the batched loop's counter
/// window. Everything here is a local integer add; the flush points
/// (run end, window boundary, telemetry bind) publish to the shared
/// [`ControllerMetrics`] handles in one batch.
#[derive(Debug, Clone)]
struct PendingTallies {
    reads: u64,
    writes: u64,
    activates: u64,
    row_hits: u64,
    wb_cache_hits: u64,
    write_mode_entries: u64,
    bus_busy_ps: Picos,
    read_latency_sum_ps: Picos,
    refreshes: u64,
    broadcast_extra_cells: u64,
    /// Locally bucketed read-latency samples (same log₂ buckets as
    /// [`Histogram`]), published via `Histogram::merge_parts`. The
    /// histogram's share of the latency sum is tracked separately from
    /// `read_latency_sum_ps` so each flushes exactly once.
    latency_buckets: Box<[u64; BUCKETS]>,
    latency_hist_sum: u64,
    latency_min: u64,
    latency_max: u64,
}

impl Default for PendingTallies {
    fn default() -> Self {
        PendingTallies {
            reads: 0,
            writes: 0,
            activates: 0,
            row_hits: 0,
            wb_cache_hits: 0,
            write_mode_entries: 0,
            bus_busy_ps: 0,
            read_latency_sum_ps: 0,
            refreshes: 0,
            broadcast_extra_cells: 0,
            latency_buckets: Box::new([0; BUCKETS]),
            latency_hist_sum: 0,
            latency_min: u64::MAX,
            latency_max: 0,
        }
    }
}

impl PendingTallies {
    #[inline]
    fn record_latency(&mut self, latency: u64) {
        self.read_latency_sum_ps += latency;
        self.latency_buckets[bucket_index(latency)] += 1;
        self.latency_hist_sum += latency;
        self.latency_min = self.latency_min.min(latency);
        self.latency_max = self.latency_max.max(latency);
    }

    /// Publishes every pending tally into the shared handles and
    /// resets the window.
    fn flush(&mut self, metrics: &ControllerMetrics) {
        let add = |counter: &Counter, v: &mut u64| {
            if *v > 0 {
                counter.add(*v);
                *v = 0;
            }
        };
        add(&metrics.reads, &mut self.reads);
        add(&metrics.writes, &mut self.writes);
        add(&metrics.activates, &mut self.activates);
        add(&metrics.row_hits, &mut self.row_hits);
        add(&metrics.wb_cache_hits, &mut self.wb_cache_hits);
        add(&metrics.write_mode_entries, &mut self.write_mode_entries);
        add(&metrics.bus_busy_ps, &mut self.bus_busy_ps);
        add(&metrics.read_latency_sum_ps, &mut self.read_latency_sum_ps);
        add(&metrics.refreshes, &mut self.refreshes);
        add(
            &metrics.broadcast_extra_cells,
            &mut self.broadcast_extra_cells,
        );
        if self.latency_min != u64::MAX {
            metrics.read_latency_ps.merge_parts(
                &self.latency_buckets[..],
                self.latency_hist_sum,
                self.latency_min,
                self.latency_max,
            );
            self.latency_buckets.fill(0);
            self.latency_hist_sum = 0;
            self.latency_min = u64::MAX;
            self.latency_max = 0;
        }
    }

    /// The aggregate view over this pending window alone.
    fn stats(&self) -> ControllerStats {
        ControllerStats {
            reads: self.reads,
            writes: self.writes,
            activates: self.activates,
            row_hits: self.row_hits,
            wb_cache_hits: self.wb_cache_hits,
            write_mode_entries: self.write_mode_entries,
            bus_busy_ps: self.bus_busy_ps,
            read_latency_sum_ps: self.read_latency_sum_ps,
            refreshes: self.refreshes,
            broadcast_extra_cells: self.broadcast_extra_cells,
        }
    }
}

/// Aggregate controller statistics — a snapshot view over
/// [`ControllerMetrics`] plus the pending window tallies, kept as a
/// plain value type for result assembly and comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControllerStats {
    /// Demand + prefetch reads served from DRAM.
    pub reads: u64,
    /// Writes drained to DRAM (including LLC-cleaning writes).
    pub writes: u64,
    /// Row activations.
    pub activates: u64,
    /// Column accesses that hit an open row.
    pub row_hits: u64,
    /// Loads serviced by the victim writeback cache (no DRAM access).
    pub wb_cache_hits: u64,
    /// Read→write→read mode round trips.
    pub write_mode_entries: u64,
    /// Total time the data bus carried bursts.
    pub bus_busy_ps: Picos,
    /// Sum of read latencies (arrival → last data beat).
    pub read_latency_sum_ps: Picos,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Extra DRAM-cell writes from broadcasting to copies.
    pub broadcast_extra_cells: u64,
}

impl ControllerStats {
    /// Mean read latency in picoseconds (0 if no reads).
    pub fn mean_read_latency_ps(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_sum_ps as f64 / self.reads as f64
        }
    }

    /// Row-buffer hit rate over all column accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// DRAMPower-style bank-state residency: per-bank time-in-state
/// (active, precharged, refreshing, self-refresh) and command edges,
/// accumulated from the same bank-state transitions the controller
/// already schedules around. This is the simulated-behaviour input
/// the `energy` crate's residency model consumes — deliberately *not*
/// part of [`ControllerStats`], which the frozen reference controller
/// must keep matching field-for-field.
///
/// All `*_bank_ps` fields are bank·picoseconds (one bank active for
/// 2 ps and two banks active for 1 ps both read 2). The precharged
/// residue is derived, not accumulated: see
/// [`precharged_bank_ps`](ResidencyStats::precharged_bank_ps).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Bank·time with a row open (activate state).
    pub active_bank_ps: Picos,
    /// Bank·time inside controller-issued tRFC refresh windows.
    pub refresh_bank_ps: Picos,
    /// Bank·time in self-refresh (Hetero-DMR's parked original-module
    /// ranks; zero for conventional modes).
    pub self_refresh_bank_ps: Picos,
    /// Channel time spent in write-mode drains, transitions included.
    pub write_mode_ps: Picos,
    /// Row-activate edges, explicit and broadcast-implied.
    pub act_edges: u64,
    /// Precharge edges: conflict closes, timeout closes, and the
    /// all-bank precharge a refresh implies.
    pub pre_edges: u64,
    /// Banks behind this accumulator (summed across channels when
    /// merged).
    pub banks: u64,
    /// The horizon the residency was finalized at (max when merged).
    pub end_ps: Picos,
}

impl ResidencyStats {
    /// Bank·time precharged-idle: whatever part of `banks × end_ps`
    /// is not active, refreshing, or self-refreshing.
    pub fn precharged_bank_ps(&self) -> Picos {
        (self.banks * self.end_ps)
            .saturating_sub(self.active_bank_ps)
            .saturating_sub(self.refresh_bank_ps)
            .saturating_sub(self.self_refresh_bank_ps)
    }

    /// Accumulates another channel's residency into this one.
    pub fn merge(&mut self, other: &ResidencyStats) {
        self.active_bank_ps += other.active_bank_ps;
        self.refresh_bank_ps += other.refresh_bank_ps;
        self.self_refresh_bank_ps += other.self_refresh_bank_ps;
        self.write_mode_ps += other.write_mode_ps;
        self.act_edges += other.act_edges;
        self.pre_edges += other.pre_edges;
        self.banks += other.banks;
        self.end_ps = self.end_ps.max(other.end_ps);
    }
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    /// Open row, or [`ROW_NONE`] when the bank is precharged.
    open_row: u64,
    /// When the currently open row was activated (meaningful only
    /// while a row is open); closes accrue `active_bank_ps`.
    open_since: Picos,
    /// Earliest next ACT (gated by tRP after precharge / tRFC).
    act_allowed_at: Picos,
    /// Earliest next column command (gated by tRCD after ACT and by
    /// tCCD pipelining between bursts).
    next_column_at: Picos,
    /// Earliest precharge (gated by tRAS / tRTP / write recovery).
    pre_allowed_at: Picos,
    /// Last column access (drives the hybrid page-policy timeout).
    last_use: Picos,
}

impl Default for BankState {
    fn default() -> Self {
        BankState {
            open_row: ROW_NONE,
            open_since: 0,
            act_allowed_at: 0,
            next_column_at: 0,
            pre_allowed_at: 0,
            last_use: 0,
        }
    }
}

/// A completion slot in the token slab.
#[derive(Debug, Clone, Copy)]
enum Completion {
    /// Slot available for reuse.
    Free,
    /// Submitted, not yet scheduled.
    Pending,
    /// Scheduled; holds the completion time until resolved.
    Done(Picos),
}

/// Pending-write sort key: `(rank·bank, row, column)` — rank and bank
/// packed into one word (both are far below 2³²), ordering identical
/// to the old `(rank, bank, row, column)` `BTreeMap` key.
type WriteKey = (u64, u64, u64);

/// One channel's memory controller.
#[derive(Debug)]
pub struct ChannelController {
    mode: ChannelMode,
    mem: MemoryConfig,
    banks: Vec<BankState>,
    bus_free_at: Picos,
    /// Reads are blocked until this time while a write drain runs.
    write_mode_until: Picos,
    /// Per-rank next scheduled refresh.
    next_refresh: Vec<Picos>,
    /// Pending writes: `[write_cursor..sorted_len)` is sorted by key,
    /// `[sorted_len..]` is the unsorted append tail. A drain compacts
    /// and re-sorts the live region once, then pops groups of equal
    /// keys (the old `BTreeMap` multiplicity) by advancing the cursor.
    write_queue: Vec<WriteKey>,
    write_cursor: usize,
    /// Length of the sorted prefix of `write_queue` (cursor included).
    write_sorted_len: usize,
    write_queue_len: usize,
    /// Struct-of-arrays read queue awaiting FR-FCFS scheduling; the
    /// four parallel `Vec`s share slot indexes and `swap_remove`
    /// together. `rq_token` doubles as the tracked flag
    /// ([`UNTRACKED_TOKEN`] = fire-and-forget).
    rq_arrival: Vec<Picos>,
    rq_row: Vec<u64>,
    rq_bank: Vec<u32>,
    rq_bypasses: Vec<u32>,
    rq_token: Vec<u64>,
    /// Cached minimum `(arrival, slot)` over the queue — the oldest
    /// request with the original first-position tie-break. Kept exact
    /// in `O(1)`: a submission can only lower it, and the post-pick
    /// aging sweep (which walks the queue regardless) recomputes it.
    oldest: Option<(Picos, u32)>,
    /// Cached minimum `(arrival, slot)` over queued requests whose
    /// serving bank currently holds their row open — the FR-FCFS
    /// row-hit pick. Exact between picks because bank state only
    /// changes inside [`schedule_one_read`](Self::schedule_one_read)
    /// (whose fused sweep rebuilds this against the post-serve bank
    /// states) and inside write drains (which run with the read queue
    /// empty); submissions update it in `O(1)` with one bank probe.
    best_hit: Option<(Picos, u32)>,
    /// First bank index a read can be served from (read-rank
    /// restriction); every queued `rq_bank` is ≥ this by construction.
    read_bank_start: usize,
    /// Queued untracked (prefetch) reads, for the drop threshold.
    untracked_queued: usize,
    /// Completion slab for tracked reads; tokens are slot indexes.
    completions: Vec<Completion>,
    free_slots: Vec<u32>,
    /// Hybrid page policy timeout.
    page_timeout_ps: Picos,
    /// Bank time-in-state accumulator (plain fields, not atomics: one
    /// add per row close keeps the hot path cheap).
    residency: ResidencyStats,
    /// Set once [`finalize_residency`](Self::finalize_residency) has
    /// closed the books; further calls are no-ops.
    residency_final: bool,
    pend: PendingTallies,
    metrics: ControllerMetrics,
}

impl Clone for ChannelController {
    /// Clones fork the metric handles: the copy starts from the same
    /// counts but records independently (aliasing would double-count).
    fn clone(&self) -> ChannelController {
        ChannelController {
            mode: self.mode,
            mem: self.mem,
            banks: self.banks.clone(),
            bus_free_at: self.bus_free_at,
            write_mode_until: self.write_mode_until,
            next_refresh: self.next_refresh.clone(),
            write_queue: self.write_queue.clone(),
            write_cursor: self.write_cursor,
            write_sorted_len: self.write_sorted_len,
            write_queue_len: self.write_queue_len,
            rq_arrival: self.rq_arrival.clone(),
            rq_row: self.rq_row.clone(),
            rq_bank: self.rq_bank.clone(),
            rq_bypasses: self.rq_bypasses.clone(),
            rq_token: self.rq_token.clone(),
            oldest: self.oldest,
            best_hit: self.best_hit,
            read_bank_start: self.read_bank_start,
            untracked_queued: self.untracked_queued,
            completions: self.completions.clone(),
            free_slots: self.free_slots.clone(),
            page_timeout_ps: self.page_timeout_ps,
            residency: self.residency,
            residency_final: self.residency_final,
            pend: self.pend.clone(),
            metrics: self.metrics.fork(),
        }
    }
}

impl ChannelController {
    /// Creates a controller for one channel.
    pub fn new(mode: ChannelMode, mem: MemoryConfig, page_timeout_ps: Picos) -> ChannelController {
        let ranks = mem.ranks_per_channel();
        let refi = mode.read_timing.t_refi_ps();
        let bank_count = ranks * mem.banks_per_rank;
        let read_bank_start = (ranks - mode.read_ranks.unwrap_or(ranks)) * mem.banks_per_rank;
        ChannelController {
            mode,
            mem,
            banks: vec![BankState::default(); bank_count],
            bus_free_at: 0,
            write_mode_until: 0,
            next_refresh: (0..ranks).map(|r| refi + r as Picos * 100_000).collect(),
            write_queue: Vec::new(),
            write_cursor: 0,
            write_sorted_len: 0,
            write_queue_len: 0,
            rq_arrival: Vec::new(),
            rq_row: Vec::new(),
            rq_bank: Vec::new(),
            rq_bypasses: Vec::new(),
            rq_token: Vec::new(),
            oldest: None,
            best_hit: None,
            read_bank_start,
            untracked_queued: 0,
            completions: Vec::new(),
            free_slots: Vec::new(),
            page_timeout_ps,
            residency: ResidencyStats::default(),
            residency_final: false,
            pend: PendingTallies::default(),
            metrics: ControllerMetrics::default(),
        }
    }

    /// The behaviour knobs this controller runs with.
    pub fn mode(&self) -> &ChannelMode {
        &self.mode
    }

    /// Statistics so far: the flushed handles plus the pending window,
    /// so the view is exact at any point.
    pub fn stats(&self) -> ControllerStats {
        let p = self.pend.stats();
        ControllerStats {
            reads: self.metrics.reads.get() + p.reads,
            writes: self.metrics.writes.get() + p.writes,
            activates: self.metrics.activates.get() + p.activates,
            row_hits: self.metrics.row_hits.get() + p.row_hits,
            wb_cache_hits: self.metrics.wb_cache_hits.get() + p.wb_cache_hits,
            write_mode_entries: self.metrics.write_mode_entries.get() + p.write_mode_entries,
            bus_busy_ps: self.metrics.bus_busy_ps.get() + p.bus_busy_ps,
            read_latency_sum_ps: self.metrics.read_latency_sum_ps.get() + p.read_latency_sum_ps,
            refreshes: self.metrics.refreshes.get() + p.refreshes,
            broadcast_extra_cells: self.metrics.broadcast_extra_cells.get()
                + p.broadcast_extra_cells,
        }
    }

    /// The live metric handles (e.g. the read-latency histogram).
    pub fn metrics(&self) -> &ControllerMetrics {
        &self.metrics
    }

    /// Publishes the pending window tallies into the metric handles.
    /// Called at run and window boundaries; cheap when nothing is
    /// pending.
    pub fn flush_metrics(&mut self) {
        self.pend.flush(&self.metrics);
    }

    /// Bank time-in-state residency accrued so far. Open rows and
    /// self-refresh time are only charged by
    /// [`finalize_residency`](Self::finalize_residency); call that
    /// first for end-of-run totals.
    pub fn residency(&self) -> ResidencyStats {
        self.residency
    }

    /// Closes the residency books at horizon `end`: charges still-open
    /// rows, credits the parked (read-rank-restricted) ranks with
    /// self-refresh time, stamps the bank count and horizon, and
    /// publishes the totals through the telemetry tap. Idempotent —
    /// only the first call accrues. Also flushes the pending counter
    /// window (this is the end-of-run boundary).
    pub fn finalize_residency(&mut self, end: Picos) -> ResidencyStats {
        self.flush_metrics();
        if !self.residency_final {
            self.residency_final = true;
            let banks_per_rank = self.mem.banks_per_rank;
            let first_read_rank = match self.mode.read_ranks {
                Some(n) => self.mem.ranks_per_channel() - n,
                None => 0,
            };
            for idx in 0..self.banks.len() {
                let bank = &mut self.banks[idx];
                if bank.open_row != ROW_NONE {
                    // Parked ranks precharge when they re-enter
                    // self-refresh after their last write burst;
                    // everyone else holds the row to the horizon.
                    let close = if idx / banks_per_rank < first_read_rank {
                        bank.last_use.min(end)
                    } else {
                        end
                    };
                    self.residency.active_bank_ps += close.saturating_sub(bank.open_since);
                    self.residency.pre_edges += 1;
                    bank.open_row = ROW_NONE;
                }
            }
            // Parked ranks self-refresh whenever the channel is not in
            // a write-mode drain (the only time they are woken).
            let sr_banks = (first_read_rank * banks_per_rank) as Picos;
            self.residency.self_refresh_bank_ps +=
                sr_banks * end.saturating_sub(self.residency.write_mode_ps);
            self.residency.banks = self.banks.len() as u64;
            self.residency.end_ps = self.residency.end_ps.max(end);
            self.metrics
                .residency_active_bank_ps
                .add(self.residency.active_bank_ps);
            self.metrics
                .residency_refresh_bank_ps
                .add(self.residency.refresh_bank_ps);
            self.metrics
                .residency_self_refresh_bank_ps
                .add(self.residency.self_refresh_bank_ps);
            self.metrics
                .residency_write_mode_ps
                .add(self.residency.write_mode_ps);
        }
        self.residency
    }

    /// Rebind this controller's metrics into `scope` (flushing and
    /// folding in any values already recorded), so registry snapshots
    /// see them.
    pub fn attach_telemetry(&mut self, scope: &Scope) {
        self.flush_metrics();
        self.metrics.bind(scope);
    }

    /// Record a read served by the channel's write-back cache instead
    /// of DRAM. The cache sits outside the controller, but the tally
    /// belongs with the rest of the channel's read statistics.
    pub fn note_wb_cache_hit(&mut self) {
        self.pend.wb_cache_hits += 1;
    }

    /// Pending (queued, not yet drained) writes.
    pub fn pending_writes(&self) -> usize {
        self.write_queue_len
    }

    /// Whether the write queue has reached its drain threshold.
    pub fn wants_write_mode(&self) -> bool {
        self.write_queue_len >= self.mode.write_high_watermark
    }

    fn bank_index(&self, rank: usize, bank: usize) -> usize {
        rank * self.mem.banks_per_rank + bank
    }

    /// Applies any refresh obligation for `rank` that has come due.
    /// Under read-rank restriction (Hetero-DMR), only the readable
    /// (Free Module) ranks are controller-refreshed — the others sit
    /// in self-refresh.
    fn apply_refresh(&mut self, rank: usize, now: Picos) {
        if let Some(read_ranks) = self.mode.read_ranks {
            let first_read_rank = self.mem.ranks_per_channel() - read_ranks;
            if rank < first_read_rank {
                return; // self-refreshed original module
            }
        }
        let due = self.next_refresh[rank];
        if due > now {
            return;
        }
        let t = self.mode.read_timing;
        let refi = t.t_refi_ps();
        // All due refreshes collapse into one bank update: maxing the
        // bank gates against each window's ascending end time equals
        // maxing against the last, and closing the row is idempotent.
        let catch_up = (now - due) / refi;
        let end = due + catch_up * refi + t.t_rfc_ps();
        for b in 0..self.mem.banks_per_rank {
            let idx = self.bank_index(rank, b);
            let bank = &mut self.banks[idx];
            if bank.open_row != ROW_NONE {
                // Refresh implies an all-bank precharge at the window
                // edge; the open row's active time ends there.
                self.residency.active_bank_ps += due.saturating_sub(bank.open_since);
                self.residency.pre_edges += 1;
            }
            bank.act_allowed_at = bank.act_allowed_at.max(end);
            bank.next_column_at = bank.next_column_at.max(end);
            bank.open_row = ROW_NONE;
        }
        self.next_refresh[rank] = due + (catch_up + 1) * refi;
        self.residency.refresh_bank_ps +=
            (catch_up + 1) * t.t_rfc_ps() * self.mem.banks_per_rank as Picos;
        self.pend.refreshes += catch_up + 1;
    }

    /// The rank a *read* is served from, honouring the Free-Module
    /// restriction.
    fn read_rank(&self, home_rank: usize) -> usize {
        match self.mode.read_ranks {
            Some(n) => {
                let base = self.mem.ranks_per_channel() - n;
                base + home_rank % n
            }
            None => home_rank,
        }
    }

    /// Enqueues a read into the FR-FCFS read queue. Returns a token to
    /// resolve the completion with (meaningless when `tracked` is
    /// false — fire-and-forget prefetch traffic).
    ///
    /// Prefetch requests are dropped when too many are already queued,
    /// as real prefetchers throttle under queue pressure.
    pub fn submit_read(&mut self, coord: DramCoord, arrival: Picos, tracked: bool) -> u64 {
        let token = if tracked {
            match self.free_slots.pop() {
                Some(slot) => {
                    self.completions[slot as usize] = Completion::Pending;
                    slot as u64
                }
                None => {
                    self.completions.push(Completion::Pending);
                    (self.completions.len() - 1) as u64
                }
            }
        } else {
            if self.untracked_queued >= 192 {
                return UNTRACKED_TOKEN;
            }
            self.untracked_queued += 1;
            UNTRACKED_TOKEN
        };
        let bank_idx = self.bank_index(self.read_rank(coord.rank), coord.bank) as u32;
        let pos = self.rq_arrival.len() as u32;
        self.rq_arrival.push(arrival);
        self.rq_row.push(coord.row);
        self.rq_bank.push(bank_idx);
        self.rq_bypasses.push(0);
        self.rq_token.push(token);
        let key = (arrival, pos);
        if self.oldest.is_none_or(|b| key < b) {
            self.oldest = Some(key);
        }
        if self.banks[bank_idx as usize].open_row == coord.row
            && self.best_hit.is_none_or(|b| key < b)
        {
            self.best_hit = Some(key);
        }
        token
    }

    /// Schedules every queued read (FR-FCFS: row hits first, oldest
    /// otherwise, with the bank-fairness bypass cap) and records
    /// completions for tracked tokens.
    pub fn process_reads(&mut self) {
        while !self.rq_arrival.is_empty() {
            self.schedule_one_read();
        }
    }

    /// Schedules exactly one queued read (FR-FCFS pick).
    fn schedule_one_read(&mut self) {
        let pick = self.pick_next_read() as usize;
        // Remove the pick from every parallel array; slots relocate by
        // `swap_remove`, mirroring the old AoS queue exactly.
        let arrival = self.rq_arrival.swap_remove(pick);
        let row = self.rq_row.swap_remove(pick);
        let bank_idx = self.rq_bank.swap_remove(pick);
        self.rq_bypasses.swap_remove(pick);
        let token = self.rq_token.swap_remove(pick);
        if token == UNTRACKED_TOKEN {
            self.untracked_queued -= 1;
        }
        // Serve before sweeping: the DRAM work below is what changes
        // bank state, and the sweep's row-hit rebuild must see the
        // state the *next* pick will be scheduled against. (The sweep
        // itself only reads arrivals, which the serve never touches,
        // so the two orders produce identical numbers.)
        let done = self.serve_read(bank_idx as usize, row, arrival);
        if token != UNTRACKED_TOKEN {
            self.completions[token as usize] = Completion::Done(done);
        }
        // One fused pass over the shrunk queue: age every request the
        // pick bypassed toward the fairness cap, rebuild the cached
        // oldest key, and rebuild the cached row-hit key against the
        // post-serve bank states. Strict `<` keeps the first occurrence
        // of each minimum arrival, which is exactly the minimum
        // `(arrival, slot)` pair.
        let ChannelController {
            banks,
            rq_arrival,
            rq_row,
            rq_bank,
            rq_bypasses,
            ..
        } = self;
        let mut best_arrival = Picos::MAX;
        let mut best_slot = u32::MAX;
        let mut hit_arrival = Picos::MAX;
        let mut hit_slot = u32::MAX;
        for (i, ((&a, byp), (&qrow, &qbank))) in rq_arrival
            .iter()
            .zip(rq_bypasses.iter_mut())
            .zip(rq_row.iter().zip(rq_bank.iter()))
            .enumerate()
        {
            *byp += (a < arrival) as u32;
            if a < best_arrival {
                best_arrival = a;
                best_slot = i as u32;
            }
            // `ROW_NONE` (closed bank) never equals a real row.
            if banks[qbank as usize].open_row == qrow && a < hit_arrival {
                hit_arrival = a;
                hit_slot = i as u32;
            }
        }
        self.oldest = (best_slot != u32::MAX).then_some((best_arrival, best_slot));
        self.best_hit = (hit_slot != u32::MAX).then_some((hit_arrival, hit_slot));
    }

    /// FR-FCFS pick: the oldest row-hit request, unless the oldest
    /// overall has been bypassed too often (bank fairness), in which
    /// case age wins. `O(1)`: both candidates are cached minima —
    /// rebuilt by the fused post-pick sweep and lowered incrementally
    /// by submissions (every queued bank index respects the read-rank
    /// restriction by construction).
    fn pick_next_read(&self) -> u32 {
        let (_, oldest) = self.oldest.expect("nonempty queue");
        if self.rq_bypasses[oldest as usize] >= MAX_BYPASS {
            return oldest;
        }
        match self.best_hit {
            Some((_, slot)) => slot,
            None => oldest,
        }
    }

    /// The completion time of a previously submitted tracked read.
    /// Schedules only as much of the queue as needed — younger
    /// requests stay pending so later arrivals can still be reordered
    /// against them.
    ///
    /// # Panics
    ///
    /// Panics if the token was never submitted as tracked (or resolved
    /// twice).
    pub fn resolve_read(&mut self, token: u64) -> Picos {
        loop {
            if let Some(Completion::Done(done)) = self.completions.get(token as usize).copied() {
                self.completions[token as usize] = Completion::Free;
                self.free_slots.push(token as u32);
                return done;
            }
            assert!(
                !self.rq_arrival.is_empty(),
                "token submitted, tracked, and not yet resolved"
            );
            self.schedule_one_read();
        }
    }

    /// Performs the DRAM work of one read at its scheduling point.
    /// `bank_idx` is the precomputed serving-bank index (read-rank
    /// restriction already applied).
    fn serve_read(&mut self, bank_idx: usize, row: u64, arrival: Picos) -> Picos {
        let now = arrival.max(self.write_mode_until);
        let t = self.mode.read_timing;
        let rank = bank_idx / self.mem.banks_per_rank;
        let bank = bank_idx % self.mem.banks_per_rank;
        self.apply_refresh(rank, now);

        // FMR: the block also lives in a paired rank; read whichever
        // copy's bank is in the faster state. Under Hetero-DMR+FMR the
        // pair lives inside the readable (Free Module) rank set.
        let idx = if self.mode.fmr_read_choice {
            let total = self.mem.ranks_per_channel();
            let mirror = match self.mode.read_ranks {
                Some(n) if n > 1 => {
                    let base = total - n;
                    base + (rank - base + 1) % n
                }
                Some(_) => rank,
                None => (rank + total / 2) % total,
            };
            self.apply_refresh(mirror, now);
            let b = self.bank_index(mirror, bank);
            self.faster_bank(bank_idx, b, row, now)
        } else {
            bank_idx
        };

        let (data_end, hit) = self.column_access(idx, row, now, &t, true);
        self.pend.reads += 1;
        self.pend.row_hits += hit as u64;
        let latency = data_end.saturating_sub(arrival);
        self.pend.record_latency(latency);
        data_end
    }

    /// Which of two candidate banks serves a read sooner (FMR's
    /// "faster state" choice): prefer whichever copy's row buffer
    /// already holds the requested row; when both would conflict,
    /// take the bank that frees up sooner (the "e.g., in row buffer"
    /// of the paper covers both effects).
    fn faster_bank(&self, home: usize, mirror: usize, row: u64, now: Picos) -> usize {
        let open = |i: usize| {
            let bank = &self.banks[i];
            bank.open_row == row && now.saturating_sub(bank.last_use) <= self.page_timeout_ps
        };
        match (open(home), open(mirror)) {
            (true, _) => home,
            (false, true) => mirror,
            (false, false) => {
                // Conflict on both: divert to the mirror only when it
                // frees up substantially sooner (a full precharge
                // earlier) — the copy is a spare, not a second port.
                let margin = self.mode.read_timing.t_rp_ps() + self.mode.read_timing.t_rcd_ps();
                if self.banks[mirror].pre_allowed_at + margin < self.banks[home].pre_allowed_at {
                    mirror
                } else {
                    home
                }
            }
        }
    }

    /// Performs one column access on bank `idx`, returning (last data
    /// beat time, was it a row hit).
    fn column_access(
        &mut self,
        idx: usize,
        row: u64,
        now: Picos,
        t: &TimingParams,
        is_read: bool,
    ) -> (Picos, bool) {
        let page_timeout = self.page_timeout_ps;
        let bank = &mut self.banks[idx];

        // Hybrid page policy: a row idle past the timeout was closed in
        // the background (precharge already complete by access time if
        // the idle gap also covered tRP).
        if bank.open_row != ROW_NONE && now.saturating_sub(bank.last_use) > page_timeout {
            let closed_at = bank.pre_allowed_at.max(bank.last_use + page_timeout);
            bank.open_row = ROW_NONE;
            bank.act_allowed_at = bank.act_allowed_at.max(closed_at + t.t_rp_ps());
            self.residency.active_bank_ps += closed_at.saturating_sub(bank.open_since);
            self.residency.pre_edges += 1;
        }

        let cas = if is_read { t.t_cas_ps() } else { t.t_cwl_ps() };
        let (cmd_time, hit) = if bank.open_row == row {
            (now.max(bank.next_column_at), true)
        } else if bank.open_row != ROW_NONE {
            // Conflict: PRE + ACT + column.
            let pre_at = now.max(bank.pre_allowed_at);
            let act_at = pre_at + t.t_rp_ps();
            self.pend.activates += 1;
            self.residency.active_bank_ps += pre_at.saturating_sub(bank.open_since);
            self.residency.pre_edges += 1;
            self.residency.act_edges += 1;
            bank.open_row = row;
            bank.open_since = act_at;
            bank.pre_allowed_at = act_at + t.t_ras_ps();
            (act_at + t.t_rcd_ps(), false)
        } else {
            let act_at = now.max(bank.act_allowed_at);
            self.pend.activates += 1;
            self.residency.act_edges += 1;
            bank.open_row = row;
            bank.open_since = act_at;
            bank.pre_allowed_at = act_at + t.t_ras_ps();
            (act_at + t.t_rcd_ps(), false)
        };
        // Serialize the burst on the data bus; the command is delayed
        // as needed so its data slot aligns with a free bus.
        let data_start = (cmd_time + cas).max(self.bus_free_at);
        let data_end = data_start + t.burst_ps();
        let effective_cmd = data_start - cas;
        self.bus_free_at = data_end;
        self.pend.bus_busy_ps += t.burst_ps();

        let bank = &mut self.banks[idx];
        bank.last_use = data_end;
        // Column commands pipeline at tCCD (= one burst).
        bank.next_column_at = effective_cmd + t.burst_ps();
        bank.pre_allowed_at = if is_read {
            bank.pre_allowed_at.max(effective_cmd + t.t_rtp_ps())
        } else {
            bank.pre_allowed_at.max(data_end + t.t_wr_ps())
        };
        (data_end, hit)
    }

    /// Applies a broadcast write's effect on a copy rank's bank: the
    /// row buffer takes the written row and the bank is busy through
    /// write recovery, with no bus occupancy of its own.
    fn shadow_write(&mut self, idx: usize, row: u64, end: Picos, t: &TimingParams) {
        let bank = &mut self.banks[idx];
        if bank.open_row != row {
            self.pend.activates += 1;
            if bank.open_row != ROW_NONE {
                self.residency.active_bank_ps += end.saturating_sub(bank.open_since);
                self.residency.pre_edges += 1;
            }
            self.residency.act_edges += 1;
            bank.open_since = end;
        }
        bank.open_row = row;
        bank.last_use = end;
        bank.next_column_at = bank.next_column_at.max(end);
        bank.pre_allowed_at = bank.pre_allowed_at.max(end + t.t_wr_ps());
    }

    /// Queues a write (an LLC writeback that missed or overflowed the
    /// victim writeback cache, or a drained victim / LLC-cleaning
    /// block fed in just before a drain).
    pub fn enqueue_write(&mut self, coord: DramCoord) {
        let rank_bank = ((coord.rank as u64) << 32) | coord.bank as u64;
        self.write_queue.push((rank_bank, coord.row, coord.column));
        self.write_queue_len += 1;
    }

    /// Enters write mode at `now`, draining all pending writes (up to
    /// the batch limit). Returns the time the channel is back in read
    /// mode.
    ///
    /// The sequence models Hetero-DMR's Figure 8a: (optional frequency
    /// transition down), batched writes at the write-mode timing,
    /// (optional transition back up).
    pub fn drain_writes(&mut self, now: Picos) -> Picos {
        // Reads already queued were issued before the drain decision.
        self.process_reads();
        let t = self.mode.write_timing;
        if self.write_queue_len == 0 {
            return now;
        }
        self.pend.write_mode_entries += 1;

        // Transition into write mode: wait for the bus, pay turnaround.
        let entered = now.max(self.bus_free_at);
        let start = entered + t.t_wtr_ps() + self.mode.turnaround_penalty_ps;
        self.bus_free_at = start;

        // Bring the queue into drain form: compact out the consumed
        // prefix, then sort the live region (the previously sorted
        // remainder plus the unsorted tail). Equal keys land adjacent,
        // so popping runs off the front reproduces the old sorted
        // `(key, multiplicity)` iteration exactly.
        if self.write_cursor > 0 {
            let consumed = self.write_cursor;
            self.write_queue.drain(..consumed);
            self.write_cursor = 0;
            self.write_sorted_len = self.write_sorted_len.saturating_sub(consumed);
        }
        if self.write_sorted_len < self.write_queue.len() {
            self.write_queue.sort_unstable();
        }

        // FR-FCFS freely reorders the drained batch for row locality:
        // the queue iterates grouped by bank and row, so most writes
        // issue as row hits. Anything beyond the batch stays queued.
        let batch = self.write_queue_len.min(self.mode.write_batch.max(1));
        let mut clock = start;
        let mut left = batch as u64;
        while left > 0 {
            let key = self.write_queue[self.write_cursor];
            // Multiplicity: how many identical keys follow (they are
            // adjacent after the sort).
            let mut count = 1u64;
            while self.write_cursor + (count as usize) < self.write_queue.len()
                && self.write_queue[self.write_cursor + count as usize] == key
            {
                count += 1;
            }
            let take = count.min(left);
            self.write_cursor += take as usize;
            left -= take;
            let (rank_bank, row, _column) = key;
            let rank = (rank_bank >> 32) as usize;
            let bank = (rank_bank & 0xFFFF_FFFF) as usize;
            for _ in 0..take {
                self.apply_refresh(rank, start);
                // Writes pipeline: each issues as soon as its bank and
                // the data bus allow (the bus serializes bursts; banks
                // overlap).
                let (end, hit) =
                    self.column_access(self.bank_index(rank, bank), row, start, &t, false);
                self.pend.writes += 1;
                self.pend.row_hits += hit as u64;
                if self.mode.broadcast_copies > 0 {
                    self.pend.broadcast_extra_cells += self.mode.broadcast_copies as u64;
                    // The broadcast transaction also lands in the copy
                    // rank(s): no extra bus time, but the copy bank's
                    // row buffer now holds the written row and the
                    // bank is busy through write recovery.
                    let total = self.mem.ranks_per_channel();
                    let copy_rank = match self.mode.read_ranks {
                        Some(n) if n > 0 => total - n + rank % n,
                        _ => (rank + total / 2) % total,
                    };
                    if copy_rank != rank {
                        self.shadow_write(self.bank_index(copy_rank, bank), row, end, &t);
                    }
                }
                clock = clock.max(end);
            }
        }
        self.write_queue_len -= batch;
        // Everything from the cursor on is sorted; future enqueues
        // append an unsorted tail after it.
        self.write_sorted_len = self.write_queue.len();

        // Transition back to read mode.
        let resume = clock + t.t_wtr_ps() + self.mode.turnaround_penalty_ps;
        self.residency.write_mode_ps += resume.saturating_sub(entered);
        self.bus_free_at = resume;
        // A conventional controller interleaves reads with its short
        // write bursts (they contend only for bus and banks, which
        // `column_access` already charges). A frequency-scaling design
        // cannot: the channel is locked at the safe setting for the
        // whole write mode, transitions included.
        if self.mode.turnaround_penalty_ps > 0 {
            self.write_mode_until = resume;
        }
        resume
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn coord(rank: usize, bank: usize, row: u64, col: u64) -> DramCoord {
        DramCoord {
            channel: 0,
            rank,
            bank,
            row,
            column: col,
        }
    }

    fn controller(mode: ChannelMode) -> ChannelController {
        let h = HierarchyConfig::hierarchy1();
        ChannelController::new(mode, h.memory, h.core.page_timeout_ps())
    }

    /// One-shot read through the pipeline API.
    fn read_now(c: &mut ChannelController, coord: DramCoord, now: Picos) -> Picos {
        let token = c.submit_read(coord, now, true);
        c.resolve_read(token)
    }

    #[test]
    fn row_hit_faster_than_row_miss() {
        let mut c = controller(ChannelMode::commercial_baseline());
        let first = read_now(&mut c, coord(0, 0, 10, 0), 0); // cold: ACT + CL
        let hit = read_now(&mut c, coord(0, 0, 10, 1), first) - first;
        let miss = read_now(&mut c, coord(0, 0, 99, 0), first * 4) - first * 4;
        assert!(hit < miss, "hit {hit} vs miss {miss}");
        assert_eq!(c.stats().row_hits, 1);
        assert_eq!(c.stats().activates, 2);
    }

    #[test]
    fn bus_serializes_parallel_banks() {
        let mut c = controller(ChannelMode::commercial_baseline());
        // Two same-time reads to different banks: second's data must
        // wait for the first burst to clear the bus.
        let a = read_now(&mut c, coord(0, 0, 1, 0), 0);
        let b = read_now(&mut c, coord(0, 1, 1, 0), 0);
        let t = ChannelMode::commercial_baseline().read_timing;
        assert!(b >= a + t.burst_ps());
    }

    #[test]
    fn faster_rate_reduces_latency_under_load() {
        let spec = ChannelMode::commercial_baseline();
        let fast_mode = spec
            .to_builder()
            .read_timing(dram::timing::MemorySetting::FreqLatMargin.timing())
            .build()
            .expect("fast reads over spec writes are valid");
        let mut slow = controller(spec);
        let mut fast = controller(fast_mode);
        // Saturate the bus: arrivals come faster than service.
        let (mut ts, mut tf) = (0, 0);
        for i in 0..2_000u64 {
            let arrival = i * 500; // one request every 0.5 ns
            ts = read_now(&mut slow, coord(0, 0, 5, i % 128), arrival);
            tf = read_now(&mut fast, coord(0, 0, 5, i % 128), arrival);
        }
        assert!(
            tf < ts,
            "4000 MT/s stream must finish sooner: fast {tf} vs slow {ts}"
        );
        // Bandwidth-bound: the ratio approaches the 4000/3200 rate gap.
        let ratio = ts as f64 / tf as f64;
        assert!(ratio > 1.15 && ratio < 1.30, "ratio {ratio}");
    }

    #[test]
    fn hybrid_policy_closes_idle_rows() {
        let mut c = controller(ChannelMode::commercial_baseline());
        let t = ChannelMode::commercial_baseline().read_timing;
        let first = read_now(&mut c, coord(0, 0, 10, 0), 0);
        // Long idle: the row times out and is closed in background, so
        // a different-row access skips the precharge.
        let late = first + 10_000_000;
        let miss = read_now(&mut c, coord(0, 0, 20, 0), late) - late;
        // Closed-page access: ACT + CL + burst, no tRP on the critical
        // path.
        let expect = t.t_rcd_ps() + t.t_cas_ps() + t.burst_ps();
        assert_eq!(miss, expect);
    }

    #[test]
    fn write_drain_contends_with_reads_on_the_bus() {
        let mut c = controller(ChannelMode::commercial_baseline());
        for i in 0..64 {
            c.enqueue_write(coord(0, (i % 16) as usize, 3, i));
        }
        let resume = c.drain_writes(1_000);
        assert!(resume > 1_000);
        assert_eq!(c.stats().writes, 64);
        assert_eq!(c.pending_writes(), 0);
        // A conventional controller interleaves: the read only waits
        // for the bus the drain booked, it is not frozen to `resume`.
        let mut idle = controller(ChannelMode::commercial_baseline());
        let unloaded = read_now(&mut idle, coord(0, 0, 3, 0), 2_000);
        let done = read_now(&mut c, coord(0, 0, 3, 0), 2_000);
        assert!(done > unloaded, "bus contention delays the read");
    }

    #[test]
    fn transition_designs_freeze_reads_during_write_mode() {
        let mut mode = ChannelMode::commercial_baseline();
        mode.turnaround_penalty_ps = 1_000_000;
        let mut c = controller(mode);
        for i in 0..64 {
            c.enqueue_write(coord(0, (i % 16) as usize, 3, i));
        }
        let resume = c.drain_writes(1_000);
        // A read arriving mid-write-mode waits for the channel to be
        // clocked back up.
        let done = read_now(&mut c, coord(0, 0, 3, 0), 2_000);
        assert!(done >= resume);
    }

    #[test]
    fn turnaround_penalty_applies_both_directions() {
        let mut base = controller(ChannelMode::commercial_baseline());
        let mut hdmr_mode = ChannelMode::commercial_baseline();
        hdmr_mode.turnaround_penalty_ps = 1_000_000;
        let mut hdmr = controller(hdmr_mode);
        for i in 0..8 {
            base.enqueue_write(coord(0, 0, 1, i));
            hdmr.enqueue_write(coord(0, 0, 1, i));
        }
        let base_resume = base.drain_writes(0);
        let hdmr_resume = hdmr.drain_writes(0);
        let delta = hdmr_resume - base_resume;
        assert!(
            (1_900_000..=2_100_000).contains(&delta),
            "two 1 us transitions expected, delta {delta}"
        );
    }

    #[test]
    fn write_batch_limit_leaves_remainder_queued() {
        let mut mode = ChannelMode::commercial_baseline();
        mode.write_batch = 10;
        let mut c = controller(mode);
        for i in 0..25 {
            c.enqueue_write(coord(0, 0, 1, i));
        }
        c.drain_writes(0);
        assert_eq!(c.stats().writes, 10);
        assert_eq!(c.pending_writes(), 15);
    }

    #[test]
    fn partial_drain_keeps_sorted_remainder_and_new_tail_ordered() {
        // A batch-limited drain leaves a sorted remainder; fresh
        // enqueues append an unsorted tail. The next drain must serve
        // the union in full key order (the old BTreeMap guarantee) —
        // checked against the frozen scan-and-sort referee.
        let mut mode = ChannelMode::commercial_baseline();
        mode.write_batch = 4;
        let h = HierarchyConfig::hierarchy1();
        let mut c = controller(mode);
        let mut r =
            crate::reference::ReferenceController::new(mode, h.memory, h.core.page_timeout_ps());
        for col in [9u64, 1, 7, 3, 5, 8, 2] {
            c.enqueue_write(coord(0, 0, 1, col));
            r.enqueue_write(coord(0, 0, 1, col));
        }
        assert_eq!(c.drain_writes(0), r.drain_writes(0)); // serves 1,2,3,5
        assert_eq!(c.pending_writes(), 3);
        c.enqueue_write(coord(0, 0, 1, 0)); // unsorted tail, lowest key
        r.enqueue_write(coord(0, 0, 1, 0));
        assert_eq!(
            c.drain_writes(10_000_000),
            r.drain_writes(10_000_000),
            "second drain must serve remainder + tail in key order"
        );
        assert_eq!(c.pending_writes(), 0);
        assert_eq!(c.stats().writes, 8);
        assert_eq!(c.stats(), r.stats());
    }

    #[test]
    fn read_rank_restriction_hits_free_module_only() {
        let mut mode = ChannelMode::commercial_baseline();
        mode.read_ranks = Some(2); // ranks 2 and 3 hold the copies
        let mut c = controller(mode);
        // Reads to home ranks 0..3 must all land on ranks 2/3: verify
        // via bank state — read rank 0 then rank 2 with the same
        // bank/row; the second is a row hit because they share a bank.
        let first = read_now(&mut c, coord(0, 5, 77, 0), 0);
        let _second = read_now(&mut c, coord(2, 5, 77, 1), first);
        assert_eq!(c.stats().row_hits, 1);
    }

    #[test]
    fn fmr_choice_prefers_open_row_copy() {
        let mut mode = ChannelMode::commercial_baseline();
        mode.fmr_read_choice = true;
        let mut c = controller(mode);
        // Open row 10 on rank 0 bank 0.
        let t0 = read_now(&mut c, coord(0, 0, 10, 0), 0);
        // Now rank 2 (mirror) bank 0 is cold; a read to row 10 rank 2
        // should be served by rank 0's open row → row hit.
        let _ = read_now(&mut c, coord(2, 0, 10, 1), t0);
        assert_eq!(c.stats().row_hits, 1);
    }

    #[test]
    fn broadcast_copies_counted_not_timed() {
        let mut mode = ChannelMode::commercial_baseline();
        mode.broadcast_copies = 1;
        let mut with = controller(mode);
        let mut without = controller(ChannelMode::commercial_baseline());
        for i in 0..16 {
            with.enqueue_write(coord(0, 0, 1, i));
            without.enqueue_write(coord(0, 0, 1, i));
        }
        let a = with.drain_writes(0);
        let b = without.drain_writes(0);
        assert_eq!(a, b, "broadcast writes cost no extra bus time");
        assert_eq!(with.stats().broadcast_extra_cells, 16);
        assert_eq!(without.stats().broadcast_extra_cells, 0);
    }

    #[test]
    fn refresh_happens_periodically() {
        let mut c = controller(ChannelMode::commercial_baseline());
        let refi = ChannelMode::commercial_baseline().read_timing.t_refi_ps();
        let mut t = 0;
        for i in 0..1_000u64 {
            t = read_now(&mut c, coord(0, 0, i % 4, 0), t.max(i * refi / 100));
        }
        assert!(c.stats().refreshes > 5, "refreshes {}", c.stats().refreshes);
    }

    #[test]
    fn empty_drain_is_noop() {
        let mut c = controller(ChannelMode::commercial_baseline());
        assert_eq!(c.drain_writes(500), 500);
        assert_eq!(c.stats().write_mode_entries, 0);
    }

    #[test]
    fn residency_decomposes_and_matches_activates() {
        let mut c = controller(ChannelMode::commercial_baseline());
        let mut t = 0;
        for i in 0..500u64 {
            t = read_now(
                &mut c,
                coord(0, (i % 16) as usize, i % 8, i % 64),
                t + 2_000,
            );
        }
        for i in 0..64 {
            c.enqueue_write(coord(1, (i % 16) as usize, 3, i));
        }
        let resume = c.drain_writes(t);
        let r = c.finalize_residency(resume + 1_000_000);
        // Every activate the stats counted opened a row the residency
        // tracked.
        assert_eq!(r.act_edges, c.stats().activates);
        assert!(r.active_bank_ps > 0);
        assert!(r.pre_edges > 0);
        assert!(r.write_mode_ps > 0);
        assert_eq!(r.self_refresh_bank_ps, 0, "no parked ranks here");
        // The four states partition bank-time exactly (precharged is
        // the derived residue).
        let total = r.banks * r.end_ps;
        assert!(r.active_bank_ps + r.refresh_bank_ps <= total);
        assert_eq!(
            r.active_bank_ps + r.refresh_bank_ps + r.self_refresh_bank_ps + r.precharged_bank_ps(),
            total
        );
        // Finalizing again must not double-charge.
        assert_eq!(c.finalize_residency(resume + 5_000_000), r);
    }

    #[test]
    fn residency_parks_restricted_ranks_in_self_refresh() {
        let mut mode = ChannelMode::commercial_baseline();
        mode.read_ranks = Some(2);
        let mut c = controller(mode);
        let end: Picos = 100_000_000;
        let _ = read_now(&mut c, coord(0, 0, 1, 0), 0);
        let r = c.finalize_residency(end);
        let h = HierarchyConfig::hierarchy1();
        let parked = (h.memory.ranks_per_channel() - 2) * h.memory.banks_per_rank;
        assert_eq!(r.self_refresh_bank_ps, parked as Picos * end);
    }

    #[test]
    fn completion_slots_recycle() {
        let mut c = controller(ChannelMode::commercial_baseline());
        // Sequential submit/resolve keeps reusing one slot; the slab
        // never grows past the outstanding count.
        for i in 0..100u64 {
            let t = c.submit_read(coord(0, 0, i % 8, i), i * 700, true);
            c.resolve_read(t);
        }
        assert_eq!(c.completions.len(), 1);
        // Outstanding tokens are distinct.
        let a = c.submit_read(coord(0, 0, 1, 0), 100_000, true);
        let b = c.submit_read(coord(0, 0, 1, 1), 100_100, true);
        assert_ne!(a, b);
        c.resolve_read(b);
        c.resolve_read(a);
    }

    #[test]
    fn stats_fold_pending_and_flush_is_idempotent() {
        // stats() must be exact before, between, and after flushes —
        // the flushed handles and the pending window always partition
        // the event totals.
        let mut c = controller(ChannelMode::commercial_baseline());
        let t0 = read_now(&mut c, coord(0, 0, 3, 0), 0);
        let before = c.stats();
        assert_eq!(before.reads, 1);
        c.flush_metrics();
        assert_eq!(c.stats(), before);
        c.flush_metrics();
        assert_eq!(c.stats(), before);
        let _ = read_now(&mut c, coord(0, 0, 3, 1), t0);
        let after = c.stats();
        assert_eq!(after.reads, 2);
        assert_eq!(after.row_hits, before.row_hits + 1);
        // The histogram agrees with the scalar view once flushed.
        c.flush_metrics();
        let hist = c.metrics().read_latency_histogram();
        assert_eq!(hist.count(), after.reads);
        assert_eq!(hist.sum(), after.read_latency_sum_ps);
    }
}
