//! The workload-to-simulator interface.
//!
//! Workload generators produce a stream of memory operations annotated
//! with the amount of compute between them; the simulator turns that
//! into time using its core and memory models.

/// One memory operation in a core's dynamic instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Byte address accessed (64-byte-block granularity is applied by
    /// the caches).
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub is_write: bool,
    /// Non-memory instructions executed since the previous memory
    /// operation (the compute gap).
    pub gap_instructions: u32,
}

impl MemOp {
    /// A load of `addr` after `gap` non-memory instructions.
    pub fn load(addr: u64, gap: u32) -> MemOp {
        MemOp {
            addr,
            is_write: false,
            gap_instructions: gap,
        }
    }

    /// A store to `addr` after `gap` non-memory instructions.
    pub fn store(addr: u64, gap: u32) -> MemOp {
        MemOp {
            addr,
            is_write: true,
            gap_instructions: gap,
        }
    }

    /// The 64-byte block address.
    pub fn block(&self) -> u64 {
        self.addr >> 6
    }
}

/// A (possibly infinite) stream of memory operations for one core.
///
/// Implementations must be deterministic for a given construction seed
/// so experiments are reproducible.
pub trait AccessStream {
    /// The next operation, or `None` when the workload is finished.
    fn next_op(&mut self) -> Option<MemOp>;
}

/// Blanket impl so iterators of ops can be used directly.
impl<I: Iterator<Item = MemOp>> AccessStream for I {
    fn next_op(&mut self) -> Option<MemOp> {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_address_is_64_byte_aligned() {
        assert_eq!(MemOp::load(0, 1).block(), 0);
        assert_eq!(MemOp::load(63, 1).block(), 0);
        assert_eq!(MemOp::load(64, 1).block(), 1);
        assert_eq!(MemOp::store(128 + 5, 1).block(), 2);
    }

    #[test]
    fn iterators_are_streams() {
        let mut s = vec![MemOp::load(0, 1), MemOp::store(64, 2)].into_iter();
        assert_eq!(s.next_op(), Some(MemOp::load(0, 1)));
        assert_eq!(s.next_op(), Some(MemOp::store(64, 2)));
        assert_eq!(s.next_op(), None);
    }
}
