//! Hardware prefetchers (Table IV: stride with configurable degree,
//! next-line with auto turn-off).
//!
//! The trace has no program counters, so the stride detector operates
//! on the block-address stream the way a region-based prefetcher
//! would: it confirms a stride after two consecutive repeats and then
//! predicts `degree` blocks ahead. The next-line component tracks its
//! own usefulness and turns itself off when accuracy drops — the
//! "auto turn-off" of Table IV.

/// How many independent streams the detector tracks (HPC kernels walk
/// several operand arrays concurrently).
const TRACKED_STREAMS: usize = 8;

/// A block must land within this distance of a tracked stream's last
/// access to be attributed to it.
const REGION_RADIUS: i64 = 16;

#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    last_block: u64,
    stride: i64,
    confirmations: u32,
    lru: u64,
}

/// The stride + next-line prefetch engine attached to L2.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    degree: u32,
    streams: Vec<StreamEntry>,
    tick: u64,
    /// Next-line usefulness tracking.
    next_line_on: bool,
    next_line_issued: u64,
    next_line_useful: u64,
    /// Blocks predicted by next-line, awaiting a use.
    pending_next_line: Vec<u64>,
    issued: u64,
}

impl Prefetcher {
    /// Creates a prefetcher predicting `degree` blocks ahead once a
    /// stride is confirmed.
    pub fn new(degree: u32) -> Prefetcher {
        Prefetcher {
            degree,
            streams: Vec::with_capacity(TRACKED_STREAMS),
            tick: 0,
            next_line_on: true,
            next_line_issued: 0,
            next_line_useful: 0,
            pending_next_line: Vec::new(),
            issued: 0,
        }
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Whether the next-line component is currently enabled.
    pub fn next_line_enabled(&self) -> bool {
        self.next_line_on
    }

    /// Observes a demand access to `block` (64-byte block address) and
    /// returns the blocks to prefetch. Convenience form of
    /// [`observe_into`](Self::observe_into) that allocates the output.
    pub fn observe(&mut self, block: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.observe_into(block, &mut out);
        out
    }

    /// Observes a demand access to `block` (64-byte block address) and
    /// appends the blocks to prefetch to `out` (the hot loop lends a
    /// reusable scratch buffer instead of allocating per access).
    ///
    /// Detection is region-based: the access is attributed to the
    /// tracked stream whose last access is nearest (within a 16-block
    /// region radius), so several interleaved operand streams train
    /// independently.
    pub fn observe_into(&mut self, block: u64, out: &mut Vec<u64>) {
        self.tick += 1;
        let issued_before = out.len();

        // Credit next-line predictions that proved useful.
        if let Some(pos) = self.pending_next_line.iter().position(|&b| b == block) {
            self.pending_next_line.swap_remove(pos);
            self.next_line_useful += 1;
        }

        // Attribute to the nearest tracked stream.
        let nearest = self
            .streams
            .iter_mut()
            .filter(|s| (block as i64 - s.last_block as i64).abs() <= REGION_RADIUS)
            .min_by_key(|s| (block as i64 - s.last_block as i64).unsigned_abs());
        let mut stream_fired = false;
        if let Some(entry) = nearest {
            let stride = block as i64 - entry.last_block as i64;
            if stride != 0 && stride == entry.stride {
                entry.confirmations += 1;
            } else if stride != 0 {
                entry.confirmations = 0;
                entry.stride = stride;
            }
            entry.last_block = block;
            entry.lru = self.tick;
            if entry.confirmations >= 1 {
                stream_fired = true;
                let stride = entry.stride;
                for k in 1..=self.degree as i64 {
                    let target = block as i64 + stride * k;
                    if target >= 0 {
                        out.push(target as u64);
                    }
                }
            }
        } else {
            // New stream: evict the least recently used tracker.
            let entry = StreamEntry {
                last_block: block,
                stride: 0,
                confirmations: 0,
                lru: self.tick,
            };
            if self.streams.len() < TRACKED_STREAMS {
                self.streams.push(entry);
            } else if let Some(victim) = self.streams.iter_mut().min_by_key(|s| s.lru) {
                *victim = entry;
            }
        }

        // Next-line prediction (degree 1) with auto turn-off: disable
        // when fewer than 1/8 of recent predictions were used. It
        // stands down while a stride stream is firing.
        if self.next_line_on && !stream_fired {
            out.push(block + 1);
            self.next_line_issued += 1;
            if self.pending_next_line.len() < 64 {
                self.pending_next_line.push(block + 1);
            }
            if self.next_line_issued >= 256 {
                if self.next_line_useful * 8 < self.next_line_issued {
                    self.next_line_on = false;
                }
                self.next_line_issued = 0;
                self.next_line_useful = 0;
                self.pending_next_line.clear();
            }
        }

        self.issued += (out.len() - issued_before) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_unit_stride_after_confirmation() {
        let mut p = Prefetcher::new(4);
        assert!(p.observe(100).iter().all(|&b| b == 101)); // next-line only
        let _ = p.observe(101);
        let out = p.observe(102); // stride 1 confirmed twice
        assert_eq!(out, vec![103, 104, 105, 106]);
    }

    #[test]
    fn detects_large_strides() {
        let mut p = Prefetcher::new(2);
        p.observe(0);
        p.observe(16);
        let out = p.observe(32);
        assert!(out.contains(&48) && out.contains(&64), "{out:?}");
    }

    #[test]
    fn random_stream_earns_no_stride_prefetch() {
        let mut p = Prefetcher::new(4);
        let blocks = [5u64, 900, 17, 4400, 2, 777];
        let mut stride_issued = 0;
        for &b in &blocks {
            let out = p.observe(b);
            stride_issued += out.iter().filter(|&&x| x != b + 1).count();
        }
        assert_eq!(stride_issued, 0);
    }

    #[test]
    fn next_line_turns_off_when_useless() {
        let mut p = Prefetcher::new(4);
        assert!(p.next_line_enabled());
        // An irregular stream never uses the next-line guess.
        for i in 0..600u64 {
            p.observe((i.wrapping_mul(2654435761)) >> 7);
        }
        assert!(!p.next_line_enabled(), "next-line should auto turn off");
    }

    #[test]
    fn next_line_stays_on_for_sequential_code() {
        let mut p = Prefetcher::new(4);
        for i in 0..300u64 {
            p.observe(i);
        }
        assert!(p.next_line_enabled());
    }

    #[test]
    fn negative_targets_are_dropped() {
        let mut p = Prefetcher::new(4);
        p.observe(10);
        p.observe(7);
        let out = p.observe(4); // stride -3 confirmed
        assert!(out.iter().all(|&b| b < 10), "{out:?}");
        // 4-3k for k=1..4 → 1, then negative ones dropped.
        assert!(out.contains(&1));
    }
}
