//! Event-driven DDR4 memory-hierarchy simulator.
//!
//! This crate stands in for the paper's gem5 + Ramulator stack
//! (Table IV): a multi-core node with private L1/L2 caches, stride and
//! next-line prefetchers, a CAT-partitioned L3, and per-channel DDR4
//! memory controllers with FR-FCFS scheduling, a hybrid page policy,
//! XOR-based bank mapping, 256-entry read / 128-entry write queues,
//! batched write drains, and the per-channel 128 KB 64-way victim
//! writeback cache that both the Commercial Baseline and Hetero-DMR
//! configurations carry.
//!
//! The simulator is request-granular rather than cycle-granular: every
//! DRAM command's *timing* is modelled from [`dram::TimingParams`]
//! (tRCD/tRP/tRAS/CL/burst/tFAW/…, quantized to the clock), while the
//! out-of-order core is approximated by a ROB/MSHR-limited
//! memory-level-parallelism model. That is the level of detail the
//! paper's evaluation actually exercises — its experiments vary data
//! rate and the four latency parameters and measure relative
//! performance.
//!
//! Key types:
//!
//! * [`config::HierarchyConfig`] — Hierarchy1/Hierarchy2 of Table III,
//! * [`config::ChannelMode`] — the timing/behaviour knobs a memory
//!   design sets (spec vs margin timing, read/write-mode split, rank
//!   restriction, write batch size, turnaround penalty),
//! * [`node::NodeSim`] — the full node,
//! * [`trace::AccessStream`] — the workload interface,
//! * [`result::SimResult`] — measured outputs.

pub mod address;
pub mod cache;
pub mod config;
pub mod controller;
pub mod core;
pub mod node;
pub mod prefetch;
pub mod reference;
pub mod result;
pub mod trace;
pub mod wbcache;

pub use config::{ChannelMode, CoreConfig, HierarchyConfig, MemoryConfig};
pub use controller::ResidencyStats;
pub use node::{NodeSim, RunCursor};
pub use result::SimResult;
pub use trace::{AccessStream, MemOp};
