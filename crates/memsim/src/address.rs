//! Physical-address → DRAM-coordinate mapping.
//!
//! Table IV: "XOR-based mapping function similar to Intel Skylake" —
//! bank bits are XOR-folded with higher-order row bits so strided
//! streams spread across banks, plus channel interleaving at block
//! granularity.

/// Coordinates of a 64-byte block in the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramCoord {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel (across all modules).
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Column (block) within the row.
    pub column: u64,
}

/// The address mapper: block-interleaved channels, XOR-folded banks.
#[derive(Debug, Clone, Copy)]
pub struct AddressMapping {
    channels: usize,
    ranks_per_channel: usize,
    banks_per_rank: usize,
    /// Blocks per row (a DDR4 row is typically 8 KB = 128 blocks).
    blocks_per_row: u64,
}

impl AddressMapping {
    /// Creates a mapping.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `channels`,
    /// `ranks_per_channel`, `banks_per_rank`, or `blocks_per_row` is
    /// not a power of two.
    pub fn new(channels: usize, ranks_per_channel: usize, banks_per_rank: usize) -> AddressMapping {
        let m = AddressMapping {
            channels,
            ranks_per_channel,
            banks_per_rank,
            blocks_per_row: 128,
        };
        for (name, v) in [
            ("channels", channels),
            ("ranks_per_channel", ranks_per_channel),
            ("banks_per_rank", banks_per_rank),
        ] {
            assert!(
                v > 0 && v.is_power_of_two(),
                "{name} must be a power of two"
            );
        }
        m
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Ranks per channel.
    pub fn ranks_per_channel(&self) -> usize {
        self.ranks_per_channel
    }

    /// Banks per rank.
    pub fn banks_per_rank(&self) -> usize {
        self.banks_per_rank
    }

    /// Maps a byte address to its DRAM coordinates.
    ///
    /// Bit layout (block address, low→high): channel | column | bank |
    /// rank | row, with the bank bits XORed against the low row bits
    /// (Skylake-style) to spread row-strided streams across banks.
    pub fn map(&self, addr: u64) -> DramCoord {
        let mut block = addr >> 6;
        let channel = (block % self.channels as u64) as usize;
        block /= self.channels as u64;
        let column = block % self.blocks_per_row;
        block /= self.blocks_per_row;
        let bank_raw = block % self.banks_per_rank as u64;
        block /= self.banks_per_rank as u64;
        let rank = (block % self.ranks_per_channel as u64) as usize;
        block /= self.ranks_per_channel as u64;
        let row = block;
        // XOR-fold: permute the bank with the row's low bits.
        let bank = ((bank_raw ^ row) % self.banks_per_rank as u64) as usize;
        DramCoord {
            channel,
            rank,
            bank,
            row,
            column,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(4, 4, 16)
    }

    #[test]
    fn coordinates_in_range() {
        let m = mapping();
        for i in 0..10_000u64 {
            let c = m.map(i * 64 * 7 + 13);
            assert!(c.channel < 4);
            assert!(c.rank < 4);
            assert!(c.bank < 16);
            assert!(c.column < 128);
        }
    }

    #[test]
    fn sequential_blocks_interleave_channels() {
        let m = mapping();
        let channels: Vec<usize> = (0..8u64).map(|i| m.map(i * 64).channel).collect();
        assert_eq!(channels, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn same_row_shares_bank_and_row() {
        let m = mapping();
        // Two consecutive blocks in the same channel are same row/bank
        // until the row boundary.
        let a = m.map(0);
        let b = m.map(4 * 64); // next block in channel 0
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn xor_fold_spreads_row_strides() {
        // A stream striding by exactly one row (same raw bank bits)
        // must hit different banks thanks to the XOR fold.
        let m = mapping();
        let row_stride = 64 * 4 * 128 * 16 * 4; // channel*col*bank*rank span
        let banks: std::collections::HashSet<usize> =
            (0..8u64).map(|i| m.map(i * row_stride).bank).collect();
        assert!(
            banks.len() > 4,
            "XOR fold should spread banks, got {banks:?}"
        );
    }

    #[test]
    fn distinct_addresses_distinct_coords() {
        let m = mapping();
        let a = m.map(0);
        let b = m.map(64 * 4 * 128); // one full row further in channel 0
        assert_eq!(a.channel, b.channel);
        assert!(a.bank != b.bank || a.row != b.row);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = AddressMapping::new(3, 4, 16);
    }
}
