//! Simulator configuration: Tables III and IV of the paper.

use dram::rate::DataRate;
use dram::timing::{MemorySetting, TimingParams};
use dram::Picos;
use std::fmt;

/// Why a memory configuration could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A structural count or capacity that must be at least 1 is 0.
    ZeroField(&'static str),
    /// The channel count must be a power of two for the XOR address
    /// mapping to cover the space evenly.
    ChannelsNotPowerOfTwo(usize),
    /// Writes scheduled at a faster data rate than reads: the
    /// protection model certifies margin for reads against a copy
    /// while originals are written at (or below) specification, so a
    /// write rate above the read rate is always a configuration bug.
    WriteFasterThanRead { read_mts: u32, write_mts: u32 },
    /// `Some(0)` ranks for reads or the software address space: the
    /// channel could never serve an access.
    EmptyRankSet(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroField(field) => write!(f, "{field} must be at least 1"),
            ConfigError::ChannelsNotPowerOfTwo(n) => {
                write!(f, "channels must be a power of two, got {n}")
            }
            ConfigError::WriteFasterThanRead {
                read_mts,
                write_mts,
            } => write!(
                f,
                "write rate {write_mts} MT/s exceeds read rate {read_mts} MT/s; \
                 originals must not be written faster than reads are certified"
            ),
            ConfigError::EmptyRankSet(field) => {
                write!(f, "{field} restricted to an empty rank set (Some(0))")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Core microarchitecture parameters (Table IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Core clock in GHz (3.1 in the paper, matching the W-3175X).
    pub clock_ghz: f64,
    /// Issue/retire width (4-wide OoO).
    pub width: u32,
    /// Reorder-buffer capacity in instructions (224).
    pub rob_entries: u32,
    /// Outstanding L2-miss registers (MSHRs) per core.
    pub mshrs: u32,
    /// L1 data cache size in bytes (64 KB, 8-way).
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// L2 size in bytes (1 MB per core, 16-way).
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L3 latency in nanoseconds (22 ns).
    pub l3_latency_ns: f64,
    /// Stride prefetcher degree at L2 (Table IV: degree 4).
    pub prefetch_degree: u32,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            clock_ghz: 3.1,
            width: 4,
            rob_entries: 224,
            mshrs: 16,
            l1_bytes: 64 * 1024,
            l1_ways: 8,
            l2_bytes: 1024 * 1024,
            l2_ways: 16,
            l3_latency_ns: 22.0,
            prefetch_degree: 4,
        }
    }
}

impl CoreConfig {
    /// Picoseconds per core clock cycle.
    pub fn cycle_ps(&self) -> Picos {
        (1000.0 / self.clock_ghz).round() as Picos
    }

    /// Picoseconds to execute one non-memory instruction at full width.
    pub fn instr_ps(&self) -> f64 {
        1000.0 / self.clock_ghz / self.width as f64
    }

    /// The hybrid-page-policy row timeout (Table IV: 200 cycles).
    pub fn page_timeout_ps(&self) -> Picos {
        200 * self.cycle_ps()
    }
}

/// Per-channel behaviour of a memory design — the knob set that
/// distinguishes the Commercial Baseline, FMR, Hetero-DMR, and
/// Hetero-DMR+FMR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelMode {
    /// Timing in force while the channel serves reads.
    pub read_timing: TimingParams,
    /// Timing in force while the channel drains writes (Hetero-DMR
    /// always writes at specification so originals stay safe).
    pub write_timing: TimingParams,
    /// Extra latency added to *each* read↔write mode switch, on top of
    /// ordinary tWTR turnaround (1 µs per direction under Hetero-DMR
    /// for the Figure 9/10 frequency transition; 0 for the baseline).
    pub turnaround_penalty_ps: Picos,
    /// Pending writes (write queue + victim writeback cache) that
    /// trigger a write-mode entry — the batch-size knob. Conventional
    /// controllers drain small batches often; Hetero-DMR accumulates
    /// ~12 800 writes per switch (its LLC cleaning exists to build
    /// such batches) so the 2 × 1 µs frequency transitions amortize.
    pub write_high_watermark: usize,
    /// Maximum writes drained per write-mode entry (`usize::MAX` to
    /// drain everything pending; used by the batch-size ablation).
    pub write_batch: usize,
    /// Dirty LLC blocks *explicitly* cleaned (written early) per
    /// write-mode entry. Cleaning is traffic-neutral in steady state —
    /// a cleaned block's later eviction is clean — so the default
    /// models it as part of the batch watermark; a nonzero value
    /// front-loads the writes explicitly (the cleaning ablation).
    pub llc_clean_target: usize,
    /// Whether the per-channel 128 KB 64-way victim writeback cache is
    /// present (it is, in every evaluated design, including the
    /// baseline — Section IV-A adds it to the baseline for fairness).
    pub writeback_cache: bool,
    /// When `Some(n)`, reads are served by only the top `n` ranks of
    /// the channel (the unsafely fast Free Module under Hetero-DMR).
    pub read_ranks: Option<usize>,
    /// Additional same-channel copies receiving each write via
    /// broadcast (1 under Hetero-DMR, 2 under Hetero-DMR+FMR below
    /// 25 % utilization; 0 otherwise). Costs no bus bandwidth, only
    /// DRAM cell energy.
    pub broadcast_copies: u32,
    /// FMR's read trick: a block also lives in a second rank, and the
    /// controller reads whichever copy's bank is in the "faster" state
    /// (open row / idle).
    pub fmr_read_choice: bool,
    /// Ranks the *software* address space maps onto. Free-memory
    /// replication designs keep in-use data within half the ranks (the
    /// in-use module) so the other half can hold copies; `None` maps
    /// across all ranks (conventional).
    pub software_ranks: Option<usize>,
}

impl ChannelMode {
    /// The Commercial Baseline: everything at manufacturer
    /// specification, conventional 128-entry write batches, writeback
    /// cache present.
    pub fn commercial_baseline() -> ChannelMode {
        let spec = MemorySetting::Specified.timing();
        ChannelMode {
            read_timing: spec,
            write_timing: spec,
            turnaround_penalty_ps: 0,
            // All evaluated designs share the same bulk drain cadence
            // so that write-scheduling transients do not confound the
            // variables the paper studies (data rate, latencies, rank
            // restriction, transition cost); the batch-size ablation
            // sweeps this knob explicitly.
            write_high_watermark: 12_800,
            write_batch: usize::MAX,
            llc_clean_target: 0,
            writeback_cache: true,
            read_ranks: None,
            broadcast_copies: 0,
            fmr_read_choice: false,
            software_ranks: None,
        }
    }

    /// The uniform mode for one of the paper's Table II settings:
    /// reads and writes both at `setting`'s timing, every other knob
    /// as the Commercial Baseline.
    pub fn preset(setting: MemorySetting) -> ChannelMode {
        let t = setting.timing();
        ChannelMode {
            read_timing: t,
            write_timing: t,
            ..Self::commercial_baseline()
        }
    }

    /// Starts a validating builder from the Commercial Baseline.
    pub fn builder() -> ChannelModeBuilder {
        ChannelModeBuilder {
            mode: Self::commercial_baseline(),
        }
    }

    /// A builder seeded with this mode's current knobs, for deriving
    /// one design from another.
    pub fn to_builder(self) -> ChannelModeBuilder {
        ChannelModeBuilder { mode: self }
    }
}

/// Validating builder for [`ChannelMode`] (see [`ChannelMode::builder`]).
///
/// ```
/// use dram::timing::MemorySetting;
/// use memsim::config::ChannelMode;
///
/// let mode = ChannelMode::builder()
///     .read_timing(MemorySetting::FreqLatMargin.timing())
///     .read_ranks(Some(2))
///     .build()
///     .unwrap();
/// assert_eq!(mode.write_timing.data_rate.mts(), 3200);
/// ```
#[derive(Debug, Clone)]
pub struct ChannelModeBuilder {
    mode: ChannelMode,
}

impl ChannelModeBuilder {
    /// Timing in force while the channel serves reads.
    pub fn read_timing(mut self, t: TimingParams) -> Self {
        self.mode.read_timing = t;
        self
    }

    /// Timing in force while the channel drains writes.
    pub fn write_timing(mut self, t: TimingParams) -> Self {
        self.mode.write_timing = t;
        self
    }

    /// One timing for both directions (unprotected overclocking).
    pub fn timings(self, t: TimingParams) -> Self {
        self.read_timing(t).write_timing(t)
    }

    /// Retarget both directions' current timings to `rate`.
    pub fn data_rate(mut self, rate: DataRate) -> Self {
        self.mode.read_timing = self.mode.read_timing.at_rate(rate);
        self.mode.write_timing = self.mode.write_timing.at_rate(rate);
        self
    }

    /// Extra latency per read↔write mode switch, picoseconds.
    pub fn turnaround_penalty_ps(mut self, ps: Picos) -> Self {
        self.mode.turnaround_penalty_ps = ps;
        self
    }

    /// Pending writes that trigger a write-mode entry.
    pub fn write_high_watermark(mut self, writes: usize) -> Self {
        self.mode.write_high_watermark = writes;
        self
    }

    /// Maximum writes drained per write-mode entry.
    pub fn write_batch(mut self, writes: usize) -> Self {
        self.mode.write_batch = writes;
        self
    }

    /// Dirty LLC blocks explicitly cleaned per write-mode entry.
    pub fn llc_clean_target(mut self, blocks: usize) -> Self {
        self.mode.llc_clean_target = blocks;
        self
    }

    /// Whether the per-channel victim writeback cache is present.
    pub fn writeback_cache(mut self, present: bool) -> Self {
        self.mode.writeback_cache = present;
        self
    }

    /// Restrict reads to the top `n` ranks (`None` = all ranks).
    pub fn read_ranks(mut self, ranks: Option<usize>) -> Self {
        self.mode.read_ranks = ranks;
        self
    }

    /// Additional same-channel copies receiving each write.
    pub fn broadcast_copies(mut self, copies: u32) -> Self {
        self.mode.broadcast_copies = copies;
        self
    }

    /// FMR's faster-copy read choice.
    pub fn fmr_read_choice(mut self, enabled: bool) -> Self {
        self.mode.fmr_read_choice = enabled;
        self
    }

    /// Ranks the software address space maps onto (`None` = all).
    pub fn software_ranks(mut self, ranks: Option<usize>) -> Self {
        self.mode.software_ranks = ranks;
        self
    }

    /// Validates the timing/rate combination and knob ranges.
    pub fn build(self) -> Result<ChannelMode, ConfigError> {
        let m = &self.mode;
        if m.write_timing.data_rate.mts() > m.read_timing.data_rate.mts() {
            return Err(ConfigError::WriteFasterThanRead {
                read_mts: m.read_timing.data_rate.mts(),
                write_mts: m.write_timing.data_rate.mts(),
            });
        }
        if m.write_high_watermark == 0 {
            return Err(ConfigError::ZeroField("write_high_watermark"));
        }
        if m.write_batch == 0 {
            return Err(ConfigError::ZeroField("write_batch"));
        }
        if m.read_ranks == Some(0) {
            return Err(ConfigError::EmptyRankSet("read_ranks"));
        }
        if m.software_ranks == Some(0) {
            return Err(ConfigError::EmptyRankSet("software_ranks"));
        }
        Ok(self.mode)
    }
}

/// Node-level memory-system shape (Tables III & IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Number of channels.
    pub channels: usize,
    /// Modules per channel (2 in the paper).
    pub modules_per_channel: usize,
    /// Ranks per module (2).
    pub ranks_per_module: usize,
    /// Banks per rank (16).
    pub banks_per_rank: usize,
    /// Read-queue capacity per channel (256).
    pub read_queue: usize,
    /// Write-queue capacity per channel (128).
    pub write_queue: usize,
}

/// The paper's per-channel shape with a single channel: two dual-rank
/// modules, 16 banks/rank, 256/128-entry read/write queues.
impl Default for MemoryConfig {
    fn default() -> MemoryConfig {
        MemoryConfig {
            channels: 1,
            modules_per_channel: 2,
            ranks_per_module: 2,
            banks_per_rank: 16,
            read_queue: 256,
            write_queue: 128,
        }
    }
}

impl MemoryConfig {
    /// Ranks per channel (modules × ranks/module; Table IV's 4).
    pub fn ranks_per_channel(&self) -> usize {
        self.modules_per_channel * self.ranks_per_module
    }

    /// Starts a validating builder from the paper's default shape.
    pub fn builder() -> MemoryConfigBuilder {
        MemoryConfigBuilder {
            config: MemoryConfig::default(),
        }
    }
}

/// Validating builder for [`MemoryConfig`] (see
/// [`MemoryConfig::builder`]).
///
/// ```
/// use memsim::config::MemoryConfig;
///
/// let memory = MemoryConfig::builder().channels(4).build().unwrap();
/// assert_eq!(memory.ranks_per_channel(), 4);
/// assert!(MemoryConfig::builder().channels(3).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct MemoryConfigBuilder {
    config: MemoryConfig,
}

impl MemoryConfigBuilder {
    /// Channel count (must end up a power of two).
    pub fn channels(mut self, n: usize) -> Self {
        self.config.channels = n;
        self
    }

    pub fn modules_per_channel(mut self, n: usize) -> Self {
        self.config.modules_per_channel = n;
        self
    }

    pub fn ranks_per_module(mut self, n: usize) -> Self {
        self.config.ranks_per_module = n;
        self
    }

    pub fn banks_per_rank(mut self, n: usize) -> Self {
        self.config.banks_per_rank = n;
        self
    }

    /// Read-queue capacity per channel.
    pub fn read_queue(mut self, entries: usize) -> Self {
        self.config.read_queue = entries;
        self
    }

    /// Write-queue capacity per channel.
    pub fn write_queue(mut self, entries: usize) -> Self {
        self.config.write_queue = entries;
        self
    }

    /// Validates the shape: every count ≥ 1 and channels a power of
    /// two (the XOR channel mapping needs one).
    pub fn build(self) -> Result<MemoryConfig, ConfigError> {
        let c = &self.config;
        for (value, field) in [
            (c.channels, "channels"),
            (c.modules_per_channel, "modules_per_channel"),
            (c.ranks_per_module, "ranks_per_module"),
            (c.banks_per_rank, "banks_per_rank"),
            (c.read_queue, "read_queue"),
            (c.write_queue, "write_queue"),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroField(field));
            }
        }
        if !c.channels.is_power_of_two() {
            return Err(ConfigError::ChannelsNotPowerOfTwo(c.channels));
        }
        Ok(self.config)
    }
}

/// One of the two evaluated memory hierarchies (Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchyConfig {
    /// Name ("Hierarchy1" / "Hierarchy2").
    pub name: &'static str,
    /// Number of cores.
    pub cores: usize,
    /// Combined L2+L3 capacity per core, bytes (CAT-enforced).
    pub cache_per_core_bytes: usize,
    /// Memory shape.
    pub memory: MemoryConfig,
    /// Core parameters.
    pub core: CoreConfig,
}

impl HierarchyConfig {
    /// Hierarchy1: 8 cores, 4.5 MB L2+L3 per core, 1 channel with two
    /// dual-rank modules.
    pub fn hierarchy1() -> HierarchyConfig {
        HierarchyConfig {
            name: "Hierarchy1",
            cores: 8,
            cache_per_core_bytes: 4_718_592, // 4.5 MB
            memory: MemoryConfig::default(),
            core: CoreConfig::default(),
        }
    }

    /// Hierarchy2: 16 cores, 2.375 MB L2+L3 per core, 4 channels with
    /// two dual-rank modules each.
    pub fn hierarchy2() -> HierarchyConfig {
        HierarchyConfig {
            name: "Hierarchy2",
            cores: 16,
            cache_per_core_bytes: 2_490_368, // 2.375 MB
            memory: MemoryConfig::builder()
                .channels(4)
                .build()
                .expect("Table III preset is valid"),
            core: CoreConfig::default(),
        }
    }

    /// Both hierarchies, for sweeps.
    pub fn both() -> [HierarchyConfig; 2] {
        [Self::hierarchy1(), Self::hierarchy2()]
    }

    /// Per-core L3 partition size (L2+L3 per core minus the 1 MB L2),
    /// rounded down to a power-of-two-friendly 64 KB multiple.
    pub fn l3_partition_bytes(&self) -> usize {
        let l3 = self.cache_per_core_bytes.saturating_sub(self.core.l2_bytes);
        // Keep sets a power of two: round down to 2^k × 64 B × ways.
        let ways = 16;
        let sets = (l3 / (64 * ways)).next_power_of_two() / 2;
        (sets.max(1)) * 64 * ways
    }

    /// A stable 64-bit content fingerprint (FNV-1a over every field,
    /// floats by bit pattern). Two hierarchies with equal fields have
    /// equal fingerprints; result caches key on it so a simulation
    /// outcome is reused only for a configuration that would produce
    /// the identical run.
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |w: u64| h = (h ^ w).wrapping_mul(PRIME);
        for &b in self.name.as_bytes() {
            mix(b as u64);
        }
        mix(self.name.len() as u64);
        mix(self.cores as u64);
        mix(self.cache_per_core_bytes as u64);
        let m = &self.memory;
        for field in [
            m.channels,
            m.modules_per_channel,
            m.ranks_per_module,
            m.banks_per_rank,
            m.read_queue,
            m.write_queue,
        ] {
            mix(field as u64);
        }
        let c = &self.core;
        mix(c.clock_ghz.to_bits());
        for field in [c.width, c.rob_entries, c.mshrs, c.prefetch_degree] {
            mix(field as u64);
        }
        for field in [c.l1_bytes, c.l1_ways, c.l2_bytes, c.l2_ways] {
            mix(field as u64);
        }
        mix(c.l3_latency_ns.to_bits());
        h
    }

    /// The memory setting pair for a Hetero-DMR node with a given
    /// frequency margin: reads at `spec + margin` with latency margins,
    /// writes at specification.
    pub fn hetero_dmr_timings(margin_mts: u32) -> (TimingParams, TimingParams) {
        let spec = MemorySetting::Specified.timing();
        let fast = spec
            .with_latency_margin()
            .at_rate(DataRate::MT3200.plus_margin(margin_mts));
        (fast, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_core_defaults() {
        let c = CoreConfig::default();
        assert_eq!(c.clock_ghz, 3.1);
        assert_eq!(c.width, 4);
        assert_eq!(c.rob_entries, 224);
        assert_eq!(c.cycle_ps(), 323); // 1/3.1 GHz ≈ 322.6 ps
        assert_eq!(c.page_timeout_ps(), 200 * 323);
    }

    #[test]
    fn table_iii_hierarchies() {
        let h1 = HierarchyConfig::hierarchy1();
        assert_eq!(h1.cores, 8);
        assert_eq!(h1.memory.channels, 1);
        assert_eq!(h1.memory.ranks_per_channel(), 4);

        let h2 = HierarchyConfig::hierarchy2();
        assert_eq!(h2.cores, 16);
        assert_eq!(h2.memory.channels, 4);
        assert!(h2.cache_per_core_bytes < h1.cache_per_core_bytes);
    }

    #[test]
    fn l3_partition_is_positive_and_below_budget() {
        for h in HierarchyConfig::both() {
            let l3 = h.l3_partition_bytes();
            assert!(l3 > 0);
            assert!(l3 <= h.cache_per_core_bytes);
            // Power-of-two sets for the cache constructor.
            assert!((l3 / (64 * 16)).is_power_of_two());
        }
    }

    #[test]
    fn fingerprint_separates_hierarchies_and_tracks_fields() {
        let h1 = HierarchyConfig::hierarchy1();
        let h2 = HierarchyConfig::hierarchy2();
        assert_ne!(h1.fingerprint(), h2.fingerprint());
        assert_eq!(
            h1.fingerprint(),
            HierarchyConfig::hierarchy1().fingerprint()
        );

        // Every cached-run-relevant knob must move the fingerprint.
        let mut tweaked = HierarchyConfig::hierarchy1();
        tweaked.cores += 1;
        assert_ne!(tweaked.fingerprint(), h1.fingerprint());
        let mut tweaked = HierarchyConfig::hierarchy1();
        tweaked.core.clock_ghz += 0.1;
        assert_ne!(tweaked.fingerprint(), h1.fingerprint());
        let mut tweaked = HierarchyConfig::hierarchy1();
        tweaked.memory.banks_per_rank *= 2;
        assert_ne!(tweaked.fingerprint(), h1.fingerprint());
    }

    #[test]
    fn baseline_mode_is_all_spec() {
        let m = ChannelMode::commercial_baseline();
        assert_eq!(m.read_timing.data_rate.mts(), 3200);
        assert_eq!(m.write_timing, m.read_timing);
        assert_eq!(m.turnaround_penalty_ps, 0);
        assert_eq!(m.broadcast_copies, 0);
        assert!(m.writeback_cache);
        assert!(m.read_ranks.is_none());
    }

    #[test]
    fn memory_builder_validates_shape() {
        assert_eq!(
            MemoryConfig::builder().build().unwrap(),
            MemoryConfig::default()
        );
        let wide = MemoryConfig::builder()
            .channels(8)
            .modules_per_channel(2)
            .banks_per_rank(32)
            .build()
            .unwrap();
        assert_eq!(wide.channels, 8);
        assert_eq!(wide.banks_per_rank, 32);
        assert_eq!(
            MemoryConfig::builder().channels(0).build(),
            Err(ConfigError::ZeroField("channels"))
        );
        assert_eq!(
            MemoryConfig::builder().channels(6).build(),
            Err(ConfigError::ChannelsNotPowerOfTwo(6))
        );
        assert_eq!(
            MemoryConfig::builder().read_queue(0).build(),
            Err(ConfigError::ZeroField("read_queue"))
        );
    }

    #[test]
    fn mode_builder_validates_knobs() {
        let spec = MemorySetting::Specified.timing();
        let fast = MemorySetting::FrequencyMargin.timing();
        // Protected split: reads fast, writes at spec.
        let ok = ChannelMode::builder()
            .read_timing(fast)
            .write_timing(spec)
            .read_ranks(Some(2))
            .build()
            .unwrap();
        assert_eq!(ok.read_timing.data_rate.mts(), 4000);
        assert_eq!(ok.write_timing.data_rate.mts(), 3200);
        // The inverse split can never be a valid protection setting.
        assert_eq!(
            ChannelMode::builder()
                .read_timing(spec)
                .write_timing(fast)
                .build(),
            Err(ConfigError::WriteFasterThanRead {
                read_mts: 3200,
                write_mts: 4000,
            })
        );
        assert_eq!(
            ChannelMode::builder().write_batch(0).build(),
            Err(ConfigError::ZeroField("write_batch"))
        );
        assert_eq!(
            ChannelMode::builder().read_ranks(Some(0)).build(),
            Err(ConfigError::EmptyRankSet("read_ranks"))
        );
        // to_builder round-trips.
        let base = ChannelMode::commercial_baseline();
        assert_eq!(base.to_builder().build().unwrap(), base);
    }

    #[test]
    fn mode_presets_cover_table2() {
        for setting in MemorySetting::ALL {
            let m = ChannelMode::preset(setting);
            assert_eq!(m.read_timing, setting.timing());
            assert_eq!(m.write_timing, m.read_timing);
            assert_eq!(m.broadcast_copies, 0, "{setting:?}");
        }
        assert_eq!(
            ChannelMode::preset(MemorySetting::Specified),
            ChannelMode::commercial_baseline()
        );
    }

    #[test]
    fn hetero_dmr_timing_split() {
        let (fast, safe) = HierarchyConfig::hetero_dmr_timings(800);
        assert_eq!(fast.data_rate.mts(), 4000);
        assert_eq!(fast.t_rcd_ns, 11.5);
        assert_eq!(safe.data_rate.mts(), 3200);
        assert_eq!(safe.t_rcd_ns, 13.75);
    }
}

/// Builder for custom [`HierarchyConfig`]s beyond the two Table III
/// presets — cache-sensitivity sweeps, wider nodes, more channels.
///
/// ```
/// use memsim::config::HierarchyConfig;
///
/// let custom = HierarchyConfig::builder("wide")
///     .cores(32)
///     .channels(8)
///     .cache_per_core_mb(3.0)
///     .build();
/// assert_eq!(custom.cores, 32);
/// assert_eq!(custom.memory.channels, 8);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchyBuilder {
    name: &'static str,
    cores: usize,
    cache_per_core_bytes: usize,
    channels: usize,
    modules_per_channel: usize,
    ranks_per_module: usize,
    core: CoreConfig,
}

impl HierarchyConfig {
    /// Starts a builder from Hierarchy1's defaults.
    pub fn builder(name: &'static str) -> HierarchyBuilder {
        let base = HierarchyConfig::hierarchy1();
        HierarchyBuilder {
            name,
            cores: base.cores,
            cache_per_core_bytes: base.cache_per_core_bytes,
            channels: base.memory.channels,
            modules_per_channel: base.memory.modules_per_channel,
            ranks_per_module: base.memory.ranks_per_module,
            core: base.core,
        }
    }
}

impl HierarchyBuilder {
    /// Sets the core count.
    pub fn cores(&mut self, cores: usize) -> &mut HierarchyBuilder {
        self.cores = cores;
        self
    }

    /// Sets the combined L2+L3 budget per core, in megabytes.
    pub fn cache_per_core_mb(&mut self, mb: f64) -> &mut HierarchyBuilder {
        self.cache_per_core_bytes = (mb * 1024.0 * 1024.0) as usize;
        self
    }

    /// Sets the channel count (must be a power of two for the XOR
    /// address mapping).
    pub fn channels(&mut self, channels: usize) -> &mut HierarchyBuilder {
        self.channels = channels;
        self
    }

    /// Sets modules per channel.
    pub fn modules_per_channel(&mut self, modules: usize) -> &mut HierarchyBuilder {
        self.modules_per_channel = modules;
        self
    }

    /// Sets ranks per module.
    pub fn ranks_per_module(&mut self, ranks: usize) -> &mut HierarchyBuilder {
        self.ranks_per_module = ranks;
        self
    }

    /// Overrides the core microarchitecture.
    pub fn core(&mut self, core: CoreConfig) -> &mut HierarchyBuilder {
        self.core = core;
        self
    }

    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if cores or channels are zero, or the L2+L3 budget does
    /// not exceed the L2 (leaving no L3 partition).
    pub fn build(&self) -> HierarchyConfig {
        assert!(self.cores > 0, "a node needs cores");
        assert!(self.channels > 0, "a node needs channels");
        assert!(
            self.cache_per_core_bytes > self.core.l2_bytes,
            "cache budget must exceed the private L2"
        );
        HierarchyConfig {
            name: self.name,
            cores: self.cores,
            cache_per_core_bytes: self.cache_per_core_bytes,
            memory: MemoryConfig::builder()
                .channels(self.channels)
                .modules_per_channel(self.modules_per_channel)
                .ranks_per_module(self.ranks_per_module)
                .build()
                .unwrap_or_else(|e| panic!("invalid memory shape: {e}")),
            core: self.core,
        }
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;

    #[test]
    fn builder_defaults_match_hierarchy1() {
        let built = HierarchyConfig::builder("Hierarchy1").build();
        let preset = HierarchyConfig::hierarchy1();
        assert_eq!(built, preset);
    }

    #[test]
    fn builder_overrides_apply() {
        let h = HierarchyConfig::builder("big")
            .cores(64)
            .channels(8)
            .modules_per_channel(2)
            .ranks_per_module(2)
            .cache_per_core_mb(2.0)
            .build();
        assert_eq!(h.cores, 64);
        assert_eq!(h.memory.channels, 8);
        assert_eq!(h.cache_per_core_bytes, 2 * 1024 * 1024);
        assert!(h.l3_partition_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "exceed the private L2")]
    fn builder_rejects_cacheless_nodes() {
        let _ = HierarchyConfig::builder("bad")
            .cache_per_core_mb(0.5)
            .build();
    }

    #[test]
    #[should_panic(expected = "needs cores")]
    fn builder_rejects_zero_cores() {
        let _ = HierarchyConfig::builder("bad").cores(0).build();
    }
}
