//! The full simulated node: cores, caches, and channels.

use crate::address::AddressMapping;
use crate::config::{ChannelMode, HierarchyConfig};
use crate::controller::ChannelController;
use crate::core::{CoreSim, LoadHandle};
use crate::result::SimResult;
use crate::trace::AccessStream;
use crate::wbcache::WritebackCache;
use dram::Picos;
use telemetry::trace::{kv, Clock, Tracer};
use telemetry::{Counter, Scope};

/// Latency of a load serviced by the victim writeback cache (it sits
/// next to the memory controller, past the LLC).
const WB_CACHE_HIT_PS: Picos = ns_to_ps_const(15);

const fn ns_to_ps_const(ns: u64) -> Picos {
    ns * 1_000
}

/// A multi-core node with per-channel memory controllers.
#[derive(Debug)]
pub struct NodeSim {
    hierarchy: HierarchyConfig,
    modes: Vec<ChannelMode>,
    mapping: AddressMapping,
    cores: Vec<CoreSim>,
    controllers: Vec<ChannelController>,
    wbcaches: Vec<Option<WritebackCache>>,
    /// Mirror every write into the opposite half's channel (the naive
    /// channel-split DMR strawman of Section III-A: 100 % write
    /// bandwidth overhead).
    mirror_writes: bool,
    /// Stores retired since the last cleaning write-mode entry (drives
    /// the batch cadence of LLC-cleaning designs: one write mode per
    /// `llc_clean_target` stores, the paper's 12 800-write batches).
    stores_since_drain: u64,
    /// Reusable per-op buffers for L3 writebacks and prefetch requests
    /// (lent to `CoreSim::access_caches` so the hot loop is
    /// allocation-free).
    scratch_writebacks: Vec<u64>,
    scratch_prefetches: Vec<u64>,
    metrics: NodeMetrics,
    /// Plain-integer tallies for the current window; flushed into
    /// `metrics` at window boundaries (no atomics in the step loop).
    tally: NodeTally,
    /// Causal trace sink (see [`NodeSim::attach_trace`]): write-drain
    /// batches become simulation-time spans.
    trace: Option<Tracer>,
}

/// Node-level traffic tallies, above the per-channel controller view.
/// Detached until [`NodeSim::attach_telemetry`] binds them.
#[derive(Debug, Default)]
struct NodeMetrics {
    ops: Counter,
    demand_misses: Counter,
    prefetch_reads: Counter,
    writebacks: Counter,
    drains: Counter,
}

impl NodeMetrics {
    fn bind(&mut self, scope: &Scope) {
        let rebind = |name: &str, old: &Counter| {
            let fresh = scope.counter(name);
            fresh.add(old.get());
            fresh
        };
        self.ops = rebind("ops", &self.ops);
        self.demand_misses = rebind("demand_misses", &self.demand_misses);
        self.prefetch_reads = rebind("prefetch_reads", &self.prefetch_reads);
        self.writebacks = rebind("writebacks", &self.writebacks);
        self.drains = rebind("drains", &self.drains);
    }
}

/// The step loop's counter window: plain adds, published in one batch
/// per window boundary ([`NodeSim::run_steps`] return, telemetry
/// attach, or result assembly).
#[derive(Debug, Default)]
struct NodeTally {
    ops: u64,
    demand_misses: u64,
    prefetch_reads: u64,
    writebacks: u64,
    drains: u64,
}

impl NodeTally {
    fn flush(&mut self, metrics: &NodeMetrics) {
        let add = |counter: &Counter, v: &mut u64| {
            if *v > 0 {
                counter.add(*v);
                *v = 0;
            }
        };
        add(&metrics.ops, &mut self.ops);
        add(&metrics.demand_misses, &mut self.demand_misses);
        add(&metrics.prefetch_reads, &mut self.prefetch_reads);
        add(&metrics.writebacks, &mut self.writebacks);
        add(&metrics.drains, &mut self.drains);
    }
}

/// Resumable position inside a [`NodeSim`] run: the per-core streams
/// plus the scheduler's view of each core's clock. Produced by
/// [`NodeSim::begin`], advanced by [`NodeSim::run_steps`], consumed by
/// [`NodeSim::finish`].
///
/// Splitting one run into several `run_steps` calls is *exactly*
/// equivalent to one big call: the scheduler state lives entirely in
/// this cursor and the node, so stdout/JSONL/trace bytes and
/// `SimResult` stats are byte-identical for any window partition —
/// the property the time-parallel runner path relies on.
#[derive(Debug)]
pub struct RunCursor<S> {
    streams: Vec<S>,
    /// Per-core clock mirror; [`Picos::MAX`] marks an exhausted stream.
    nows: Vec<Picos>,
    remaining: usize,
    steps: u64,
}

impl<S> RunCursor<S> {
    /// Whether every stream has been consumed.
    pub fn done(&self) -> bool {
        self.remaining == 0
    }

    /// Total operations stepped through this cursor so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

impl NodeSim {
    /// Builds a node with every core and channel in its initial state.
    pub fn new(hierarchy: HierarchyConfig, mode: ChannelMode) -> NodeSim {
        let modes = vec![mode; hierarchy.memory.channels];
        NodeSim::with_modes(hierarchy, modes, false)
    }

    /// Builds a node with an explicit per-channel mode vector —
    /// needed by the naive channel-split DMR baseline, which runs the
    /// copy-holding half of the channels fast and the original-holding
    /// half at specification. `mirror_writes` duplicates every write
    /// into the paired channel.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one mode per channel is supplied.
    pub fn with_modes(
        hierarchy: HierarchyConfig,
        modes: Vec<ChannelMode>,
        mirror_writes: bool,
    ) -> NodeSim {
        assert_eq!(
            modes.len(),
            hierarchy.memory.channels,
            "need exactly one mode per channel"
        );
        let software_ranks = modes[0]
            .software_ranks
            .unwrap_or(hierarchy.memory.ranks_per_channel());
        let mapping = AddressMapping::new(
            hierarchy.memory.channels,
            software_ranks,
            hierarchy.memory.banks_per_rank,
        );
        let cores = (0..hierarchy.cores)
            .map(|_| CoreSim::new(hierarchy.core, hierarchy.l3_partition_bytes()))
            .collect();
        let controllers = modes
            .iter()
            .map(|&m| ChannelController::new(m, hierarchy.memory, hierarchy.core.page_timeout_ps()))
            .collect();
        let wbcaches = modes
            .iter()
            .map(|m| m.writeback_cache.then(WritebackCache::paper_default))
            .collect();
        NodeSim {
            hierarchy,
            modes,
            mapping,
            cores,
            controllers,
            wbcaches,
            mirror_writes,
            stores_since_drain: 0,
            scratch_writebacks: Vec::new(),
            scratch_prefetches: Vec::new(),
            metrics: NodeMetrics::default(),
            tally: NodeTally::default(),
            trace: None,
        }
    }

    /// Binds the node's metrics (and every channel controller's, under
    /// `ch<N>.controller`) into a registry scope, folding in whatever
    /// was recorded before attachment.
    pub fn attach_telemetry(&mut self, scope: &Scope) {
        self.tally.flush(&self.metrics);
        self.metrics.bind(scope);
        for (i, ctrl) in self.controllers.iter_mut().enumerate() {
            let ch_scope = scope.scope(&format!("ch{i}.controller"));
            ctrl.attach_telemetry(&ch_scope);
        }
    }

    /// Records mode-transition spans into `tracer`: every write-mode
    /// entry (victim-cache drain + LLC cleaning + batched writes)
    /// becomes a `write_drain.ch<N>` span on the simulation-picosecond
    /// clock, from entry until the channel resumes read mode. All
    /// timestamps are simulation time, so traces are as deterministic
    /// as the simulation itself.
    pub fn attach_trace(&mut self, tracer: &Tracer) {
        self.trace = Some(tracer.clone());
    }

    /// The hierarchy this node models.
    pub fn hierarchy(&self) -> &HierarchyConfig {
        &self.hierarchy
    }

    /// Warms core `core_idx`'s L3 partition with `(block, dirty)`
    /// pairs, so the run starts from a steady-state cache (full LLC,
    /// realistic writeback rate) the way the paper's warmed gem5
    /// checkpoints do.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range core index.
    pub fn prewarm_core<I: IntoIterator<Item = (u64, bool)>>(
        &mut self,
        core_idx: usize,
        blocks: I,
    ) {
        let core = &mut self.cores[core_idx];
        for (block, dirty) in blocks {
            core.prewarm_l3(block, dirty);
        }
    }

    /// The L3 partition capacity in 64-byte blocks (how many warmup
    /// blocks fill a core's partition).
    pub fn l3_blocks_per_core(&self) -> usize {
        self.hierarchy.l3_partition_bytes() / 64
    }

    /// Runs one access stream per core to completion and reports the
    /// merged results.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one stream per core is supplied.
    pub fn run<S: AccessStream>(&mut self, streams: Vec<S>) -> SimResult {
        let mut cursor = self.begin(streams);
        self.run_steps(&mut cursor, u64::MAX);
        self.finish(cursor)
    }

    /// Opens a resumable run over one access stream per core. Advance
    /// it with [`run_steps`](Self::run_steps), close it with
    /// [`finish`](Self::finish).
    ///
    /// # Panics
    ///
    /// Panics unless exactly one stream per core is supplied.
    pub fn begin<S: AccessStream>(&mut self, streams: Vec<S>) -> RunCursor<S> {
        assert_eq!(
            streams.len(),
            self.cores.len(),
            "need exactly one access stream per core"
        );
        RunCursor {
            nows: self.cores.iter().map(|c| c.now).collect(),
            remaining: streams.len(),
            streams,
            steps: 0,
        }
    }

    /// Advances the run by at most `budget` operations (a *window*),
    /// returning how many were executed (less than `budget` only when
    /// every stream ran dry). Window boundaries flush the node's and
    /// every controller's pending tallies in one batch — the only
    /// point where the batched loop touches shared metric handles.
    ///
    /// The scheduler always steps the core that is furthest behind
    /// (ties to the lowest index), like the classic per-op
    /// `min_by_key` loop — but between full scans it *runs ahead* on
    /// the picked core for as long as that core remains the argmin
    /// against the cached second-minimum, which only one step in the
    /// old loop could ever change anyway. One scan therefore covers a
    /// whole burst of steps on the lagging core.
    pub fn run_steps<S: AccessStream>(&mut self, cursor: &mut RunCursor<S>, budget: u64) -> u64 {
        let mut done = 0u64;
        'windows: while cursor.remaining > 0 && done < budget {
            // One scan: minimum and second-minimum (now, index), both
            // with first-occurrence (lowest index) tie-breaks.
            let mut min_idx = usize::MAX;
            let mut min_now = Picos::MAX;
            let mut snd_idx = usize::MAX;
            let mut snd_now = Picos::MAX;
            for (i, &t) in cursor.nows.iter().enumerate() {
                if t < min_now {
                    snd_now = min_now;
                    snd_idx = min_idx;
                    min_now = t;
                    min_idx = i;
                } else if t < snd_now {
                    snd_now = t;
                    snd_idx = i;
                }
            }
            let core_idx = min_idx;
            loop {
                match cursor.streams[core_idx].next_op() {
                    Some(op) => {
                        self.step(core_idx, &op);
                        let t = self.cores[core_idx].now;
                        cursor.nows[core_idx] = t;
                        done += 1;
                        if done >= budget {
                            break 'windows;
                        }
                        // Still the argmin? (Strictly ahead of the
                        // runner-up, or tied with a lower index.)
                        if t > snd_now || (t == snd_now && core_idx > snd_idx) {
                            break;
                        }
                    }
                    None => {
                        cursor.nows[core_idx] = Picos::MAX;
                        cursor.remaining -= 1;
                        break;
                    }
                }
            }
        }
        cursor.steps += done;
        self.flush_window();
        done
    }

    /// Publishes the current window's tallies (node and per-channel)
    /// into the metric handles.
    fn flush_window(&mut self) {
        self.tally.flush(&self.metrics);
        for ctrl in &mut self.controllers {
            ctrl.flush_metrics();
        }
    }

    /// Processes one memory operation on one core.
    fn step(&mut self, core_idx: usize, op: &crate::trace::MemOp) {
        self.tally.ops += 1;
        if op.is_write {
            self.stores_since_drain += 1;
        }
        let controllers = &mut self.controllers;
        let issue_t = self.cores[core_idx].advance_to_issue(op, |handle| match handle {
            LoadHandle::Ready(t) => t,
            LoadHandle::Queued { channel, token } => controllers[channel].resolve_read(token),
        });
        // Lend the scratch buffers out for this op (putting them back
        // afterwards keeps their capacity across ops).
        let mut writebacks = std::mem::take(&mut self.scratch_writebacks);
        let mut prefetches = std::mem::take(&mut self.scratch_prefetches);
        let outcome = self.cores[core_idx].access_caches(op, &mut writebacks, &mut prefetches);
        let l3_lat = self.cores[core_idx].l3_latency_ps();

        for &wb in &writebacks {
            self.handle_writeback(wb);
        }
        for &pf in &prefetches {
            if self.cores[core_idx].needs_prefetch(pf) {
                if let Some(victim) = self.cores[core_idx].install_prefetch(pf) {
                    self.handle_writeback(victim);
                }
                let coord = self.mapping.map(pf << 6);
                // Prefetch traffic consumes DRAM bandwidth but never
                // stalls the core.
                self.tally.prefetch_reads += 1;
                let _ = self.controllers[coord.channel].submit_read(coord, issue_t + l3_lat, false);
            }
        }
        self.scratch_writebacks = writebacks;
        self.scratch_prefetches = prefetches;

        if let Some(block) = outcome.demand_miss {
            self.tally.demand_misses += 1;
            let coord = self.mapping.map(block << 6);
            let arrival = issue_t + l3_lat;
            let served_by_wb = self.wbcaches[coord.channel]
                .as_mut()
                .is_some_and(|wb| wb.read_hit(block));
            if served_by_wb {
                self.controllers[coord.channel].note_wb_cache_hit();
                if outcome.is_load {
                    self.cores[core_idx].track_load(LoadHandle::Ready(arrival + WB_CACHE_HIT_PS));
                }
            } else {
                let tracked = outcome.is_load;
                let token = self.controllers[coord.channel].submit_read(coord, arrival, tracked);
                if tracked {
                    self.cores[core_idx].track_load(LoadHandle::Queued {
                        channel: coord.channel,
                        token,
                    });
                }
            }
        } else if outcome.l3_hit && outcome.is_load {
            self.cores[core_idx].track_load(LoadHandle::Ready(issue_t + l3_lat));
        }

        self.maybe_enter_write_mode(core_idx);
    }

    /// Routes an LLC writeback toward its channel: into the victim
    /// writeback cache when there is room, else the write queue.
    fn handle_writeback(&mut self, block: u64) {
        self.tally.writebacks += 1;
        let coord = self.mapping.map(block << 6);
        self.push_write(coord.channel, block, coord);
        if self.mirror_writes && self.controllers.len() > 1 {
            // Naive channel-split DMR: the copy lives in the paired
            // channel and must be written separately (100 % write
            // bandwidth overhead).
            let pair = (coord.channel + self.controllers.len() / 2) % self.controllers.len();
            let mut mirrored = coord;
            mirrored.channel = pair;
            self.push_write(pair, block, mirrored);
        }
    }

    fn push_write(&mut self, channel: usize, block: u64, coord: crate::address::DramCoord) {
        let absorbed = self.wbcaches[channel]
            .as_mut()
            .is_some_and(|wb| wb.offer(block));
        if !absorbed {
            self.controllers[channel].enqueue_write(coord);
        }
    }

    /// Checks the write-mode triggers: pending writes (write queue
    /// plus victim writeback cache) reaching the batch watermark, or —
    /// for explicit-cleaning ablations — `llc_clean_target` stores
    /// having accumulated since the last batch.
    fn maybe_enter_write_mode(&mut self, core_idx: usize) {
        let now = self.cores[core_idx].now;
        let clean_target = self.modes[0].llc_clean_target;
        if clean_target > 0 && self.stores_since_drain as usize >= clean_target {
            self.stores_since_drain = 0;
            for ch in 0..self.controllers.len() {
                self.enter_write_mode(ch, now);
            }
            return;
        }
        for ch in 0..self.controllers.len() {
            let pending = self.controllers[ch].pending_writes()
                + self.wbcaches[ch].as_ref().map_or(0, WritebackCache::len);
            if pending >= self.modes[ch].write_high_watermark {
                self.enter_write_mode(ch, now);
            }
        }
    }

    /// End-of-run drain: writes still pending must complete, but no
    /// proactive LLC cleaning happens (the benchmark is over; cleaning
    /// beyond the measured work would overcount write traffic).
    fn final_drain(&mut self, ch: usize, now: Picos) -> Picos {
        self.drain_channel(ch, now, false)
    }

    /// Performs a write-mode entry on channel `ch`: drain the victim
    /// writeback cache, clean the LLC (Hetero-DMR), and batch-write.
    /// Returns when the channel is back in read mode.
    fn enter_write_mode(&mut self, ch: usize, now: Picos) -> Picos {
        self.drain_channel(ch, now, true)
    }

    fn drain_channel(&mut self, ch: usize, now: Picos, clean_llc: bool) -> Picos {
        self.tally.drains += 1;
        let pending_at_entry = self.controllers[ch].pending_writes()
            + self.wbcaches[ch].as_ref().map_or(0, WritebackCache::len);
        // The drained victim-cache blocks and this channel's cleaned
        // LLC blocks feed straight into the (order-insensitive) write
        // queue the drain below serves.
        if let Some(wb) = self.wbcaches[ch].as_mut() {
            let mapping = &self.mapping;
            let controller = &mut self.controllers[ch];
            wb.drain_with(|block| controller.enqueue_write(mapping.map(block << 6)));
        }
        if clean_llc && self.modes[ch].llc_clean_target > 0 {
            let per_core = self.modes[ch].llc_clean_target / self.cores.len().max(1);
            for core in &mut self.cores {
                for block in core.clean_llc(per_core) {
                    let coord = self.mapping.map(block << 6);
                    if coord.channel == ch {
                        self.controllers[ch].enqueue_write(coord);
                    } else {
                        // Cleaned blocks belonging to other channels
                        // join those channels' write paths.
                        let absorbed = self.wbcaches[coord.channel]
                            .as_mut()
                            .is_some_and(|wb| wb.offer(block));
                        if !absorbed {
                            self.controllers[coord.channel].enqueue_write(coord);
                        }
                    }
                }
            }
        }
        let resume = self.controllers[ch].drain_writes(now);
        if let Some(tracer) = &self.trace {
            // The span covers write mode: read mode is re-entered at
            // `resume` (the span's close is the read-mode entry edge).
            tracer.complete(
                format!("write_drain.ch{ch}"),
                "memsim",
                Clock::SimPs,
                now,
                resume,
                vec![kv("pending", pending_at_entry), kv("clean_llc", clean_llc)],
            );
        }
        resume
    }

    /// Final drain of all pending writes and outstanding loads, then
    /// result assembly. The drain's duration counts toward execution
    /// time — the benchmark is not done until its writebacks are.
    ///
    /// # Panics
    ///
    /// Panics if the cursor still has unconsumed operations (run
    /// [`run_steps`](Self::run_steps) until it returns short first).
    pub fn finish<S>(&mut self, cursor: RunCursor<S>) -> SimResult {
        assert!(cursor.done(), "finish called with operations remaining");
        drop(cursor);
        self.tally.flush(&self.metrics);
        let now = self.cores.iter().map(|c| c.now).max().unwrap_or(0);
        let mut drained_until = now;
        for ch in 0..self.controllers.len() {
            drained_until = drained_until.max(self.final_drain(ch, now));
        }
        let controllers = &mut self.controllers;
        for core in &mut self.cores {
            core.drain(|handle| match handle {
                LoadHandle::Ready(t) => t,
                LoadHandle::Queued { channel, token } => controllers[channel].resolve_read(token),
            });
        }

        let mean_core = if self.cores.is_empty() {
            0
        } else {
            self.cores.iter().map(|c| c.now).sum::<Picos>() / self.cores.len() as Picos
        };
        let max_core = self.cores.iter().map(|c| c.now).max().unwrap_or(0);
        // The final drain runs after the last core stops; charge its
        // duration on top of the mean completion time.
        let drain_extra = drained_until.saturating_sub(now.max(max_core));
        let mut result = SimResult {
            instructions: self.cores.iter().map(|c| c.instructions).sum(),
            exec_time_ps: mean_core + drain_extra,
            slowest_core_ps: max_core.max(drained_until),
            channels: self.controllers.len(),
            modules_per_channel: self.hierarchy.memory.modules_per_channel,
            read_rate: self.modes[0].read_timing.data_rate,
            ..SimResult::default()
        };
        for core in &self.cores {
            result.cache_hits += core.cache_hits;
            result.cache_misses += core.cache_misses;
        }
        // Close the residency books at the run horizon (idempotent;
        // parked ranks get their self-refresh time here) and merge the
        // per-channel residencies.
        let horizon = result.slowest_core_ps;
        for ctrl in &mut self.controllers {
            let res = ctrl.finalize_residency(horizon);
            result.residency.merge(&res);
        }
        for ctrl in &self.controllers {
            let s = ctrl.stats();
            result.controller.reads += s.reads;
            result.controller.writes += s.writes;
            result.controller.activates += s.activates;
            result.controller.row_hits += s.row_hits;
            result.controller.write_mode_entries += s.write_mode_entries;
            result.controller.bus_busy_ps += s.bus_busy_ps;
            result.controller.read_latency_sum_ps += s.read_latency_sum_ps;
            result.controller.refreshes += s.refreshes;
            result.controller.broadcast_extra_cells += s.broadcast_extra_cells;
            // Serviced-from-writeback-cache reads are tallied on the
            // channel's controller metrics at serve time (see `step`),
            // so they come through `s` like everything else.
            result.controller.wb_cache_hits += s.wb_cache_hits;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemOp;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A synthetic stream: mixed streaming/random accesses over a
    /// footprint, fixed read/write mix.
    fn stream(seed: u64, ops: usize, footprint_blocks: u64) -> Vec<MemOp> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(ops);
        let mut cursor = 0u64;
        for _ in 0..ops {
            let addr = if rng.random_bool(0.7) {
                cursor = (cursor + 1) % footprint_blocks;
                cursor * 64
            } else {
                rng.random_range(0..footprint_blocks) * 64
            };
            let is_write = rng.random_bool(0.2);
            let gap = rng.random_range(5..40);
            out.push(if is_write {
                MemOp::store(addr, gap)
            } else {
                MemOp::load(addr, gap)
            });
        }
        out
    }

    /// A hierarchy with shrunken caches so short test streams generate
    /// real DRAM traffic (evictions, writebacks, write modes).
    fn small(mut h: HierarchyConfig) -> HierarchyConfig {
        h.core.l1_bytes = 4 * 1024;
        h.core.l2_bytes = 16 * 1024;
        h.cache_per_core_bytes = 48 * 1024; // 32 KB L3 partition
        h
    }

    fn run(mode: ChannelMode, hierarchy: HierarchyConfig, ops: usize) -> SimResult {
        let mut node = NodeSim::new(small(hierarchy), mode);
        let streams: Vec<_> = (0..hierarchy.cores)
            .map(|i| stream(1000 + i as u64, ops, 1 << 13).into_iter())
            .collect();
        node.run(streams)
    }

    /// The ISSUE's regression contract: `ControllerStats` is a pure
    /// snapshot view over the registry — after an attached run, every
    /// field equals the corresponding registry counter, and the
    /// latency histogram agrees with the scalar sum.
    #[test]
    fn controller_stats_equal_registry_snapshot() {
        use crate::controller::ControllerStats;
        use telemetry::{MetricValue, Registry};

        let r = Registry::new();
        let h = small(HierarchyConfig::hierarchy1());
        let mut node = NodeSim::new(h, ChannelMode::commercial_baseline());
        node.attach_telemetry(&r.scope("node"));
        let streams: Vec<_> = (0..h.cores)
            .map(|i| stream(7_000 + i as u64, 2_000, 1 << 13).into_iter())
            .collect();
        let result = node.run(streams);

        let snap = r.snapshot();
        let mut aggregate = ControllerStats::default();
        for (i, ctrl) in node.controllers.iter().enumerate() {
            let s = ctrl.stats();
            let c = |name: &str| snap.counter(&format!("node.ch{i}.controller.{name}"));
            assert_eq!(s.reads, c("reads"));
            assert_eq!(s.writes, c("writes"));
            assert_eq!(s.activates, c("activates"));
            assert_eq!(s.row_hits, c("row_hits"));
            assert_eq!(s.wb_cache_hits, c("wb_cache_hits"));
            assert_eq!(s.write_mode_entries, c("write_mode_entries"));
            assert_eq!(s.bus_busy_ps, c("bus_busy_ps"));
            assert_eq!(s.read_latency_sum_ps, c("read_latency_sum_ps"));
            assert_eq!(s.refreshes, c("refreshes"));
            assert_eq!(s.broadcast_extra_cells, c("broadcast_extra_cells"));
            match snap.get(&format!("node.ch{i}.controller.read_latency_ps")) {
                Some(MetricValue::Histogram(hist)) => {
                    assert_eq!(hist.sum, s.read_latency_sum_ps);
                    assert_eq!(hist.count, s.reads);
                }
                other => panic!("missing latency histogram: {other:?}"),
            }
            aggregate.reads += s.reads;
            aggregate.writes += s.writes;
            aggregate.wb_cache_hits += s.wb_cache_hits;
        }
        assert!(aggregate.reads > 0, "test stream must hit DRAM");
        assert_eq!(result.controller.reads, aggregate.reads);
        assert_eq!(result.controller.writes, aggregate.writes);
        assert_eq!(result.controller.wb_cache_hits, aggregate.wb_cache_hits);
        assert_eq!(snap.counter("node.ops"), (h.cores * 2_000) as u64);
    }

    #[test]
    fn runs_to_completion_with_sane_metrics() {
        let r = run(
            ChannelMode::commercial_baseline(),
            HierarchyConfig::hierarchy1(),
            3_000,
        );
        assert!(r.exec_time_ps > 0);
        assert!(r.instructions > 0);
        assert!(r.controller.reads > 0);
        assert!(r.controller.writes > 0, "writebacks must reach DRAM");
        assert!(r.cache_hit_rate() > 0.0 && r.cache_hit_rate() < 1.0);
    }

    #[test]
    fn faster_memory_is_faster_end_to_end() {
        let base = run(
            ChannelMode::commercial_baseline(),
            HierarchyConfig::hierarchy1(),
            4_000,
        );
        let fast_mode = ChannelMode::preset(dram::timing::MemorySetting::FreqLatMargin);
        let fast = run(fast_mode, HierarchyConfig::hierarchy1(), 4_000);
        let speedup = fast.speedup_over(&base);
        assert!(
            speedup > 1.0 && speedup < 1.5,
            "margin-exploiting run should win modestly, got {speedup}"
        );
    }

    #[test]
    fn hierarchy2_has_more_bandwidth() {
        let h1 = run(
            ChannelMode::commercial_baseline(),
            HierarchyConfig::hierarchy1(),
            2_000,
        );
        let h2 = run(
            ChannelMode::commercial_baseline(),
            HierarchyConfig::hierarchy2(),
            2_000,
        );
        // Per-channel pressure is lower on hierarchy2 (4 channels for
        // 2x the cores): bandwidth utilization per channel drops.
        assert!(h2.bandwidth_utilization() < h1.bandwidth_utilization() + 0.2);
        assert_eq!(h2.channels, 4);
    }

    #[test]
    fn writeback_cache_serves_read_hits() {
        let r = run(
            ChannelMode::commercial_baseline(),
            HierarchyConfig::hierarchy1(),
            6_000,
        );
        // With a read-after-write pattern present, some reads must hit
        // the victim cache across a long run. (Zero is possible for a
        // pure stream; our mix has 30% random re-references.)
        assert!(r.controller.wb_cache_hits < r.controller.reads);
    }

    #[test]
    #[should_panic(expected = "one access stream per core")]
    fn stream_count_must_match_cores() {
        let mut node = NodeSim::new(
            HierarchyConfig::hierarchy1(),
            ChannelMode::commercial_baseline(),
        );
        let _ = node.run(vec![stream(0, 10, 64).into_iter()]);
    }

    #[test]
    fn deterministic_runs() {
        let a = run(
            ChannelMode::commercial_baseline(),
            HierarchyConfig::hierarchy1(),
            2_000,
        );
        let b = run(
            ChannelMode::commercial_baseline(),
            HierarchyConfig::hierarchy1(),
            2_000,
        );
        assert_eq!(a.exec_time_ps, b.exec_time_ps);
        assert_eq!(a.controller.reads, b.controller.reads);
    }
}
