//! The per-core model: private caches, prefetcher, and a ROB/MSHR-
//! limited out-of-order timing approximation.
//!
//! The core retires up to `width` instructions per cycle; loads that
//! miss the whole hierarchy occupy an MSHR until DRAM responds, and
//! the core may run ahead of the oldest outstanding load by at most
//! the ROB capacity. L1/L2 hit latencies are assumed hidden by the
//! out-of-order window (they are 3–12 cycles against a 224-entry ROB);
//! L3 hits and DRAM accesses are the modelled stalls, which is the
//! regime the paper's experiments vary.

use crate::cache::Cache;
use crate::config::CoreConfig;
use crate::prefetch::Prefetcher;
use crate::trace::MemOp;
use dram::{ns_to_ps, Picos};
use std::collections::VecDeque;

/// What a memory operation needs from the memory system after
/// traversing the core's caches. Writebacks and prefetches land in the
/// caller-provided scratch buffers of
/// [`access_caches`](CoreSim::access_caches) — the hot loop reuses
/// them instead of allocating per op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// `Some(block)` when the access missed L1/L2/L3 and needs DRAM
    /// (demand load or store RFO).
    pub demand_miss: Option<u64>,
    /// Whether the demand miss came from a load (stalls the core via
    /// an MSHR entry) or a store (fire-and-forget RFO).
    pub is_load: bool,
    /// Whether the access hit in the L3 (adds L3 latency for loads).
    pub l3_hit: bool,
}

/// An in-flight load: either its completion time is already known
/// (cache / writeback-cache hits) or it awaits FR-FCFS scheduling in a
/// channel's read queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadHandle {
    /// Completion time known at issue.
    Ready(Picos),
    /// Queued in channel `channel` under `token`.
    Queued {
        /// Channel whose controller holds the request.
        channel: usize,
        /// Resolution token from `submit_read`.
        token: u64,
    },
}

/// One simulated core.
#[derive(Debug)]
pub struct CoreSim {
    config: CoreConfig,
    l1: Cache,
    l2: Cache,
    /// This core's CAT partition of the L3.
    l3: Cache,
    prefetcher: Prefetcher,
    /// Current core time.
    pub now: Picos,
    /// Retired instruction count.
    pub instructions: u64,
    /// Outstanding load misses: (handle, instruction index at issue).
    outstanding: VecDeque<(LoadHandle, u64)>,
    /// Demand accesses that hit somewhere in the hierarchy.
    pub cache_hits: u64,
    /// Demand accesses that missed everywhere.
    pub cache_misses: u64,
    l3_latency_ps: Picos,
    instr_fp_ps: f64,
    /// Fractional instruction-time accumulator (sub-picosecond carry).
    time_carry: f64,
}

impl CoreSim {
    /// Creates a core with the given L3 partition size.
    pub fn new(config: CoreConfig, l3_partition_bytes: usize) -> CoreSim {
        CoreSim {
            l1: Cache::new(config.l1_bytes, config.l1_ways),
            l2: Cache::new(config.l2_bytes, config.l2_ways),
            l3: Cache::new(l3_partition_bytes, 16),
            prefetcher: Prefetcher::new(config.prefetch_degree),
            now: 0,
            instructions: 0,
            outstanding: VecDeque::new(),
            cache_hits: 0,
            cache_misses: 0,
            l3_latency_ps: ns_to_ps(config.l3_latency_ns),
            instr_fp_ps: config.instr_ps(),
            time_carry: 0.0,
            config,
        }
    }

    /// The L3 latency this core pays on an LLC hit.
    pub fn l3_latency_ps(&self) -> Picos {
        self.l3_latency_ps
    }

    /// Advances core time over the compute gap preceding `op` and
    /// enforces ROB/MSHR limits against outstanding loads, resolving
    /// queued completions through `resolve`. Returns the time at which
    /// the memory operation issues.
    pub fn advance_to_issue<F>(&mut self, op: &MemOp, mut resolve: F) -> Picos
    where
        F: FnMut(LoadHandle) -> Picos,
    {
        let instrs = op.gap_instructions as u64 + 1;
        self.instructions += instrs;
        let exact = self.instr_fp_ps * instrs as f64 + self.time_carry;
        let whole = exact.floor();
        self.time_carry = exact - whole;
        self.now += whole as Picos;

        // Retire loads whose completion is already known. Queued
        // handles stay unresolved here — forcing them would flush the
        // controller's read queue and destroy FR-FCFS reordering depth;
        // they resolve when the MSHR/ROB limits actually bind.
        while let Some(&(LoadHandle::Ready(done), _)) = self.outstanding.front() {
            if done <= self.now {
                self.outstanding.pop_front();
            } else {
                break;
            }
        }
        // MSHR limit: block until the oldest load returns.
        while self.outstanding.len() >= self.config.mshrs as usize {
            let (handle, _) = self.outstanding.pop_front().expect("nonempty");
            self.now = self.now.max(resolve(handle));
        }
        // ROB limit: cannot run ahead of the oldest outstanding load by
        // more than the ROB capacity.
        while let Some(&(handle, issued_at_instr)) = self.outstanding.front() {
            if self.instructions - issued_at_instr > self.config.rob_entries as u64 {
                self.now = self.now.max(resolve(handle));
                self.outstanding.pop_front();
            } else {
                break;
            }
        }
        self.now
    }

    /// Sends `op` through L1→L2→L3, returning what (if anything) must
    /// go to memory. Dirty L3 victims are appended to `writebacks` and
    /// prefetcher requests to `prefetches`; both buffers are cleared
    /// first, so callers just lend reusable scratch space.
    pub fn access_caches(
        &mut self,
        op: &MemOp,
        writebacks: &mut Vec<u64>,
        prefetches: &mut Vec<u64>,
    ) -> CacheOutcome {
        writebacks.clear();
        prefetches.clear();
        let addr = op.addr;

        let l1 = self.l1.access(addr, op.is_write);
        if let Some(victim) = l1.writeback {
            // L1 victim writes into L2.
            let r = self.l2.access(victim << 6, true);
            if let Some(v2) = r.writeback {
                let r3 = self.l3.access(v2 << 6, true);
                if let Some(v3) = r3.writeback {
                    writebacks.push(v3);
                }
            }
        }
        if l1.hit {
            self.cache_hits += 1;
            return CacheOutcome {
                demand_miss: None,
                is_load: !op.is_write,
                l3_hit: false,
            };
        }

        let l2 = self.l2.access(addr, false);
        if let Some(victim) = l2.writeback {
            let r3 = self.l3.access(victim << 6, true);
            if let Some(v3) = r3.writeback {
                writebacks.push(v3);
            }
        }
        if !l2.hit {
            // The prefetcher trains on the L2 miss stream.
            self.prefetcher.observe_into(op.block(), prefetches);
        }
        if l2.hit {
            self.cache_hits += 1;
            return CacheOutcome {
                demand_miss: None,
                is_load: !op.is_write,
                l3_hit: false,
            };
        }

        let l3 = self.l3.access(addr, false);
        if let Some(victim) = l3.writeback {
            writebacks.push(victim);
        }
        if l3.hit {
            self.cache_hits += 1;
            CacheOutcome {
                demand_miss: None,
                is_load: !op.is_write,
                l3_hit: true,
            }
        } else {
            self.cache_misses += 1;
            CacheOutcome {
                demand_miss: Some(op.block()),
                is_load: !op.is_write,
                l3_hit: false,
            }
        }
    }

    /// Installs a prefetched block into L2/L3, returning any dirty L3
    /// victim that must be written back to memory.
    pub fn install_prefetch(&mut self, block: u64) -> Option<u64> {
        if self.l2.contains(block << 6) || self.l3.contains(block << 6) {
            return None;
        }
        self.l2
            .fill(block << 6)
            .and_then(|victim| self.l3.fill(victim << 6))
    }

    /// Whether a prefetch for `block` would actually fetch (not
    /// already cached).
    pub fn needs_prefetch(&self, block: u64) -> bool {
        !self.l2.contains(block << 6) && !self.l3.contains(block << 6)
    }

    /// Records a load that must wait for memory.
    pub fn track_load(&mut self, handle: LoadHandle) {
        self.outstanding.push_back((handle, self.instructions));
    }

    /// Drains all outstanding loads (end of simulation), advancing
    /// core time to the last completion.
    pub fn drain<F>(&mut self, mut resolve: F)
    where
        F: FnMut(LoadHandle) -> Picos,
    {
        while let Some((handle, _)) = self.outstanding.pop_front() {
            self.now = self.now.max(resolve(handle));
        }
    }

    /// Warms the L3 partition with `block` (64-byte block address),
    /// optionally dirty — starting the simulation from steady state.
    pub fn prewarm_l3(&mut self, block: u64, dirty: bool) {
        self.l3.prewarm(block << 6, dirty);
    }

    /// Cleans up to `limit` least-recently-used dirty L3 blocks
    /// (Hetero-DMR's write-mode LLC cleaning); returns their block
    /// addresses.
    pub fn clean_llc(&mut self, limit: usize) -> Vec<u64> {
        self.l3.clean_lru_dirty(limit)
    }

    /// Outstanding load-miss count (for tests).
    pub fn outstanding_loads(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreSim {
        CoreSim::new(CoreConfig::default(), 2 * 1024 * 1024)
    }

    fn ready(handle: LoadHandle) -> Picos {
        match handle {
            LoadHandle::Ready(t) => t,
            LoadHandle::Queued { .. } => unreachable!("tests use Ready handles"),
        }
    }

    /// Test shim for the scratch-buffer API: fresh buffers per call.
    fn access(c: &mut CoreSim, op: &MemOp) -> (CacheOutcome, Vec<u64>) {
        let mut writebacks = Vec::new();
        let mut prefetches = Vec::new();
        let out = c.access_caches(op, &mut writebacks, &mut prefetches);
        (out, writebacks)
    }

    #[test]
    fn compute_gap_advances_time() {
        let mut c = core();
        let t0 = c.advance_to_issue(&MemOp::load(0, 399), ready);
        // 400 instructions at 4-wide 3.1 GHz ≈ 100 cycles ≈ 32.3 ns.
        assert!((32_000..33_000).contains(&t0), "t0 {t0}");
        assert_eq!(c.instructions, 400);
    }

    #[test]
    fn first_access_misses_everywhere_second_hits() {
        let mut c = core();
        let op = MemOp::load(0x4000, 0);
        let (out, _) = access(&mut c, &op);
        assert_eq!(out.demand_miss, Some(0x100));
        let (out, _) = access(&mut c, &op);
        assert_eq!(out.demand_miss, None);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cache_misses, 1);
    }

    #[test]
    fn mshr_limit_stalls_core() {
        let mut c = core();
        let far_future = 1_000_000_000;
        for _ in 0..c.config.mshrs {
            c.track_load(LoadHandle::Ready(far_future));
        }
        // Next issue must wait for the oldest outstanding load.
        let t = c.advance_to_issue(&MemOp::load(0, 0), ready);
        assert!(t >= far_future);
    }

    #[test]
    fn rob_limit_stalls_run_ahead() {
        let mut c = core();
        let done_at = 500_000;
        c.advance_to_issue(&MemOp::load(0, 0), ready);
        c.track_load(LoadHandle::Ready(done_at));
        // Run 300 instructions (> 224 ROB) past the outstanding load.
        let t = c.advance_to_issue(&MemOp::load(64, 299), ready);
        assert!(
            t >= done_at,
            "ROB should have stalled to {done_at}, got {t}"
        );
        assert_eq!(c.outstanding_loads(), 0);
    }

    #[test]
    fn under_rob_no_stall() {
        let mut c = core();
        let done_at = 500_000;
        c.advance_to_issue(&MemOp::load(0, 0), ready);
        c.track_load(LoadHandle::Ready(done_at));
        let t = c.advance_to_issue(&MemOp::load(64, 50), ready);
        assert!(t < done_at, "51 instructions fit in the ROB window");
        assert_eq!(c.outstanding_loads(), 1);
    }

    #[test]
    fn dirty_eviction_cascades_to_memory() {
        let mut c = CoreSim::new(
            CoreConfig {
                l1_bytes: 128,
                l1_ways: 2,
                l2_bytes: 256,
                l2_ways: 2,
                ..CoreConfig::default()
            },
            2048, // 2 sets × 16 ways
        );
        // Dirty a block, then stream enough distinct blocks to push it
        // out of the tiny L1 → L2 → L3.
        access(&mut c, &MemOp::store(0, 0));
        let mut writebacks = Vec::new();
        for i in 1..64u64 {
            let (_, wbs) = access(&mut c, &MemOp::load(i * 64, 0));
            writebacks.extend(wbs);
        }
        assert!(writebacks.contains(&0), "dirty block 0 reached memory");
    }

    #[test]
    fn prefetch_installs_and_deduplicates() {
        let mut c = core();
        assert!(c.needs_prefetch(0x900));
        c.install_prefetch(0x900);
        assert!(!c.needs_prefetch(0x900));
        // A later demand access to the prefetched block hits.
        let (out, _) = access(&mut c, &MemOp::load(0x900 << 6, 0));
        assert_eq!(out.demand_miss, None);
    }

    #[test]
    fn drain_advances_to_last_completion() {
        let mut c = core();
        c.track_load(LoadHandle::Ready(42_000));
        c.track_load(LoadHandle::Ready(77_000));
        c.drain(ready);
        assert_eq!(c.now, 77_000);
        assert_eq!(c.outstanding_loads(), 0);
    }

    #[test]
    fn clean_llc_returns_dirty_blocks() {
        let mut c = core();
        // Store misses allocate dirty lines in L1; push them down by
        // streaming, then verify cleaning.
        access(&mut c, &MemOp::store(0, 0));
        // Put the dirty block into L3 by evicting through the levels:
        // simpler — dirty L3 directly via the eviction cascade is
        // already tested; here verify empty-clean is safe.
        assert!(c.clean_llc(10).len() <= 10);
    }
}
