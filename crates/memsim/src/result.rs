//! Measured outputs of a node simulation.

use crate::controller::{ControllerStats, ResidencyStats};
use dram::power::ActivityCounters;
use dram::rate::DataRate;
use dram::Picos;

/// Aggregate results of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total instructions retired across all cores.
    pub instructions: u64,
    /// Wall-clock execution time of the run: the mean core completion
    /// time (plus the final write drain). The mean, not the max,
    /// because each core executes a fixed slice of work and transient
    /// bank-collision episodes land on random cores — over a real
    /// long-running MPI execution they equalize across ranks, so the
    /// short simulated window's stragglers are sampling noise, not
    /// load imbalance. (`slowest_core_ps` preserves the max.)
    pub exec_time_ps: Picos,
    /// Completion time of the slowest core.
    pub slowest_core_ps: Picos,
    /// Merged per-channel controller statistics.
    pub controller: ControllerStats,
    /// Demand accesses that hit in L1/L2/L3 (for cache statistics).
    pub cache_hits: u64,
    /// Demand accesses that missed all cache levels.
    pub cache_misses: u64,
    /// Number of channels that contributed (for bandwidth math).
    pub channels: usize,
    /// Modules (DIMMs) per channel, for normalizing residency to
    /// module units.
    pub modules_per_channel: usize,
    /// Data rate used for reads (for bandwidth utilization math).
    pub read_rate: DataRate,
    /// Bank time-in-state residency merged across channels (finalized
    /// at `slowest_core_ps`), for the state-residency energy model.
    pub residency: ResidencyStats,
}

impl Default for SimResult {
    fn default() -> SimResult {
        SimResult {
            instructions: 0,
            exec_time_ps: 0,
            slowest_core_ps: 0,
            controller: ControllerStats::default(),
            cache_hits: 0,
            cache_misses: 0,
            channels: 0,
            modules_per_channel: 2,
            read_rate: DataRate::MT3200,
            residency: ResidencyStats::default(),
        }
    }
}

impl SimResult {
    /// Instructions per nanosecond (proportional to IPC).
    pub fn instructions_per_ns(&self) -> f64 {
        if self.exec_time_ps == 0 {
            0.0
        } else {
            self.instructions as f64 / (self.exec_time_ps as f64 / 1000.0)
        }
    }

    /// Relative performance vs. a baseline run of the same work:
    /// `baseline_time / this_time` (>1 means faster).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        if self.exec_time_ps == 0 {
            return 0.0;
        }
        baseline.exec_time_ps as f64 / self.exec_time_ps as f64
    }

    /// DRAM accesses (reads + writes) per instruction — Figure 14's
    /// metric.
    pub fn dram_accesses_per_instruction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        (self.controller.reads + self.controller.writes) as f64 / self.instructions as f64
    }

    /// Fraction of DRAM traffic that is writes (Figure 15's ~15 %).
    pub fn write_fraction(&self) -> f64 {
        let total = self.controller.reads + self.controller.writes;
        if total == 0 {
            0.0
        } else {
            self.controller.writes as f64 / total as f64
        }
    }

    /// Achieved DRAM bandwidth as a fraction of the channel peak
    /// (Figure 15's bandwidth utilization).
    pub fn bandwidth_utilization(&self) -> f64 {
        if self.exec_time_ps == 0 || self.channels == 0 {
            return 0.0;
        }
        let bytes = (self.controller.reads + self.controller.writes) * 64;
        let secs = self.exec_time_ps as f64 / 1e12;
        let peak = self.read_rate.peak_bandwidth_bytes_per_s() as f64 * self.channels as f64;
        bytes as f64 / secs / peak
    }

    /// Mean DRAM read latency in nanoseconds.
    pub fn mean_read_latency_ns(&self) -> f64 {
        self.controller.mean_read_latency_ps() / 1000.0
    }

    /// Converts the run into DRAM activity counters for the energy
    /// model. Self-refresh time comes from the simulated bank-state
    /// residency, converted from bank·ps to module·ps (summed across
    /// channels); zero when the run predates residency finalization.
    pub fn activity(&self) -> ActivityCounters {
        ActivityCounters {
            activates: self.controller.activates,
            reads: self.controller.reads,
            writes: self.controller.writes,
            broadcast_extra_cells: self.controller.broadcast_extra_cells,
            refreshes: self.controller.refreshes,
            active_time: self.controller.bus_busy_ps,
            self_refresh_time: self.self_refresh_module_ps(),
            total_time: self.exec_time_ps,
        }
    }

    /// Self-refresh time in module·ps summed over channels: the
    /// residency's bank·ps divided by the banks behind one module.
    pub fn self_refresh_module_ps(&self) -> Picos {
        let modules = self.channels * self.modules_per_channel;
        let banks_per_module = self
            .residency
            .banks
            .checked_div(modules as u64)
            .unwrap_or(0);
        self.residency
            .self_refresh_bank_ps
            .checked_div(banks_per_module)
            .unwrap_or(0)
    }

    /// Overall cache hit rate across demand accesses.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(time: Picos, reads: u64, writes: u64) -> SimResult {
        SimResult {
            instructions: 1_000_000,
            exec_time_ps: time,
            slowest_core_ps: time,
            controller: ControllerStats {
                reads,
                writes,
                ..ControllerStats::default()
            },
            cache_hits: 900,
            cache_misses: 100,
            channels: 1,
            modules_per_channel: 2,
            read_rate: DataRate::MT3200,
            residency: ResidencyStats::default(),
        }
    }

    #[test]
    fn speedup_ratio() {
        let base = result(2_000_000, 100, 10);
        let fast = result(1_000_000, 100, 10);
        assert_eq!(fast.speedup_over(&base), 2.0);
        assert_eq!(base.speedup_over(&base), 1.0);
    }

    #[test]
    fn write_fraction_and_accesses_per_instruction() {
        let r = result(1_000_000, 850, 150);
        assert!((r.write_fraction() - 0.15).abs() < 1e-12);
        assert!((r.dram_accesses_per_instruction() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_utilization_bounds() {
        // 1000 blocks in 1 us over one 25.6 GB/s channel:
        // 64 000 B / 1e-6 s = 64 GB/s?? — no: utilization must cap at
        // what the math says; just verify the formula.
        let r = result(1_000_000, 300, 100);
        let bytes = 400.0 * 64.0;
        let expect = bytes / 1e-6 / 25.6e9;
        assert!((r.bandwidth_utilization() - expect).abs() < 1e-9);
    }

    #[test]
    fn zero_time_is_safe() {
        let r = result(0, 0, 0);
        assert_eq!(r.instructions_per_ns(), 0.0);
        assert_eq!(r.bandwidth_utilization(), 0.0);
        assert_eq!(r.speedup_over(&r), 0.0);
    }

    #[test]
    fn activity_conversion() {
        let r = result(5_000, 10, 5);
        let a = r.activity();
        assert_eq!(a.reads, 10);
        assert_eq!(a.writes, 5);
        assert_eq!(a.total_time, 5_000);
    }

    #[test]
    fn cache_hit_rate() {
        let r = result(1, 0, 0);
        assert!((r.cache_hit_rate() - 0.9).abs() < 1e-12);
    }
}
