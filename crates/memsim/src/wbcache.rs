//! The per-channel 128 KB 64-way victim writeback cache
//! (Section III-E of the paper, reused from FMR).
//!
//! Dirty blocks evicted from the LLC land here instead of the small
//! 128-entry write buffer, so the buffer does not fill before the LLC
//! has accumulated a large write batch. A read that hits the writeback
//! cache is serviced without going to DRAM. When the channel enters
//! write mode the cache's contents are drained to DRAM through the
//! write buffer.

/// The victim writeback cache: 64-way set-associative over block
/// addresses, FIFO within a set (victim-buffer semantics).
#[derive(Debug, Clone)]
pub struct WritebackCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    read_hits: u64,
}

impl WritebackCache {
    /// Builds the paper's 128 KB, 64-way configuration: 32 sets of 64
    /// blocks.
    pub fn paper_default() -> WritebackCache {
        WritebackCache::new(128 * 1024, 64)
    }

    /// Builds a cache of `size_bytes` with `ways` blocks per set.
    ///
    /// # Panics
    ///
    /// Panics unless the set count is a nonzero power of two.
    pub fn new(size_bytes: usize, ways: usize) -> WritebackCache {
        let sets = size_bytes / (64 * ways);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "writeback cache needs a power-of-two set count"
        );
        WritebackCache {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            read_hits: 0,
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    /// Offers an evicted dirty block. Returns `true` when absorbed;
    /// `false` when the set is full and the block must go to the write
    /// buffer instead (the paper's overflow rule).
    pub fn offer(&mut self, block: u64) -> bool {
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        if set.contains(&block) {
            return true; // coalesced with an existing pending write
        }
        if set.len() < self.ways {
            set.push(block);
            true
        } else {
            false
        }
    }

    /// Read-hit check: a load that finds its block here is serviced
    /// from the cache. The entry stays pending (it is still dirty).
    pub fn read_hit(&mut self, block: u64) -> bool {
        let set_idx = self.set_of(block);
        let hit = self.sets[set_idx].contains(&block);
        if hit {
            self.read_hits += 1;
        }
        hit
    }

    /// Drains every pending block (write-mode entry), leaving the
    /// cache empty.
    pub fn drain(&mut self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        self.drain_with(|block| out.push(block));
        out
    }

    /// Drains every pending block through `sink` (same set order as
    /// [`drain`](Self::drain)), leaving the cache empty — the write
    /// path feeds blocks straight into the controller's write queue
    /// without building an intermediate vector.
    pub fn drain_with<F: FnMut(u64)>(&mut self, mut sink: F) {
        for set in &mut self.sets {
            for block in set.drain(..) {
                sink(block);
            }
        }
    }

    /// Pending block count.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no writes are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Loads serviced by this cache so far.
    pub fn read_hits(&self) -> u64 {
        self.read_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let c = WritebackCache::paper_default();
        assert_eq!(c.sets.len(), 32);
        assert_eq!(c.ways, 64);
        // 32 sets × 64 ways × 64 B = 128 KB.
        assert_eq!(c.sets.len() * c.ways * 64, 128 * 1024);
    }

    #[test]
    fn absorbs_until_set_full_then_overflows() {
        let mut c = WritebackCache::new(64 * 2 * 64, 2); // 64 sets × 2 ways
        let set_stride = 64u64; // blocks mapping to the same set
        assert!(c.offer(0));
        assert!(c.offer(set_stride));
        assert!(
            !c.offer(2 * set_stride),
            "third block in a 2-way set overflows"
        );
        // A different set still has room.
        assert!(c.offer(1));
    }

    #[test]
    fn duplicate_offers_coalesce() {
        let mut c = WritebackCache::paper_default();
        assert!(c.offer(42));
        assert!(c.offer(42));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn read_hits_are_counted_and_nondestructive() {
        let mut c = WritebackCache::paper_default();
        c.offer(7);
        assert!(c.read_hit(7));
        assert!(c.read_hit(7));
        assert!(!c.read_hit(8));
        assert_eq!(c.read_hits(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn drain_empties_everything() {
        let mut c = WritebackCache::paper_default();
        for b in 0..100u64 {
            c.offer(b);
        }
        let drained = c.drain();
        assert_eq!(drained.len(), 100);
        assert!(c.is_empty());
        let mut sorted = drained;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100u64).collect::<Vec<_>>());
    }
}
