//! Set-associative write-back caches with true-LRU replacement.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Block address of a dirty victim evicted by the fill (misses
    /// only; `None` when the victim was clean or the set had room).
    pub writeback: Option<u64>,
}

/// One cache line slot. `lru == 0` marks an empty slot — the access
/// tick is pre-incremented, so a resident line's recency is always
/// nonzero. Empty slots carry [`TAG_EMPTY`] so the hit path can scan
/// on the tag alone: a real tag is `addr >> (6 + index_bits)`, which
/// can never reach `u64::MAX`.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Higher = more recently used; 0 = slot empty.
    lru: u64,
}

/// Tag sentinel for empty slots (unreachable by any real address).
const TAG_EMPTY: u64 = u64::MAX;

const EMPTY: Line = Line {
    tag: TAG_EMPTY,
    dirty: false,
    lru: 0,
};

/// A set-associative write-back, write-allocate cache.
///
/// Operates on 64-byte block addresses (`addr >> 6`). Lines live in
/// one contiguous `ways`-strided array (a set is a slice of it), so an
/// access probes a single cache-resident span instead of chasing a
/// per-set allocation.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    ways: usize,
    set_count: usize,
    set_mask: u64,
    set_shift: u32,
    /// `set_count.trailing_zeros()`, cached for address reassembly.
    index_bits: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `size_bytes` with `ways` associativity and
    /// 64-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes / (64 * ways)` is a nonzero power of
    /// two (required for mask-based set indexing).
    pub fn new(size_bytes: usize, ways: usize) -> Cache {
        let set_count = size_bytes / (64 * ways);
        assert!(
            set_count > 0 && set_count.is_power_of_two(),
            "cache must have a power-of-two number of sets (got {set_count})"
        );
        Cache {
            lines: vec![EMPTY; set_count * ways],
            ways,
            set_count,
            set_mask: (set_count - 1) as u64,
            set_shift: 6,
            index_bits: set_count.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.set_count * self.ways * 64
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.set_shift;
        ((block & self.set_mask) as usize, block >> self.index_bits)
    }

    /// Reassembles a line's block address from its tag and set.
    fn block_of(&self, set_idx: usize, tag: u64) -> u64 {
        let shift_back = self.set_shift + self.index_bits;
        let set_bits = (set_idx as u64) << self.set_shift;
        ((tag << shift_back) | set_bits) >> self.set_shift
    }

    /// The matching slot, or the insertion slot (first empty, else
    /// LRU victim). The hit scan compares tags alone — [`TAG_EMPTY`]
    /// makes empty slots unmatchable — so the common (hit) path is a
    /// single compare per way; the insertion scan only runs on a
    /// miss.
    #[inline]
    fn probe(set: &[Line], tag: u64) -> Result<usize, usize> {
        if let Some(at) = set.iter().position(|l| l.tag == tag) {
            return Ok(at);
        }
        let mut slot = 0;
        let mut slot_lru = u64::MAX;
        for (i, line) in set.iter().enumerate() {
            if line.lru == 0 {
                return Err(i); // first empty slot wins
            }
            if line.lru < slot_lru {
                slot_lru = line.lru;
                slot = i;
            }
        }
        Err(slot)
    }

    /// Accesses `addr`; on a miss the block is allocated (write-
    /// allocate) and the LRU victim evicted.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.ways;
        match Self::probe(&self.lines[base..base + self.ways], tag) {
            Ok(at) => {
                let line = &mut self.lines[base + at];
                line.lru = tick;
                line.dirty |= is_write;
                self.hits += 1;
                AccessResult {
                    hit: true,
                    writeback: None,
                }
            }
            Err(slot) => {
                self.misses += 1;
                let victim = self.lines[base + slot];
                let writeback =
                    (victim.lru != 0 && victim.dirty).then(|| self.block_of(set_idx, victim.tag));
                self.lines[base + slot] = Line {
                    tag,
                    dirty: is_write,
                    lru: tick,
                };
                AccessResult {
                    hit: false,
                    writeback,
                }
            }
        }
    }

    /// Fills `addr` without counting a demand access (prefetch path).
    /// Returns a dirty victim's block address if one was evicted.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.ways;
        match Self::probe(&self.lines[base..base + self.ways], tag) {
            Ok(at) => {
                // Already present: refresh recency only.
                self.lines[base + at].lru = tick;
                None
            }
            Err(slot) => {
                let victim = self.lines[base + slot];
                let writeback =
                    (victim.lru != 0 && victim.dirty).then(|| self.block_of(set_idx, victim.tag));
                self.lines[base + slot] = Line {
                    tag,
                    dirty: false,
                    lru: tick,
                };
                writeback
            }
        }
    }

    /// Installs `addr` with an explicit dirty flag, without counting
    /// statistics or producing writebacks — cache warmup for starting
    /// a simulation in steady state (the paper warms its gem5 caches
    /// before measuring). The LRU victim of a full set is dropped
    /// (warmup victims carry no obligations).
    pub fn prewarm(&mut self, addr: u64, dirty: bool) {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.ways;
        match Self::probe(&self.lines[base..base + self.ways], tag) {
            Ok(at) => {
                let line = &mut self.lines[base + at];
                line.lru = tick;
                line.dirty |= dirty;
            }
            Err(slot) => {
                self.lines[base + slot] = Line {
                    tag,
                    dirty,
                    lru: tick,
                };
            }
        }
    }

    /// Whether `addr`'s block is currently cached (no LRU update).
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.ways;
        // Tag-only compare: TAG_EMPTY keeps empty slots unmatchable.
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.tag == tag)
    }

    /// Collects up to `limit` least-recently-used *dirty* blocks across
    /// the cache and marks them clean, returning their block addresses
    /// — the LLC-cleaning operation Hetero-DMR performs when a channel
    /// enters write mode (Section III-E: "first cleans least-recently
    /// used blocks as they are unlikely to be re-written").
    pub fn clean_lru_dirty(&mut self, limit: usize) -> Vec<u64> {
        let mut dirty: Vec<(u64, u64)> = Vec::new();
        for set_idx in 0..self.set_count {
            let base = set_idx * self.ways;
            for line in &self.lines[base..base + self.ways] {
                if line.lru != 0 && line.dirty {
                    dirty.push((line.lru, self.block_of(set_idx, line.tag)));
                }
            }
        }
        dirty.sort_unstable_by_key(|&(lru, _)| lru);
        dirty.truncate(limit);
        let chosen: Vec<u64> = dirty.iter().map(|&(_, b)| b).collect();
        for &b in &chosen {
            let addr = b << self.set_shift;
            let (set_idx, tag) = self.index(addr);
            let base = set_idx * self.ways;
            if let Some(line) = self.lines[base..base + self.ways]
                .iter_mut()
                .find(|l| l.lru != 0 && l.tag == tag)
            {
                line.dirty = false;
            }
        }
        chosen
    }

    /// Number of dirty lines currently resident.
    pub fn dirty_count(&self) -> usize {
        self.lines.iter().filter(|l| l.lru != 0 && l.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(4096, 4); // 16 sets
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1004, false).hit, "same block different byte");
        assert!(!c.access(0x2000, false).hit);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set x 2 ways: 128-byte cache.
        let mut c = Cache::new(128, 2);
        c.access(0, false); // A
        c.access(64, false); // B (1 set: every block maps to set 0)
        c.access(128, false); // C evicts A (LRU)
        assert!(!c.access(0, false).hit, "A was evicted");
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = Cache::new(128, 2); // 1 set, 2 ways
        c.access(0, true); // dirty A
        c.access(64, false); // clean B
        let res = c.access(128, false); // evicts A (LRU, dirty)
        assert_eq!(res.writeback, Some(0), "dirty block 0 written back");
        let res = c.access(192, false); // evicts B (clean)
        assert_eq!(res.writeback, None);
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = Cache::new(128, 2);
        c.access(0, false); // clean fill
        c.access(0, true); // dirty it
        c.access(64, false);
        let res = c.access(128, false); // evict block 0
        assert_eq!(res.writeback, Some(0));
    }

    #[test]
    fn fill_does_not_count_as_demand() {
        let mut c = Cache::new(4096, 4);
        c.fill(0x40);
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(c.access(0x40, false).hit, "prefetched block hits");
    }

    #[test]
    fn writeback_address_round_trips() {
        let mut c = Cache::new(8192, 2); // 64 sets
        let addr = 0xABCD40;
        c.access(addr, true);
        // Evict it by filling the same set with 2 more blocks.
        let set_stride = 64 * 64; // sets * block
        let r1 = c.access(addr + set_stride as u64, false);
        assert_eq!(r1.writeback, None);
        let r2 = c.access(addr + 2 * set_stride as u64, false);
        assert_eq!(r2.writeback, Some(addr >> 6));
    }

    #[test]
    fn clean_lru_dirty_prefers_oldest() {
        let mut c = Cache::new(4096, 4);
        c.access(0, true); // oldest dirty
        c.access(64, true);
        c.access(128, true); // newest dirty
        let cleaned = c.clean_lru_dirty(2);
        assert_eq!(cleaned, vec![0, 1]);
        assert_eq!(c.dirty_count(), 1);
        // Cleaned blocks are still resident.
        assert!(c.contains(0));
        assert!(c.contains(64));
    }

    #[test]
    fn clean_lru_dirty_respects_limit() {
        let mut c = Cache::new(4096, 4);
        for i in 0..10u64 {
            c.access(i * 64, true);
        }
        assert_eq!(c.clean_lru_dirty(100).len(), 10);
        assert_eq!(c.dirty_count(), 0);
        assert!(c.clean_lru_dirty(5).is_empty());
    }

    #[test]
    fn hit_rate_tracks() {
        let mut c = Cache::new(4096, 4);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_sets_rejected() {
        let _ = Cache::new(4096, 3);
    }

    #[test]
    fn empty_slots_fill_before_eviction() {
        let mut c = Cache::new(256, 4); // 1 set, 4 ways
        c.access(0, true);
        // Three more fills must use empty slots, not evict the dirty
        // line.
        for i in 1..4u64 {
            assert_eq!(c.access(i * 64, false).writeback, None);
        }
        // Now the set is full: the next miss evicts LRU (block 0).
        assert_eq!(c.access(4 * 64, false).writeback, Some(0));
    }
}
