//! Set-associative write-back caches with true-LRU replacement.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Block address of a dirty victim evicted by the fill (misses
    /// only; `None` when the victim was clean or the set had room).
    pub writeback: Option<u64>,
}

/// Tag sentinel for empty slots (unreachable by any real address: a
/// real tag is `addr >> (6 + index_bits)`, which can never reach
/// `u64::MAX`).
const TAG_EMPTY: u64 = u64::MAX;

/// A set-associative write-back, write-allocate cache.
///
/// Operates on 64-byte block addresses (`addr >> 6`). State is
/// struct-of-arrays: one contiguous `ways`-strided tag array, a
/// parallel recency array, and a packed dirty bitmask. The hit path —
/// the overwhelmingly common case — scans only the tag array: a
/// 16-way set is two cache lines of tags instead of six lines of
/// tag/lru/dirty records, and the compare loop is branch-light enough
/// to vectorize. Recency (`lru == 0` marks an empty slot; the access
/// tick is pre-incremented so resident lines are always nonzero) and
/// dirty bits are only touched for the one line an access actually
/// changes.
#[derive(Debug, Clone)]
pub struct Cache {
    tags: Vec<u64>,
    /// Higher = more recently used; 0 = slot empty.
    lru: Vec<u64>,
    /// Packed dirty bits, one per line slot.
    dirty: Vec<u64>,
    ways: usize,
    set_count: usize,
    set_mask: u64,
    set_shift: u32,
    /// `set_count.trailing_zeros()`, cached for address reassembly.
    index_bits: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `size_bytes` with `ways` associativity and
    /// 64-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes / (64 * ways)` is a nonzero power of
    /// two (required for mask-based set indexing).
    pub fn new(size_bytes: usize, ways: usize) -> Cache {
        let set_count = size_bytes / (64 * ways);
        assert!(
            set_count > 0 && set_count.is_power_of_two(),
            "cache must have a power-of-two number of sets (got {set_count})"
        );
        let lines = set_count * ways;
        Cache {
            tags: vec![TAG_EMPTY; lines],
            lru: vec![0; lines],
            dirty: vec![0; lines.div_ceil(64)],
            ways,
            set_count,
            set_mask: (set_count - 1) as u64,
            set_shift: 6,
            index_bits: set_count.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.set_count * self.ways * 64
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.set_shift;
        ((block & self.set_mask) as usize, block >> self.index_bits)
    }

    /// Reassembles a line's block address from its tag and set.
    fn block_of(&self, set_idx: usize, tag: u64) -> u64 {
        let shift_back = self.set_shift + self.index_bits;
        let set_bits = (set_idx as u64) << self.set_shift;
        ((tag << shift_back) | set_bits) >> self.set_shift
    }

    #[inline]
    fn is_dirty(&self, line: usize) -> bool {
        self.dirty[line >> 6] & (1u64 << (line & 63)) != 0
    }

    #[inline]
    fn set_dirty(&mut self, line: usize, dirty: bool) {
        let word = &mut self.dirty[line >> 6];
        let bit = 1u64 << (line & 63);
        if dirty {
            *word |= bit;
        } else {
            *word &= !bit;
        }
    }

    /// The matching slot, or the insertion slot (first empty, else LRU
    /// victim). The hit scan compares tags alone — [`TAG_EMPTY`] makes
    /// empty slots unmatchable — so the common (hit) path is a single
    /// compare per way.
    ///
    /// Occupied slots always form a prefix of the set (insertions take
    /// the leftmost empty slot and a tag is never reset to empty), so
    /// a miss in a set whose last slot is still empty resolves from
    /// the tag array alone — cold fills and prewarm never touch the
    /// recency array to *find* their slot; the LRU scan runs only for
    /// full sets.
    #[inline]
    fn probe(&self, base: usize, tag: u64) -> Result<usize, usize> {
        let tags = &self.tags[base..base + self.ways];
        if let Some(at) = tags.iter().position(|&t| t == tag) {
            return Ok(at);
        }
        if tags[self.ways - 1] == TAG_EMPTY {
            let at = tags
                .iter()
                .position(|&t| t == TAG_EMPTY)
                .expect("last slot is empty");
            return Err(at); // first empty slot wins
        }
        let lru = &self.lru[base..base + self.ways];
        let mut slot = 0;
        let mut slot_lru = u64::MAX;
        for (i, &l) in lru.iter().enumerate() {
            if l < slot_lru {
                slot_lru = l;
                slot = i;
            }
        }
        Err(slot)
    }

    /// Accesses `addr`; on a miss the block is allocated (write-
    /// allocate) and the LRU victim evicted.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.ways;
        match self.probe(base, tag) {
            Ok(at) => {
                let line = base + at;
                self.lru[line] = tick;
                if is_write {
                    self.set_dirty(line, true);
                }
                self.hits += 1;
                AccessResult {
                    hit: true,
                    writeback: None,
                }
            }
            Err(slot) => {
                self.misses += 1;
                let line = base + slot;
                let writeback = (self.lru[line] != 0 && self.is_dirty(line))
                    .then(|| self.block_of(set_idx, self.tags[line]));
                self.tags[line] = tag;
                self.lru[line] = tick;
                self.set_dirty(line, is_write);
                AccessResult {
                    hit: false,
                    writeback,
                }
            }
        }
    }

    /// Fills `addr` without counting a demand access (prefetch path).
    /// Returns a dirty victim's block address if one was evicted.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.ways;
        match self.probe(base, tag) {
            Ok(at) => {
                // Already present: refresh recency only.
                self.lru[base + at] = tick;
                None
            }
            Err(slot) => {
                let line = base + slot;
                let writeback = (self.lru[line] != 0 && self.is_dirty(line))
                    .then(|| self.block_of(set_idx, self.tags[line]));
                self.tags[line] = tag;
                self.lru[line] = tick;
                self.set_dirty(line, false);
                writeback
            }
        }
    }

    /// Installs `addr` with an explicit dirty flag, without counting
    /// statistics or producing writebacks — cache warmup for starting
    /// a simulation in steady state (the paper warms its gem5 caches
    /// before measuring). The LRU victim of a full set is dropped
    /// (warmup victims carry no obligations).
    pub fn prewarm(&mut self, addr: u64, dirty: bool) {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.ways;
        match self.probe(base, tag) {
            Ok(at) => {
                let line = base + at;
                self.lru[line] = tick;
                if dirty {
                    self.set_dirty(line, true);
                }
            }
            Err(slot) => {
                let line = base + slot;
                self.tags[line] = tag;
                self.lru[line] = tick;
                self.set_dirty(line, dirty);
            }
        }
    }

    /// Whether `addr`'s block is currently cached (no LRU update).
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        let base = set_idx * self.ways;
        // Tag-only compare: TAG_EMPTY keeps empty slots unmatchable.
        self.tags[base..base + self.ways].contains(&tag)
    }

    /// Collects up to `limit` least-recently-used *dirty* blocks across
    /// the cache and marks them clean, returning their block addresses
    /// — the LLC-cleaning operation Hetero-DMR performs when a channel
    /// enters write mode (Section III-E: "first cleans least-recently
    /// used blocks as they are unlikely to be re-written").
    pub fn clean_lru_dirty(&mut self, limit: usize) -> Vec<u64> {
        let mut dirty: Vec<(u64, usize)> = Vec::new();
        for (word_idx, &word) in self.dirty.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let line = word_idx * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if line < self.lru.len() && self.lru[line] != 0 {
                    dirty.push((self.lru[line], line));
                }
            }
        }
        dirty.sort_unstable_by_key(|&(lru, _)| lru);
        dirty.truncate(limit);
        let mut chosen = Vec::with_capacity(dirty.len());
        for &(_, line) in &dirty {
            self.set_dirty(line, false);
            chosen.push(self.block_of(line / self.ways, self.tags[line]));
        }
        chosen
    }

    /// Number of dirty lines currently resident.
    pub fn dirty_count(&self) -> usize {
        // Dirty bits are only ever set on resident lines, and eviction
        // rewrites the slot's bit — so the popcount is exact.
        self.dirty.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(4096, 4); // 16 sets
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1004, false).hit, "same block different byte");
        assert!(!c.access(0x2000, false).hit);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set x 2 ways: 128-byte cache.
        let mut c = Cache::new(128, 2);
        c.access(0, false); // A
        c.access(64, false); // B (1 set: every block maps to set 0)
        c.access(128, false); // C evicts A (LRU)
        assert!(!c.access(0, false).hit, "A was evicted");
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = Cache::new(128, 2); // 1 set, 2 ways
        c.access(0, true); // dirty A
        c.access(64, false); // clean B
        let res = c.access(128, false); // evicts A (LRU, dirty)
        assert_eq!(res.writeback, Some(0), "dirty block 0 written back");
        let res = c.access(192, false); // evicts B (clean)
        assert_eq!(res.writeback, None);
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = Cache::new(128, 2);
        c.access(0, false); // clean fill
        c.access(0, true); // dirty it
        c.access(64, false);
        let res = c.access(128, false); // evict block 0
        assert_eq!(res.writeback, Some(0));
    }

    #[test]
    fn fill_does_not_count_as_demand() {
        let mut c = Cache::new(4096, 4);
        c.fill(0x40);
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(c.access(0x40, false).hit, "prefetched block hits");
    }

    #[test]
    fn writeback_address_round_trips() {
        let mut c = Cache::new(8192, 2); // 64 sets
        let addr = 0xABCD40;
        c.access(addr, true);
        // Evict it by filling the same set with 2 more blocks.
        let set_stride = 64 * 64; // sets * block
        let r1 = c.access(addr + set_stride as u64, false);
        assert_eq!(r1.writeback, None);
        let r2 = c.access(addr + 2 * set_stride as u64, false);
        assert_eq!(r2.writeback, Some(addr >> 6));
    }

    #[test]
    fn clean_lru_dirty_prefers_oldest() {
        let mut c = Cache::new(4096, 4);
        c.access(0, true); // oldest dirty
        c.access(64, true);
        c.access(128, true); // newest dirty
        let cleaned = c.clean_lru_dirty(2);
        assert_eq!(cleaned, vec![0, 1]);
        assert_eq!(c.dirty_count(), 1);
        // Cleaned blocks are still resident.
        assert!(c.contains(0));
        assert!(c.contains(64));
    }

    #[test]
    fn clean_lru_dirty_respects_limit() {
        let mut c = Cache::new(4096, 4);
        for i in 0..10u64 {
            c.access(i * 64, true);
        }
        assert_eq!(c.clean_lru_dirty(100).len(), 10);
        assert_eq!(c.dirty_count(), 0);
        assert!(c.clean_lru_dirty(5).is_empty());
    }

    #[test]
    fn hit_rate_tracks() {
        let mut c = Cache::new(4096, 4);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_sets_rejected() {
        let _ = Cache::new(4096, 3);
    }

    #[test]
    fn empty_slots_fill_before_eviction() {
        let mut c = Cache::new(256, 4); // 1 set, 4 ways
        c.access(0, true);
        // Three more fills must use empty slots, not evict the dirty
        // line.
        for i in 1..4u64 {
            assert_eq!(c.access(i * 64, false).writeback, None);
        }
        // Now the set is full: the next miss evicts LRU (block 0).
        assert_eq!(c.access(4 * 64, false).writeback, Some(0));
    }

    #[test]
    fn dirty_count_survives_eviction_overwrite() {
        let mut c = Cache::new(128, 2); // 1 set, 2 ways
        c.access(0, true); // dirty A
        c.access(64, true); // dirty B
        assert_eq!(c.dirty_count(), 2);
        let res = c.access(128, false); // evicts dirty A with a clean line
        assert_eq!(res.writeback, Some(0));
        assert_eq!(c.dirty_count(), 1, "evicted line's dirty bit cleared");
    }
}
