//! Differential property test: the indexed, allocation-free
//! [`ChannelController`] must be observationally identical to the
//! frozen naive [`ReferenceController`] — same per-read latencies,
//! same statistics, same pending-write depth — on randomized op
//! sequences covering every channel mode the designs use (rank
//! restriction, FMR read choice, broadcast copies, write batching,
//! turnaround penalties).
//!
//! Token *values* are an implementation detail (the reference hands
//! out sequence numbers, the real controller slab slots), so the
//! driver pairs each tracked submission's two tokens and only ever
//! compares resolved latencies.

use dram::timing::MemorySetting;
use dram::Picos;
use memsim::address::DramCoord;
use memsim::config::{ChannelMode, MemoryConfig};
use memsim::controller::ChannelController;
use memsim::reference::ReferenceController;

/// splitmix64: tiny, seedable, good enough to shuffle op sequences.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A randomized but *valid* channel mode: knob combinations drawn from
/// the space the memory designs actually inhabit, plus adversarial
/// corners (tiny write batches, broadcast without rank restriction).
fn random_mode(rng: &mut Rng) -> ChannelMode {
    let settings = [
        MemorySetting::Specified,
        MemorySetting::LatencyMargin,
        MemorySetting::FrequencyMargin,
        MemorySetting::FreqLatMargin,
    ];
    let mut mode = ChannelMode::commercial_baseline();
    mode.read_timing = settings[rng.below(4) as usize].timing();
    mode.write_timing = settings[rng.below(4) as usize].timing();
    mode.read_ranks = match rng.below(3) {
        0 => None,
        1 => Some(1),
        _ => Some(2),
    };
    mode.fmr_read_choice = rng.chance(30);
    mode.broadcast_copies = rng.below(3) as u32;
    mode.turnaround_penalty_ps = if rng.chance(50) { 1_000_000 } else { 0 };
    mode.write_batch = if rng.chance(30) {
        1 + rng.below(63) as usize
    } else {
        usize::MAX
    };
    mode
}

/// Drives one op sequence through both controllers, comparing every
/// observable as it goes and the full statistics at the end.
fn run_sequence(seed: u64) {
    let mut rng = Rng(seed);
    let mode = random_mode(&mut rng);
    let mem = MemoryConfig::default();
    let page_timeout_ps: Picos = 200 * 625; // 200 cycles at 3200 MT/s
    let mut real = ChannelController::new(mode, mem, page_timeout_ps);
    let mut naive = ReferenceController::new(mode, mem, page_timeout_ps);

    let ranks = mem.ranks_per_channel() as u64;
    let banks = mem.banks_per_rank as u64;
    let mut now: Picos = 0;
    // Outstanding tracked reads as (real token, reference token).
    let mut outstanding: Vec<(u64, u64)> = Vec::new();

    let ops = 40 + rng.below(160);
    for _ in 0..ops {
        now += rng.below(40_000);
        let coord = DramCoord {
            channel: 0,
            rank: rng.below(ranks) as usize,
            bank: rng.below(banks) as usize,
            row: rng.below(24),
            column: rng.below(64),
        };
        match rng.below(100) {
            // Tracked read: remember the token pair.
            0..=44 => {
                let rt = real.submit_read(coord, now, true);
                let nt = naive.submit_read(coord, now, true);
                outstanding.push((rt, nt));
            }
            // Untracked (prefetch) read: fire and forget.
            45..=59 => {
                let _ = real.submit_read(coord, now, false);
                let _ = naive.submit_read(coord, now, false);
            }
            // Resolve a random outstanding read; latencies must agree.
            60..=79 => {
                if !outstanding.is_empty() {
                    let at = rng.below(outstanding.len() as u64) as usize;
                    let (rt, nt) = outstanding.swap_remove(at);
                    assert_eq!(
                        real.resolve_read(rt),
                        naive.resolve_read(nt),
                        "latency diverged (seed {seed})"
                    );
                }
            }
            // Queue a write.
            80..=92 => {
                real.enqueue_write(coord);
                naive.enqueue_write(coord);
            }
            // Drain a write batch; resume times must agree.
            _ => {
                assert_eq!(
                    real.drain_writes(now),
                    naive.drain_writes(now),
                    "write-drain resume diverged (seed {seed})"
                );
            }
        }
        assert_eq!(
            real.pending_writes(),
            naive.pending_writes(),
            "write-queue depth diverged (seed {seed})"
        );
    }

    // Settle: resolve everything outstanding, flush the queues.
    for (rt, nt) in outstanding {
        assert_eq!(
            real.resolve_read(rt),
            naive.resolve_read(nt),
            "latency diverged at settle (seed {seed})"
        );
    }
    real.process_reads();
    naive.process_reads();
    while naive.pending_writes() > 0 {
        now += 1_000_000;
        assert_eq!(
            real.drain_writes(now),
            naive.drain_writes(now),
            "final drain diverged (seed {seed})"
        );
    }
    assert_eq!(
        real.stats(),
        naive.stats(),
        "statistics diverged (seed {seed})"
    );
}

/// ≥1000 random sequences; each covers a fresh mode and op stream.
#[test]
fn controller_matches_reference_on_random_sequences() {
    for seed in 0..1024u64 {
        run_sequence(0xD1FF_0000 + seed);
    }
}

/// Pin the bank-fairness bypass path: a stream of row hits to one bank
/// must not starve an older request to another bank forever, and both
/// implementations must break the tie at the same op.
#[test]
fn bypass_cap_behaviour_matches() {
    for seed in 0..64u64 {
        let mut rng = Rng(0xBCA5_0000 + seed);
        let mode = ChannelMode::commercial_baseline();
        let mem = MemoryConfig::default();
        let mut real = ChannelController::new(mode, mem, 125_000);
        let mut naive = ReferenceController::new(mode, mem, 125_000);
        // One old request parked on bank 1...
        let parked = DramCoord {
            channel: 0,
            rank: 0,
            bank: 1,
            row: 5,
            column: 0,
        };
        let rt = real.submit_read(parked, 0, true);
        let nt = naive.submit_read(parked, 0, true);
        // ...then a long, interleaved row-hit stream to bank 0 that
        // keeps winning the FR-FCFS pick until the cap trips.
        let mut pairs = Vec::new();
        for i in 0..200u64 {
            let c = DramCoord {
                channel: 0,
                rank: 0,
                bank: 0,
                row: 9,
                column: i % 64,
            };
            let arrival = 100 + i * rng.below(50);
            pairs.push((
                real.submit_read(c, arrival, true),
                naive.submit_read(c, arrival, true),
            ));
            if rng.chance(20) {
                let (r, n) = pairs.swap_remove(rng.below(pairs.len() as u64) as usize);
                assert_eq!(real.resolve_read(r), naive.resolve_read(n));
            }
        }
        assert_eq!(real.resolve_read(rt), naive.resolve_read(nt));
        for (r, n) in pairs {
            assert_eq!(real.resolve_read(r), naive.resolve_read(n));
        }
        assert_eq!(real.stats(), naive.stats());
    }
}

/// Node-level windowing differential: splitting one run into any
/// sequence of `run_steps` windows — including boundaries that land
/// mid-refresh-interval and mid-write-drain-cadence — must be
/// byte-identical to the single-shot run, in both the `SimResult` and
/// the telemetry registry the per-window tallies flush into.
mod windowed {
    use super::Rng;
    use memsim::{ChannelMode, HierarchyConfig, MemOp, NodeSim, SimResult};
    use telemetry::{Registry, Snapshot};

    /// A write-heavy synthetic stream over a footprint big enough to
    /// thrash the shrunken caches below, so the run exercises
    /// writebacks, batched write drains, and refresh windows.
    fn stream(seed: u64, ops: usize) -> Vec<MemOp> {
        let mut rng = Rng(seed);
        let footprint_blocks = 1u64 << 13;
        let mut cursor = 0u64;
        (0..ops)
            .map(|_| {
                let addr = if rng.chance(70) {
                    cursor = (cursor + 1) % footprint_blocks;
                    cursor * 64
                } else {
                    rng.below(footprint_blocks) * 64
                };
                let gap = 5 + rng.below(35) as u32;
                if rng.chance(40) {
                    MemOp::store(addr, gap)
                } else {
                    MemOp::load(addr, gap)
                }
            })
            .collect()
    }

    /// Hierarchy1 with shrunken caches (as the unit tests use) so the
    /// short streams generate real DRAM traffic.
    fn small() -> HierarchyConfig {
        let mut h = HierarchyConfig::hierarchy1();
        h.core.l1_bytes = 4 * 1024;
        h.core.l2_bytes = 16 * 1024;
        h.cache_per_core_bytes = 48 * 1024;
        h
    }

    const OPS_PER_CORE: usize = 4_000;

    fn fresh_node(r: &Registry) -> (NodeSim, Vec<std::vec::IntoIter<MemOp>>) {
        let h = small();
        let mut node = NodeSim::new(h, ChannelMode::commercial_baseline());
        node.attach_telemetry(&r.scope("node"));
        let streams: Vec<_> = (0..h.cores)
            .map(|i| stream(0xD1F7 + i as u64, OPS_PER_CORE).into_iter())
            .collect();
        (node, streams)
    }

    /// Runs the workload split at the given op-count boundaries
    /// (`u64::MAX` always closes the run).
    fn run_split(budgets: &[u64]) -> (SimResult, Snapshot) {
        let r = Registry::new();
        let (mut node, streams) = fresh_node(&r);
        let mut cursor = node.begin(streams);
        for &b in budgets {
            node.run_steps(&mut cursor, b);
        }
        node.run_steps(&mut cursor, u64::MAX);
        assert!(cursor.done());
        let result = node.finish(cursor);
        (result, r.snapshot())
    }

    #[test]
    fn any_window_partition_is_byte_identical() {
        let (reference, ref_snap) = run_split(&[]);
        // The single-shot run must exercise the stateful machinery a
        // window boundary could plausibly corrupt: refresh interval
        // accounting and the write-drain cadence.
        assert!(reference.controller.refreshes > 0, "no refreshes crossed");
        assert!(
            reference.controller.write_mode_entries > 0,
            "no write drains crossed"
        );

        let total = (small().cores * OPS_PER_CORE) as u64;
        let mut rng = Rng(0xBEEF);
        for windows in [1usize, 2, 7, 64] {
            // Random uneven budgets averaging total/windows: boundaries
            // land at arbitrary points of the refresh interval and the
            // drain cadence, not at friendly multiples.
            let budgets: Vec<u64> = (1..windows)
                .map(|_| 1 + rng.below((2 * total) / windows as u64))
                .collect();
            let (result, snap) = run_split(&budgets);
            assert_eq!(result, reference, "{windows} windows: SimResult drifted");
            assert_eq!(snap, ref_snap, "{windows} windows: telemetry drifted");
        }
    }

    /// Degenerate budgets — zero-op windows and single-op windows —
    /// must be no-ops and exact single steps respectively.
    #[test]
    fn degenerate_budgets_are_sound() {
        let (reference, ref_snap) = run_split(&[]);
        let (zeros, zeros_snap) = run_split(&[0, 0, 0, 1_000, 0, 0]);
        assert_eq!(zeros, reference);
        assert_eq!(zeros_snap, ref_snap);
        let singles: Vec<u64> = vec![1; 500];
        let (stepped, stepped_snap) = run_split(&singles);
        assert_eq!(stepped, reference);
        assert_eq!(stepped_snap, ref_snap);
    }
}
