//! Property tests for the memory-hierarchy simulator's structural
//! invariants.

use memsim::address::AddressMapping;
use memsim::cache::Cache;
use memsim::config::{ChannelMode, HierarchyConfig};
use memsim::controller::ChannelController;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The address mapping is injective: two distinct block addresses
    /// never share DRAM coordinates.
    #[test]
    fn address_mapping_is_injective(blocks in proptest::collection::hash_set(0u64..1_000_000, 2..200)) {
        let mapping = AddressMapping::new(4, 4, 16);
        let mut seen = HashMap::new();
        for block in blocks {
            let coord = mapping.map(block << 6);
            if let Some(prev) = seen.insert(coord, block) {
                prop_assert!(false, "blocks {prev} and {block} collide at {coord:?}");
            }
        }
    }

    /// Cache residency: after any access sequence the number of
    /// resident lines never exceeds capacity, and a just-accessed
    /// block is always resident.
    #[test]
    fn cache_never_overflows(addrs in proptest::collection::vec(0u64..100_000, 1..500)) {
        let mut cache = Cache::new(16 * 1024, 4); // 64 sets
        for (i, &a) in addrs.iter().enumerate() {
            let addr = a * 64;
            cache.access(addr, i % 3 == 0);
            prop_assert!(cache.contains(addr), "just-accessed block must be resident");
        }
        prop_assert!(cache.dirty_count() <= 16 * 1024 / 64);
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }

    /// A dirty block leaves a cache exactly once: collect every
    /// writeback and verify no block is written back while still
    /// resident-dirty (no duplicates without an intervening re-dirty).
    #[test]
    fn writebacks_are_conservative(addrs in proptest::collection::vec(0u64..512, 1..400)) {
        let mut cache = Cache::new(4 * 1024, 2); // small: 32 sets
        let mut dirty_in_cache = std::collections::HashSet::new();
        for &a in &addrs {
            let addr = a * 64;
            let result = cache.access(addr, true);
            if let Some(victim) = result.writeback {
                prop_assert!(
                    dirty_in_cache.remove(&victim),
                    "writeback of block {victim} that was not dirty-resident"
                );
            }
            dirty_in_cache.insert(a);
        }
    }

    /// Controller reads complete no earlier than a physically possible
    /// bound and monotone arrivals produce monotone bus bookings.
    #[test]
    fn controller_read_latency_is_physical(rows in proptest::collection::vec((0u64..64, 0usize..16, 0usize..4), 1..200)) {
        let h = HierarchyConfig::hierarchy1();
        let mut ctrl = ChannelController::new(
            ChannelMode::commercial_baseline(),
            h.memory,
            h.core.page_timeout_ps(),
        );
        let t = ChannelMode::commercial_baseline().read_timing;
        let min_latency = t.burst_ps(); // at minimum the data burst
        let mut now = 0u64;
        for (row, bank, rank) in rows {
            now += 1_000;
            let token = ctrl.submit_read(
                memsim::address::DramCoord { channel: 0, rank, bank, row, column: 0 },
                now,
                true,
            );
            let done = ctrl.resolve_read(token);
            prop_assert!(done >= now + min_latency, "read finished impossibly fast");
        }
        let stats = ctrl.stats();
        prop_assert!(stats.row_hits <= stats.reads);
        prop_assert!(stats.bus_busy_ps >= stats.reads * t.burst_ps());
    }
}
