//! Property tests for the cluster scheduler: capacity is never
//! oversubscribed, causality holds, and the policies only ever help.

use proptest::prelude::*;
use scheduler::{
    Cluster, GrizzlyTrace, Job, Policy, RunSummary, SchedulerConfig, SliceSource, SpeedupModel,
};

/// Schedule `jobs` on `cluster` through the builder entry point.
fn run(
    cluster: &Cluster,
    jobs: &[Job],
    policy: Policy,
    speedups: SpeedupModel,
) -> Vec<scheduler::JobOutcome> {
    let config = SchedulerConfig::builder()
        .policy(policy)
        .speedups(speedups)
        .build()
        .expect("test tables are valid");
    cluster
        .schedule(SliceSource::new(jobs))
        .config(config)
        .run()
}

fn arbitrary_jobs(max_nodes: u32) -> impl Strategy<Value = Vec<Job>> {
    proptest::collection::vec(
        (0.0f64..50_000.0, 1u32..=64, 60.0f64..20_000.0, 0.0f64..1.0),
        1..120,
    )
    .prop_map(move |mut raw| {
        raw.sort_by(|a, b| a.0.total_cmp(&b.0));
        raw.into_iter()
            .enumerate()
            .map(|(id, (submit, nodes, dur, util))| Job {
                id: id as u32,
                submit_s: submit,
                nodes: nodes.min(max_nodes),
                duration_s: dur,
                mem_utilization: util,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Causality and per-job sanity under arbitrary traces/policies.
    #[test]
    fn outcomes_are_causal(jobs in arbitrary_jobs(64), aware in any::<bool>()) {
        let cluster = Cluster::new(64, [0.62, 0.36, 0.02]);
        let policy = if aware { Policy::MarginAware } else { Policy::Default };
        let outcomes = run(&cluster, &jobs, policy, SpeedupModel::hetero_dmr_default());
        prop_assert_eq!(outcomes.len(), jobs.len());
        for o in &outcomes {
            prop_assert!(o.start_s >= o.job.submit_s, "started before submission");
            prop_assert!(o.exec_s > 0.0);
            prop_assert!(o.exec_s <= o.job.duration_s + 1e-9, "speedups never slow a job");
            prop_assert!(o.exec_s >= o.job.duration_s / 1.2, "speedup bounded by the model");
        }
    }

    /// The cluster is never oversubscribed: at every job start, the
    /// sum of node allocations of running jobs stays within capacity.
    #[test]
    fn capacity_never_exceeded(jobs in arbitrary_jobs(64)) {
        let nodes = 64u32;
        let cluster = Cluster::new(nodes, [0.62, 0.36, 0.02]);
        let outcomes = run(&cluster, &jobs, Policy::MarginAware, SpeedupModel::hetero_dmr_default());
        // Check occupancy at each start instant.
        for probe in &outcomes {
            let t = probe.start_s;
            let in_flight: u32 = outcomes
                .iter()
                .filter(|o| o.start_s <= t && o.start_s + o.exec_s > t)
                .map(|o| o.job.nodes)
                .sum();
            prop_assert!(in_flight <= nodes, "{in_flight} nodes in flight at {t}");
        }
    }

    /// Faster nodes never increase mean execution time, and any
    /// turnaround regression stays within the classic backfill
    /// scheduling-anomaly bound (speeding jobs up can reshuffle
    /// backfill decisions and hurt *individual traces*, Graham-style,
    /// but never catastrophically).
    #[test]
    fn speedups_never_hurt_execution(seed in 0u64..500) {
        let trace = GrizzlyTrace::scaled(400, 128).generate(seed);
        let conventional = Cluster::conventional(128);
        let hetero = Cluster::new(128, [0.62, 0.36, 0.02]);
        let base = RunSummary::from_outcomes(&run(
            &conventional,
            &trace,
            Policy::Default,
            SpeedupModel::conventional(),
        ));
        let fast = RunSummary::from_outcomes(&run(
            &hetero,
            &trace,
            Policy::MarginAware,
            SpeedupModel::hetero_dmr_default(),
        ));
        prop_assert!(fast.mean_exec_s <= base.mean_exec_s + 1e-6);
        prop_assert!(fast.mean_turnaround_s <= base.mean_turnaround_s * 1.3,
            "anomaly beyond Graham-style bound: {} vs {}",
            fast.mean_turnaround_s, base.mean_turnaround_s);
    }

    /// In aggregate (across traces), faster nodes DO improve
    /// turnaround — per-trace anomalies wash out.
    #[test]
    fn speedups_help_on_average(base_seed in 0u64..50) {
        let conventional = Cluster::conventional(128);
        let hetero = Cluster::new(128, [0.62, 0.36, 0.02]);
        let (mut base_total, mut fast_total) = (0.0, 0.0);
        for s in 0..8u64 {
            let trace = GrizzlyTrace::scaled(300, 128).generate(base_seed * 100 + s);
            base_total += RunSummary::from_outcomes(&run(
                &conventional,
                &trace,
                Policy::Default,
                SpeedupModel::conventional(),
            ))
            .mean_turnaround_s;
            fast_total += RunSummary::from_outcomes(&run(
                &hetero,
                &trace,
                Policy::MarginAware,
                SpeedupModel::hetero_dmr_default(),
            ))
            .mean_turnaround_s;
        }
        prop_assert!(fast_total < base_total,
            "aggregate turnaround must improve: {fast_total} vs {base_total}");
    }

    /// Backfill never delays the FCFS head: disabling speedups, the
    /// head job of any queue starts no later than the time at which
    /// enough nodes were free.
    #[test]
    fn fcfs_order_is_respected_for_equal_sizes(seed in 0u64..200) {
        // With identical node counts, FCFS implies monotone start
        // times (backfill cannot reorder equal-size jobs).
        let jobs: Vec<Job> = (0..60)
            .map(|i| Job {
                id: i,
                submit_s: i as f64 * 10.0,
                nodes: 16,
                duration_s: 500.0 + (i as f64 * 7.0) % 300.0,
                mem_utilization: (seed as f64 / 500.0) % 1.0,
            })
            .collect();
        let cluster = Cluster::conventional(64);
        let outcomes = run(&cluster, &jobs, Policy::Default, SpeedupModel::conventional());
        for pair in outcomes.windows(2) {
            prop_assert!(pair[0].start_s <= pair[1].start_s + 1e-9);
        }
    }
}
