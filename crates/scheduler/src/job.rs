//! Jobs and their simulated outcomes.

/// One batch job from the (synthetic) Grizzly trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Job {
    /// Trace-order identifier.
    pub id: u32,
    /// Submission time, seconds from trace start.
    pub submit_s: f64,
    /// Nodes requested (exclusive allocation, as in HPC practice).
    pub nodes: u32,
    /// Baseline (conventional-system) execution time, seconds.
    pub duration_s: f64,
    /// The job's lifetime-maximum memory utilization in [0, 1]
    /// (drives Hetero-DMR eligibility: < 50 % benefits).
    pub mem_utilization: f64,
}

impl Job {
    /// Baseline node-seconds this job consumes.
    pub fn node_seconds(&self) -> f64 {
        self.nodes as f64 * self.duration_s
    }
}

/// What happened to a job in one simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// The job.
    pub job: Job,
    /// When it started running, seconds.
    pub start_s: f64,
    /// Its (possibly Hetero-DMR-accelerated) execution time, seconds.
    pub exec_s: f64,
}

impl JobOutcome {
    /// Queueing delay (start − submit).
    pub fn queue_delay_s(&self) -> f64 {
        self.start_s - self.job.submit_s
    }

    /// Turnaround (queueing + execution), the paper's headline
    /// system-level metric.
    pub fn turnaround_s(&self) -> f64 {
        self.queue_delay_s() + self.exec_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_seconds() {
        let j = Job {
            id: 0,
            submit_s: 0.0,
            nodes: 4,
            duration_s: 100.0,
            mem_utilization: 0.2,
        };
        assert_eq!(j.node_seconds(), 400.0);
    }

    #[test]
    fn outcome_metrics() {
        let o = JobOutcome {
            job: Job {
                id: 1,
                submit_s: 50.0,
                nodes: 1,
                duration_s: 100.0,
                mem_utilization: 0.2,
            },
            start_s: 80.0,
            exec_s: 90.0,
        };
        assert_eq!(o.queue_delay_s(), 30.0);
        assert_eq!(o.turnaround_s(), 120.0);
    }
}
