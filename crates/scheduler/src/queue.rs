//! The scheduler's completion-event queue.
//!
//! The original event loop kept completions in a `BinaryHeap` — fine
//! for pop-min, but the EASY-backfill shadow computation had to copy
//! and sort *every* in-flight completion on *every* scheduling pass
//! (O(R log R) per event, R up to the node count). [`EventQueue`] is a
//! hierarchical ordered queue (a B-tree index keyed on end time) with
//! three properties the scheduler needs:
//!
//! * O(log n) push / pop-min per event;
//! * in-order traversal with early exit, so the shadow time walks only
//!   as many completions as it takes to free the head job's nodes;
//! * a deterministic FIFO tie-break (insertion sequence) for events
//!   with identical end times, where a heap's tie order is arbitrary.

use std::collections::BTreeMap;

/// A completion event: at `end_s`, `freed` nodes per margin group
/// return to the pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation time the allocation ends, seconds.
    pub end_s: f64,
    /// Nodes returned per margin group (indexed like `GROUPS`).
    pub freed: [u32; 3],
}

/// End-time key with a total order (`f64::total_cmp`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct End(f64);

impl Eq for End {}
impl Ord for End {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl PartialOrd for End {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Ordered completion-event queue (see module docs).
#[derive(Debug, Default)]
pub struct EventQueue {
    tree: BTreeMap<(End, u64), [u32; 3]>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Inserts a completion. Events with equal `end_s` pop in
    /// insertion order.
    pub fn push(&mut self, end_s: f64, freed: [u32; 3]) {
        let seq = self.seq;
        self.seq += 1;
        self.tree.insert((End(end_s), seq), freed);
    }

    /// End time of the earliest event, if any.
    pub fn peek_end(&self) -> Option<f64> {
        self.tree.keys().next().map(|(End(t), _)| *t)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.tree
            .pop_first()
            .map(|((End(end_s), _), freed)| Event { end_s, freed })
    }

    /// Iterates events in end-time order (FIFO within ties) without
    /// removing them. Callers break out early — that is the point.
    pub fn in_order(&self) -> impl Iterator<Item = Event> + '_ {
        self.tree.iter().map(|((End(end_s), _), freed)| Event {
            end_s: *end_s,
            freed: *freed,
        })
    }

    /// Events in flight.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether no events are in flight.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn pops_in_end_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, [1, 0, 0]);
        q.push(1.0, [0, 1, 0]);
        q.push(3.0, [0, 0, 1]);
        assert_eq!(q.peek_end(), Some(1.0));
        assert_eq!(q.pop().unwrap().end_s, 1.0);
        assert_eq!(q.pop().unwrap().end_s, 3.0);
        assert_eq!(q.pop().unwrap().end_s, 5.0);
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(2.0, [1, 0, 0]);
        q.push(2.0, [2, 0, 0]);
        q.push(2.0, [3, 0, 0]);
        assert_eq!(q.pop().unwrap().freed, [1, 0, 0]);
        assert_eq!(q.pop().unwrap().freed, [2, 0, 0]);
        assert_eq!(q.pop().unwrap().freed, [3, 0, 0]);
    }

    #[test]
    fn in_order_matches_drain_order() {
        let mut q = EventQueue::new();
        for i in 0..50u32 {
            // Deliberate collisions: only 10 distinct end times.
            q.push((i % 10) as f64, [i, 0, 0]);
        }
        let scanned: Vec<Event> = q.in_order().collect();
        assert_eq!(scanned.len(), q.len());
        let mut drained = Vec::new();
        while let Some(e) = q.pop() {
            drained.push(e);
        }
        assert_eq!(scanned, drained);
    }

    /// Differential check against the `BinaryHeap<Reverse<_>>` the
    /// scheduler used to use: identical multiset, identical end-time
    /// order (the queue is additionally FIFO within ties, which the
    /// heap never guaranteed).
    #[test]
    fn differential_against_binary_heap() {
        #[derive(PartialEq)]
        struct C(f64);
        impl Eq for C {}
        impl Ord for C {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }
        impl PartialOrd for C {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut q = EventQueue::new();
        let mut heap: BinaryHeap<Reverse<C>> = BinaryHeap::new();
        // Deterministic pseudo-random interleaving of pushes and pops.
        let mut x = 0x9E3779B97F4A7C15u64;
        for step in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if step % 3 != 2 {
                let t = (x >> 40) as f64 / 64.0; // coarse → frequent ties
                q.push(t, [0, 0, 0]);
                heap.push(Reverse(C(t)));
            } else if let Some(Reverse(C(t))) = heap.pop() {
                assert_eq!(q.pop().unwrap().end_s, t, "pop order diverged");
            }
        }
        while let Some(Reverse(C(t))) = heap.pop() {
            assert_eq!(q.pop().unwrap().end_s, t);
        }
        assert!(q.is_empty());
    }
}
