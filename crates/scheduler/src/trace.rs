//! Synthetic Grizzly-like job trace (Section IV-C).
//!
//! The paper feeds four months of real Grizzly traces (58 K jobs,
//! 1490 nodes, ~78 % node utilization) into Slurmsim. We generate a
//! statistically matched synthetic trace: Poisson arrivals, a
//! heavy-tailed power-of-two-ish node-count mix typical of capacity
//! HPC systems, lognormal durations, and per-job memory utilization
//! from the Figure 1 model.

use crate::job::Job;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::utilization::{Cluster as LanlCluster, UtilizationModel};

/// Grizzly's node count.
pub const GRIZZLY_NODES: u32 = 1490;

/// Trace length: four months in seconds.
pub const TRACE_SECONDS: f64 = 4.0 * 30.44 * 24.0 * 3600.0;

/// The paper's job count over that window.
pub const GRIZZLY_JOBS: usize = 58_000;

/// The Grizzly trace generator.
#[derive(Debug, Clone, Copy)]
pub struct GrizzlyTrace {
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Cluster size the trace targets.
    pub cluster_nodes: u32,
    /// Target average node utilization (the paper reports ~78 %).
    pub target_utilization: f64,
}

impl Default for GrizzlyTrace {
    fn default() -> GrizzlyTrace {
        GrizzlyTrace {
            jobs: GRIZZLY_JOBS,
            cluster_nodes: GRIZZLY_NODES,
            target_utilization: 0.78,
        }
    }
}

impl GrizzlyTrace {
    /// A scaled-down trace for tests and quick runs (same shape,
    /// fewer jobs on a smaller machine).
    pub fn scaled(jobs: usize, cluster_nodes: u32) -> GrizzlyTrace {
        GrizzlyTrace {
            jobs,
            cluster_nodes,
            target_utilization: 0.78,
        }
    }

    /// Generates the trace deterministically from `seed`, sorted by
    /// submission time.
    pub fn generate(&self, seed: u64) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(seed);
        let util_model = UtilizationModel::for_cluster(LanlCluster::Grizzly);

        // First pass: sizes and durations.
        let mut sizes = Vec::with_capacity(self.jobs);
        let mut durations = Vec::with_capacity(self.jobs);
        let mut total_node_seconds = 0.0;
        for _ in 0..self.jobs {
            let nodes = sample_nodes(&mut rng, self.cluster_nodes);
            let duration = sample_duration(&mut rng);
            total_node_seconds += nodes as f64 * duration;
            sizes.push(nodes);
            durations.push(duration);
        }
        // Pick the trace length (arrival window) that yields the
        // target utilization for the generated work.
        let span = total_node_seconds / (self.cluster_nodes as f64 * self.target_utilization);

        // Second pass: Poisson arrivals over the span.
        let mut t = 0.0;
        let mean_gap = span / self.jobs as f64;
        let mut jobs = Vec::with_capacity(self.jobs);
        for (id, (nodes, duration)) in sizes.into_iter().zip(durations).enumerate() {
            let u: f64 = 1.0 - rng.random::<f64>();
            t += -mean_gap * u.ln();
            jobs.push(Job {
                id: id as u32,
                submit_s: t,
                nodes,
                duration_s: duration,
                mem_utilization: util_model.sample_utilization(&mut rng),
            });
        }
        jobs
    }
}

/// Heavy-tailed node-count mix: mostly small jobs, a few very wide
/// ones — the classic capacity-cluster shape.
fn sample_nodes<R: Rng + ?Sized>(rng: &mut R, cluster_nodes: u32) -> u32 {
    let bucket: f64 = rng.random();
    let nodes = if bucket < 0.35 {
        1
    } else if bucket < 0.60 {
        rng.random_range(2..=4)
    } else if bucket < 0.80 {
        rng.random_range(5..=16)
    } else if bucket < 0.93 {
        rng.random_range(17..=64)
    } else if bucket < 0.99 {
        rng.random_range(65..=256)
    } else {
        rng.random_range(257..=512)
    };
    nodes.min(cluster_nodes)
}

/// Lognormal-ish durations: median ~45 minutes, mean ~3 h, capped at
/// a 48 h wall-time limit.
fn sample_duration<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let z = {
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let secs = (7.9 + 1.4 * z).exp(); // median e^7.9 ≈ 2700 s
    secs.clamp(60.0, 48.0 * 3600.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<Job> {
        GrizzlyTrace::scaled(4_000, GRIZZLY_NODES).generate(1)
    }

    #[test]
    fn job_count_and_ordering() {
        let jobs = trace();
        assert_eq!(jobs.len(), 4_000);
        assert!(jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s));
    }

    #[test]
    fn sizes_fit_the_cluster() {
        for j in trace() {
            assert!(j.nodes >= 1 && j.nodes <= GRIZZLY_NODES);
            assert!(j.duration_s >= 60.0 && j.duration_s <= 48.0 * 3600.0);
            assert!((0.0..=1.0).contains(&j.mem_utilization));
        }
    }

    #[test]
    fn offered_load_matches_target_utilization() {
        let jobs = trace();
        let span = jobs.last().unwrap().submit_s;
        let node_seconds: f64 = jobs.iter().map(Job::node_seconds).sum();
        let utilization = node_seconds / (GRIZZLY_NODES as f64 * span);
        assert!(
            (utilization - 0.78).abs() < 0.06,
            "offered utilization {utilization}"
        );
    }

    #[test]
    fn mostly_small_jobs_some_wide() {
        let jobs = trace();
        let single = jobs.iter().filter(|j| j.nodes == 1).count() as f64 / jobs.len() as f64;
        let wide = jobs.iter().filter(|j| j.nodes > 64).count() as f64 / jobs.len() as f64;
        assert!((0.25..0.45).contains(&single), "single-node {single}");
        assert!((0.02..0.15).contains(&wide), "wide {wide}");
    }

    #[test]
    fn most_jobs_eligible_for_hetero_dmr() {
        let jobs = trace();
        let eligible = jobs
            .iter()
            .filter(|j| UtilizationModel::hetero_dmr_eligible(j.mem_utilization))
            .count() as f64
            / jobs.len() as f64;
        assert!((eligible - 0.75).abs() < 0.05, "eligible {eligible}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GrizzlyTrace::scaled(100, 64).generate(7);
        let b = GrizzlyTrace::scaled(100, 64).generate(7);
        assert_eq!(a, b);
        let c = GrizzlyTrace::scaled(100, 64).generate(8);
        assert_ne!(a, c);
    }
}

/// Shape summary of a generated trace, for sanity reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean nodes per job.
    pub mean_nodes: f64,
    /// Mean duration, seconds.
    pub mean_duration_s: f64,
    /// Offered load: node-seconds over cluster capacity across the
    /// submission span.
    pub offered_utilization: f64,
    /// Fraction of single-node jobs.
    pub single_node_fraction: f64,
}

impl TraceStats {
    /// Summarizes `jobs` against a cluster of `cluster_nodes`.
    pub fn of(jobs: &[Job], cluster_nodes: u32) -> TraceStats {
        if jobs.is_empty() {
            return TraceStats {
                jobs: 0,
                mean_nodes: 0.0,
                mean_duration_s: 0.0,
                offered_utilization: 0.0,
                single_node_fraction: 0.0,
            };
        }
        let n = jobs.len() as f64;
        let span = (jobs.last().expect("nonempty").submit_s
            - jobs.first().expect("nonempty").submit_s)
            .max(f64::EPSILON);
        TraceStats {
            jobs: jobs.len(),
            mean_nodes: jobs.iter().map(|j| j.nodes as f64).sum::<f64>() / n,
            mean_duration_s: jobs.iter().map(|j| j.duration_s).sum::<f64>() / n,
            offered_utilization: jobs.iter().map(Job::node_seconds).sum::<f64>()
                / (cluster_nodes as f64 * span),
            single_node_fraction: jobs.iter().filter(|j| j.nodes == 1).count() as f64 / n,
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn stats_of_a_generated_trace() {
        let jobs = GrizzlyTrace::scaled(2_000, GRIZZLY_NODES).generate(4);
        let s = TraceStats::of(&jobs, GRIZZLY_NODES);
        assert_eq!(s.jobs, 2_000);
        assert!(
            (s.offered_utilization - 0.78).abs() < 0.08,
            "{}",
            s.offered_utilization
        );
        assert!((0.25..0.45).contains(&s.single_node_fraction));
        assert!(s.mean_nodes > 1.0);
        assert!(s.mean_duration_s > 60.0);
    }

    #[test]
    fn stats_of_nothing() {
        let s = TraceStats::of(&[], 10);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.offered_utilization, 0.0);
    }
}
