//! Fleet-scale federated scheduling across heterogeneous clusters.
//!
//! A [`Federation`] is a set of named member clusters, each with its
//! own margin-group mix and validated [`SchedulerConfig`]. Jobs from
//! one fleet-wide stream are routed to members by a *placement
//! policy*, and each member's cluster simulation runs as an
//! independent shard on the `runner` worker pool:
//!
//! * **Deterministic routing.** Placement is a pure function of
//!   `(job, members, policy, salt)` — the tie-break hash comes from
//!   the same counter-seeding discipline as every other RNG stream
//!   (`runner::seed::iteration_seed(salt, job.id)`), never from
//!   thread identity. Any shard can therefore regenerate the full
//!   fleet stream and filter out exactly its own jobs.
//! * **Deterministic merge.** Shard summaries, telemetry snapshots,
//!   and trace buffers are merged in member order after the parallel
//!   section, reusing the telemetry snapshot-merge and tracer-absorb
//!   paths, so fleet results are byte-identical at any `--jobs`.
//! * **Flat memory.** Shards consume streaming sources and fold into
//!   [`StreamSummary`]; nothing materializes the trace.
//!
//! The margin-aware placement implements the federation-level analog
//! of the paper's scheduler patch: route Hetero-DMR-eligible jobs to
//! clusters whose *fastest margin group* can host them outright
//! (weighted by margin capacity), and keep ineligible jobs on
//! conventional capacity, so margin nodes stay available for jobs
//! that can exploit them.

use crate::cluster::Cluster;
use crate::config::{ConfigError, SchedulerConfig};
use crate::job::Job;
use crate::source::JobSource;
use crate::stats::StreamSummary;
use runner::seed::iteration_seed;
use telemetry::series::SeriesStore;
use telemetry::trace::Tracer;
use telemetry::{Registry, Scope};
use workloads::utilization::UtilizationModel;

/// Window width of the per-member queue-delay series taps: one hour
/// on the scheduler's millisecond submit-time clock.
pub const QUEUE_SERIES_WIDTH_MS: u64 = 3_600_000;

/// One federation member: a named cluster plus its scheduling
/// configuration.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Unique display name (also the member's telemetry scope).
    pub name: String,
    /// The cluster hardware (margin-group sizes).
    pub cluster: Cluster,
    /// Within-cluster policy and speedup table.
    pub config: SchedulerConfig,
}

impl ClusterSpec {
    /// Bundles a named member.
    pub fn new(name: impl Into<String>, cluster: Cluster, config: SchedulerConfig) -> ClusterSpec {
        ClusterSpec {
            name: name.into(),
            cluster,
            config,
        }
    }
}

/// Federation-level job placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Margin-oblivious: members receive jobs in proportion to their
    /// total capacity, regardless of margin groups.
    CapacityWeighted,
    /// Margin-aware: Hetero-DMR-eligible jobs go to members whose
    /// fastest margin group can host them whole (weighted by margin
    /// capacity); ineligible jobs ride on conventional capacity.
    MarginAware,
}

impl PlacementPolicy {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::CapacityWeighted => "capacity_weighted",
            PlacementPolicy::MarginAware => "margin_aware",
        }
    }
}

/// What one member did during a federation run.
#[derive(Debug)]
pub struct MemberRun {
    /// The member's name.
    pub name: String,
    /// Jobs routed to (and completed by) this member.
    pub routed: u64,
    /// Achieved node utilization of the member across the run.
    pub utilization: f64,
    /// The member's streaming summary.
    pub summary: StreamSummary,
}

/// The outcome of a federation run: per-member reports (in member
/// order) plus the fleet-wide merged summary.
#[derive(Debug)]
pub struct FederationRun {
    /// Per-member results, in member order.
    pub members: Vec<MemberRun>,
    /// All members merged (member order).
    pub fleet: StreamSummary,
}

/// A set of heterogeneous clusters scheduled as one fleet.
#[derive(Debug, Clone)]
pub struct Federation {
    members: Vec<ClusterSpec>,
}

impl Federation {
    /// Validates and builds a federation: at least one member, unique
    /// names, no empty clusters.
    pub fn new(members: Vec<ClusterSpec>) -> Result<Federation, ConfigError> {
        if members.is_empty() {
            return Err(ConfigError::EmptyFederation);
        }
        for (i, m) in members.iter().enumerate() {
            if m.cluster.nodes() == 0 {
                return Err(ConfigError::EmptyCluster(m.name.clone()));
            }
            if members[..i].iter().any(|prev| prev.name == m.name) {
                return Err(ConfigError::DuplicateMember(m.name.clone()));
            }
        }
        Ok(Federation { members })
    }

    /// The member clusters, in federation order.
    pub fn members(&self) -> &[ClusterSpec] {
        &self.members
    }

    /// Aggregate node capacity.
    pub fn total_nodes(&self) -> u64 {
        self.members.iter().map(|m| m.cluster.nodes() as u64).sum()
    }

    /// Routes one job: a pure, deterministic function of the job, the
    /// member list, the placement policy, and `salt`. Weighted random
    /// choice via a counter-derived hash — no shared RNG state, so
    /// every shard computes identical routes independently.
    pub fn route(&self, job: &Job, placement: PlacementPolicy, salt: u64) -> usize {
        let n = self.members.len();
        let placement_weight = |i: usize| -> u64 {
            let m = &self.members[i];
            if m.cluster.nodes() < job.nodes {
                return 0;
            }
            match placement {
                PlacementPolicy::CapacityWeighted => m.cluster.nodes() as u64,
                PlacementPolicy::MarginAware => {
                    let sizes = m.cluster.group_sizes();
                    if UtilizationModel::hetero_dmr_eligible(job.mem_utilization) {
                        // Candidate iff some margin group hosts the
                        // whole job (full speedup); weight by margin
                        // capacity so load spreads proportionally.
                        if sizes[0] >= job.nodes || sizes[1] >= job.nodes {
                            (sizes[0] + sizes[1]) as u64
                        } else {
                            0
                        }
                    } else {
                        // Ineligible jobs ride conventional capacity,
                        // leaving margin nodes to jobs that benefit.
                        sizes[2] as u64
                    }
                }
            }
        };
        let capacity_weight = |i: usize| -> u64 {
            let m = &self.members[i];
            if m.cluster.nodes() >= job.nodes {
                m.cluster.nodes() as u64
            } else {
                0
            }
        };

        let placement_total: u64 = (0..n).map(placement_weight).sum();
        let (total, weight): (u64, &dyn Fn(usize) -> u64) = if placement_total > 0 {
            (placement_total, &placement_weight)
        } else {
            // No member satisfies the placement preference (e.g. an
            // all-margin fleet with an ineligible job): fall back to
            // capacity among members that can host it at all.
            ((0..n).map(capacity_weight).sum(), &capacity_weight)
        };
        if total == 0 {
            // Wider than every member; send it to the largest cluster,
            // whose event loop will report the impossibility loudly.
            return (0..n)
                .max_by_key(|&i| self.members[i].cluster.nodes())
                .expect("federation is non-empty");
        }
        let mut pick = iteration_seed(salt, job.id as u64) % total;
        for i in 0..n {
            let w = weight(i);
            if pick < w {
                return i;
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }

    /// Runs the fleet: `make_source()` must return a fresh source
    /// over the *entire* fleet stream (each shard regenerates it and
    /// keeps only its own jobs — cheap for counter-seeded generators,
    /// and the price of zero cross-shard communication). Shards run
    /// in parallel on the worker pool; results merge in member order.
    pub fn run<S, F>(&self, placement: PlacementPolicy, salt: u64, make_source: F) -> FederationRun
    where
        S: JobSource,
        F: Fn() -> S + Sync,
    {
        self.run_observed(placement, salt, make_source, None, None, None)
    }

    /// [`run`](Self::run) with observability: each shard meters into
    /// a private registry scoped by member name, traces into a
    /// private tracer, and (when `series` is given) streams its
    /// queue delays into a private series store as
    /// `<prefix>.<member>.queue_delay_ms` with
    /// [`QUEUE_SERIES_WIDTH_MS`]-wide windows; snapshots, trace
    /// buffers, and series windows are absorbed into `scope` /
    /// `tracer` / the series store in member order after the parallel
    /// section, so the exported telemetry is worker-count-invariant.
    pub fn run_observed<S, F>(
        &self,
        placement: PlacementPolicy,
        salt: u64,
        make_source: F,
        scope: Option<&Scope>,
        tracer: Option<&Tracer>,
        series: Option<(&SeriesStore, &str)>,
    ) -> FederationRun
    where
        S: JobSource,
        F: Fn() -> S + Sync,
    {
        let metered = scope.is_some();
        let traced = tracer.is_some();
        let series_prefix = series.map(|(_, prefix)| prefix);
        let shards = runner::parallel_map((0..self.members.len()).collect(), |_, i: usize| {
            let member = &self.members[i];
            let registry = metered.then(Registry::new);
            let member_tracer = traced.then(Tracer::new);
            let member_series = series_prefix.map(|prefix| {
                let store = SeriesStore::new();
                let tap = store.series(
                    &format!("{prefix}.{}.queue_delay_ms", member.name),
                    QUEUE_SERIES_WIDTH_MS,
                );
                (store, tap)
            });
            let source = RoutedSource {
                inner: make_source(),
                federation: self,
                placement,
                salt,
                member: i,
            };
            let mut run = member.cluster.schedule(source).config(member.config);
            let member_scope = registry.as_ref().map(|r| r.scope(&member.name));
            if let Some(s) = &member_scope {
                run = run.metrics(s);
            }
            if let Some(t) = &member_tracer {
                run = run.tracer(t);
            }
            if let Some((_, tap)) = &member_series {
                run = run.series(tap.clone());
            }
            let summary = run.run_streaming();
            (
                summary,
                registry.map(|r| r.snapshot()),
                member_tracer.map(|t| t.take()),
                member_series.map(|(store, _)| store.snapshot()),
            )
        });

        let mut fleet = StreamSummary::new();
        let mut members = Vec::with_capacity(self.members.len());
        for (member, (summary, snapshot, events, windows)) in self.members.iter().zip(shards) {
            if let (Some(scope), Some(snapshot)) = (scope, snapshot) {
                scope.absorb(&snapshot);
            }
            if let (Some(tracer), Some(events)) = (tracer, events) {
                tracer.absorb(events);
            }
            if let (Some((store, _)), Some(windows)) = (series, windows) {
                store.absorb(&windows);
            }
            fleet.merge_from(&summary);
            members.push(MemberRun {
                name: member.name.clone(),
                routed: summary.jobs(),
                utilization: summary.utilization(member.cluster.nodes() as f64),
                summary,
            });
        }
        FederationRun { members, fleet }
    }
}

/// Filters a fleet-wide source down to one member's jobs.
struct RoutedSource<'f, S> {
    inner: S,
    federation: &'f Federation,
    placement: PlacementPolicy,
    salt: u64,
    member: usize,
}

impl<S: JobSource> JobSource for RoutedSource<'_, S> {
    fn next_job(&mut self) -> Option<Job> {
        loop {
            let job = self.inner.next_job()?;
            if self.federation.route(&job, self.placement, self.salt) == self.member {
                return Some(job);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SpeedupModel;
    use crate::source::from_specs;
    use workloads::jobs::SyntheticJobs;
    use workloads::utilization::Cluster as LanlCluster;

    fn aware_config() -> SchedulerConfig {
        SchedulerConfig::builder()
            .margin_aware()
            .speedups(SpeedupModel::hetero_dmr_default())
            .build()
            .unwrap()
    }

    fn small_federation() -> Federation {
        Federation::new(vec![
            ClusterSpec::new("margin", Cluster::new(128, [0.7, 0.3, 0.0]), aware_config()),
            ClusterSpec::new(
                "legacy",
                Cluster::conventional(96),
                SchedulerConfig::default(),
            ),
        ])
        .unwrap()
    }

    fn job(id: u32, nodes: u32, util: f64) -> Job {
        Job {
            id,
            submit_s: id as f64,
            nodes,
            duration_s: 600.0,
            mem_utilization: util,
        }
    }

    #[test]
    fn construction_is_validated() {
        assert_eq!(
            Federation::new(vec![]).unwrap_err(),
            ConfigError::EmptyFederation
        );
        let dup = Federation::new(vec![
            ClusterSpec::new("a", Cluster::conventional(4), SchedulerConfig::default()),
            ClusterSpec::new("a", Cluster::conventional(8), SchedulerConfig::default()),
        ])
        .unwrap_err();
        assert_eq!(dup, ConfigError::DuplicateMember("a".into()));
        let empty = Federation::new(vec![ClusterSpec::new(
            "zero",
            Cluster::conventional(0),
            SchedulerConfig::default(),
        )])
        .unwrap_err();
        assert_eq!(empty, ConfigError::EmptyCluster("zero".into()));
        assert_eq!(small_federation().total_nodes(), 224);
    }

    #[test]
    fn routing_is_deterministic_and_margin_directed() {
        let fed = small_federation();
        for id in 0..200 {
            let eligible = job(id, 8, 0.2);
            let target = fed.route(&eligible, PlacementPolicy::MarginAware, 42);
            assert_eq!(
                target,
                fed.route(&eligible, PlacementPolicy::MarginAware, 42)
            );
            assert_eq!(target, 0, "eligible jobs go to the margin member");
            let hot = job(id, 8, 0.9);
            assert_eq!(
                fed.route(&hot, PlacementPolicy::MarginAware, 42),
                1,
                "ineligible jobs ride conventional capacity"
            );
        }
        // Capacity-weighted spreads across both members.
        let mut counts = [0usize; 2];
        for id in 0..2_000 {
            counts[fed.route(&job(id, 1, 0.2), PlacementPolicy::CapacityWeighted, 42)] += 1;
        }
        let share = counts[0] as f64 / 2_000.0;
        assert!(
            (share - 128.0 / 224.0).abs() < 0.05,
            "capacity share {share}"
        );
    }

    #[test]
    fn oversized_jobs_fall_back_to_the_largest_member() {
        let fed = small_federation();
        // Wider than the margin groups but hostable: falls back to
        // capacity among hosts.
        let wide_eligible = job(0, 100, 0.2);
        assert_eq!(
            fed.route(&wide_eligible, PlacementPolicy::MarginAware, 1),
            0
        );
        // Wider than every member: largest cluster gets it.
        let impossible = job(1, 500, 0.2);
        assert_eq!(
            fed.route(&impossible, PlacementPolicy::CapacityWeighted, 1),
            0
        );
    }

    fn fleet_stream(fed: &Federation, jobs: u64) -> SyntheticJobs {
        SyntheticJobs {
            jobs,
            max_nodes: 64,
            capacity_nodes: fed.total_nodes() as f64,
            target_utilization: 0.7,
            utilization: UtilizationModel::for_cluster(LanlCluster::Grizzly),
        }
    }

    #[test]
    fn every_job_lands_on_exactly_one_member() {
        let fed = small_federation();
        let gen = fleet_stream(&fed, 3_000);
        let run = fed.run(PlacementPolicy::MarginAware, 9, || {
            from_specs(gen.stream(9))
        });
        assert_eq!(run.members.len(), 2);
        let per_member: u64 = run.members.iter().map(|m| m.routed).sum();
        assert_eq!(per_member, 3_000);
        assert_eq!(run.fleet.jobs(), 3_000);
        for m in &run.members {
            assert!(m.routed > 0, "{} got no jobs", m.name);
            assert!(m.utilization > 0.0);
        }
    }

    #[test]
    fn federation_runs_are_replayable() {
        let fed = small_federation();
        let gen = fleet_stream(&fed, 2_000);
        let a = fed.run(PlacementPolicy::MarginAware, 5, || {
            from_specs(gen.stream(5))
        });
        let b = fed.run(PlacementPolicy::MarginAware, 5, || {
            from_specs(gen.stream(5))
        });
        assert_eq!(a.fleet.jobs(), b.fleet.jobs());
        assert_eq!(a.fleet.mean_turnaround_s(), b.fleet.mean_turnaround_s());
        assert_eq!(a.fleet.makespan_s(), b.fleet.makespan_s());
        for (ma, mb) in a.members.iter().zip(&b.members) {
            assert_eq!(ma.routed, mb.routed);
            assert_eq!(ma.summary.mean_queue_s(), mb.summary.mean_queue_s());
        }
    }

    #[test]
    fn observed_runs_merge_telemetry_in_member_order() {
        let fed = small_federation();
        let gen = fleet_stream(&fed, 1_000);
        let registry = Registry::new();
        let tracer = Tracer::new();
        let store = SeriesStore::new();
        let run = fed.run_observed(
            PlacementPolicy::MarginAware,
            3,
            || from_specs(gen.stream(3)),
            Some(&registry.scope("fleet")),
            Some(&tracer),
            Some((&store, "fleet")),
        );
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("fleet.margin.jobs_started") + snap.counter("fleet.legacy.jobs_started"),
            1_000
        );
        assert_eq!(snap.counter("fleet.margin.unknown_group_starts"), 0);
        let events = tracer.take();
        let roots = events.iter().filter(|e| e.name == "schedule").count();
        assert_eq!(roots, 2, "one schedule root per member");
        assert_eq!(run.fleet.jobs(), 1_000);
        // The series taps caught every job's queue delay, per member.
        let windows = store.snapshot();
        let tapped: u64 = ["margin", "legacy"]
            .iter()
            .filter_map(|m| windows.get(&format!("fleet.{m}.queue_delay_ms")))
            .map(|e| e.total_count())
            .sum();
        assert_eq!(tapped, 1_000, "one sample per routed job");
    }

    #[test]
    fn margin_aware_placement_beats_capacity_weighted_on_turnaround() {
        // A *margin-balanced* fleet: margin capacity share (~73 %)
        // tracks the eligible-job share (~75 % under the Grizzly
        // utilization model), so the aware placement redirects load
        // without overcommitting the margin member. (With a margin
        // share far below the eligible share, aware placement rightly
        // loses — it would drown the margin cluster.)
        let fed = Federation::new(vec![
            ClusterSpec::new(
                "hdmr",
                Cluster::new(192, [0.62, 0.36, 0.02]),
                aware_config(),
            ),
            ClusterSpec::new(
                "legacy",
                Cluster::conventional(64),
                SchedulerConfig::default(),
            ),
        ])
        .unwrap();
        let gen = fleet_stream(&fed, 6_000);
        let aware = fed.run(PlacementPolicy::MarginAware, 7, || {
            from_specs(gen.stream(7))
        });
        let oblivious = fed.run(PlacementPolicy::CapacityWeighted, 7, || {
            from_specs(gen.stream(7))
        });
        let margin_share = |run: &FederationRun| {
            let [g800, g600, g0] = run.fleet.started_per_group();
            (g800 + g600) as f64 / (g800 + g600 + g0) as f64
        };
        assert!(
            margin_share(&aware) > margin_share(&oblivious),
            "aware placement should start more jobs on margin nodes: {} vs {}",
            margin_share(&aware),
            margin_share(&oblivious)
        );
        let speedup = aware.fleet.turnaround_speedup_over(&oblivious.fleet);
        assert!(
            speedup > 1.0,
            "margin-aware placement should win: speedup {speedup}"
        );
    }
}
