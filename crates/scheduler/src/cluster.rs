//! The cluster simulator: FCFS + EASY backfill over margin-grouped
//! nodes, driven by a streaming job source and an ordered event queue.

use crate::config::SchedulerConfig;
use crate::job::{Job, JobOutcome};
use crate::queue::EventQueue;
use crate::source::{JobSource, SliceSource};
use crate::stats::StreamSummary;
use std::cell::Cell;
use std::collections::VecDeque;
use telemetry::trace::{kv, Clock, SpanId, Tracer};
use telemetry::{Counter, Gauge, Histogram, Scope};
use workloads::utilization::UtilizationModel;

/// Node margin groups, fastest first (0.8 GT/s, 0.6 GT/s, none).
pub const GROUPS: [u32; 3] = [800, 600, 0];

/// Node-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Slurm's margin-oblivious allocation: free nodes are taken as
    /// they come (groups mix in proportion to availability).
    Default,
    /// The paper's margin-aware scheduler: allocate a job entirely
    /// within the fastest group that has enough free nodes; only
    /// spill across groups when no single group fits.
    MarginAware,
}

/// Per-(margin group, usage bucket) job speedups, fed from the
/// node-level model (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupModel {
    /// Speedup on 0.8 GT/s nodes for jobs below 25 % / in [25,50) %.
    pub at_800: [f64; 2],
    /// Speedup on 0.6 GT/s nodes, same buckets.
    pub at_600: [f64; 2],
}

impl SpeedupModel {
    /// A conventional system: nobody speeds up.
    pub fn conventional() -> SpeedupModel {
        SpeedupModel {
            at_800: [1.0, 1.0],
            at_600: [1.0, 1.0],
        }
    }

    /// The Hetero-DMR speedups measured by this reproduction's node
    /// model (defaults; the experiments binary feeds its own measured
    /// values).
    pub fn hetero_dmr_default() -> SpeedupModel {
        SpeedupModel {
            at_800: [1.10, 1.10],
            at_600: [1.07, 1.07],
        }
    }

    /// The execution-time speedup of a job whose slowest allocated
    /// node is in `min_group`, given its memory utilization.
    pub fn job_speedup(&self, min_group: u32, utilization: f64) -> f64 {
        if !UtilizationModel::hetero_dmr_eligible(utilization) {
            return 1.0;
        }
        let bucket = usize::from(utilization >= 0.25);
        match min_group {
            800 => self.at_800[bucket],
            600 => self.at_600[bucket],
            _ => 1.0,
        }
    }
}

/// Registry-bound observability for one scheduling run: the live
/// queue depth, start/backfill tallies, and per-margin-group latency
/// distributions (queue delay and execution time, in milliseconds).
/// Built per run by [`ScheduleBuilder::metrics`], so concurrently
/// metered runs never alias each other's handles.
#[derive(Debug)]
struct ClusterMetrics {
    queue_depth: Gauge,
    jobs_started: Counter,
    jobs_backfilled: Counter,
    /// Starts whose `min_group` was not one of [`GROUPS`] — always 0
    /// unless an allocator bug invents a margin group (see
    /// [`ClusterMetrics::note_start`]).
    unknown_group_starts: Counter,
    /// Job spans the tracer declined past the configured
    /// `traced_job_cap` — the cap used to truncate silently; now the
    /// run manifest can say how much of the schedule the trace covers.
    trace_dropped_jobs: Counter,
    /// Indexed like [`GROUPS`]: 800, 600, 0.
    queue_delay_ms: [Histogram; 3],
    exec_ms: [Histogram; 3],
}

impl ClusterMetrics {
    fn new(scope: &Scope) -> ClusterMetrics {
        let per_group = |stem: &str| GROUPS.map(|g| scope.histogram(&format!("group{g}.{stem}")));
        ClusterMetrics {
            queue_depth: scope.gauge("queue_depth"),
            jobs_started: scope.counter("jobs_started"),
            jobs_backfilled: scope.counter("jobs_backfilled"),
            unknown_group_starts: scope.counter("unknown_group_starts"),
            trace_dropped_jobs: scope.counter("trace_dropped_jobs"),
            queue_delay_ms: per_group("queue_delay_ms"),
            exec_ms: per_group("exec_ms"),
        }
    }

    fn note_start(&self, outcome: &JobOutcome, min_group: u32, backfilled: bool) {
        self.jobs_started.inc();
        if backfilled {
            self.jobs_backfilled.inc();
        }
        // An unknown margin group means the allocator handed out nodes
        // that do not exist: loud in debug builds, a counted telemetry
        // event (never a silent re-bin) in release.
        let idx = match GROUPS.iter().position(|&g| g == min_group) {
            Some(idx) => idx,
            None => {
                debug_assert!(false, "min_group {min_group} is not one of {GROUPS:?}");
                self.unknown_group_starts.inc();
                GROUPS.len() - 1
            }
        };
        self.queue_delay_ms[idx].record((outcome.queue_delay_s() * 1e3).max(0.0) as u64);
        self.exec_ms[idx].record((outcome.exec_s * 1e3).max(0.0) as u64);
    }
}

/// Default per-run cap on individually traced job spans: enough to
/// read a schedule's shape in a trace viewer without ballooning the
/// file on multi-thousand-job traces. Override per run via
/// [`SchedulerConfigBuilder::traced_job_cap`](crate::SchedulerConfig);
/// the `schedule` root span's args record the traced, dropped, and
/// true job counts.
pub const TRACED_JOB_CAP: usize = 256;

/// Causal tracing for one scheduling run: job spans on the schedule
/// clock (microseconds) under a single `schedule` root span.
struct ClusterTrace<'a> {
    tracer: &'a Tracer,
    root: SpanId,
    cap: usize,
    traced: Cell<usize>,
    dropped: Cell<usize>,
}

/// Schedule seconds → the trace's microsecond clock.
fn sched_us(seconds: f64) -> u64 {
    (seconds.max(0.0) * 1e6).round() as u64
}

impl ClusterTrace<'_> {
    fn note_start(&self, outcome: &JobOutcome, min_group: u32, backfilled: bool) {
        if self.traced.get() >= self.cap {
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        self.traced.set(self.traced.get() + 1);
        self.tracer.complete(
            format!("job.{}", outcome.job.id),
            "sched",
            Clock::SchedUs,
            sched_us(outcome.start_s),
            sched_us(outcome.start_s + outcome.exec_s),
            vec![
                kv("nodes", outcome.job.nodes),
                kv("min_group", min_group),
                kv("backfilled", backfilled),
                kv("submit_us", sched_us(outcome.job.submit_s)),
            ],
        );
    }
}

/// One labelled configuration of a side-by-side scheduling sweep
/// (Figure 17 compares four of these over the same job trace).
#[derive(Debug, Clone)]
pub struct Variant {
    /// Display label (also useful as a telemetry scope prefix).
    pub label: String,
    pub cluster: Cluster,
    pub policy: Policy,
    pub speedups: SpeedupModel,
    /// When set, the run is metered under this scope; otherwise it
    /// runs unobserved.
    pub scope: Option<Scope>,
    /// When set, the run records job spans into this tracer. Each
    /// variant needs its own tracer — sweeps run variants
    /// concurrently.
    pub tracer: Option<Tracer>,
}

/// Replays `jobs` under every variant, in parallel on the worker
/// pool, returning outcomes in variant order. Each replay is
/// single-threaded and depends only on its variant and the shared
/// trace, so the sweep's results are identical at any worker budget.
pub fn run_variants(jobs: &[Job], variants: Vec<Variant>) -> Vec<(String, Vec<JobOutcome>)> {
    runner::parallel_map(variants, |_, v| {
        let Variant {
            label,
            cluster,
            policy,
            speedups,
            scope,
            tracer,
        } = v;
        let config = SchedulerConfig::from_parts_unchecked(policy, speedups);
        let mut run = cluster.schedule(SliceSource::new(jobs)).config(config);
        if let Some(scope) = &scope {
            run = run.metrics(scope);
        }
        let outcomes = match &tracer {
            Some(t) => run.tracer(t).run(),
            None => run.run(),
        };
        (label, outcomes)
    })
}

/// A margin-grouped cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Total nodes per group.
    total: [u32; 3],
}

impl Cluster {
    /// Builds a cluster of `nodes` total, split into margin groups by
    /// `fractions` (0.8 / 0.6 / 0 GT/s; must sum to ~1).
    ///
    /// # Panics
    ///
    /// Panics if the fractions are negative or sum beyond 1 + ε.
    pub fn new(nodes: u32, fractions: [f64; 3]) -> Cluster {
        assert!(
            fractions.iter().all(|&f| f >= 0.0) && fractions.iter().sum::<f64>() <= 1.0 + 1e-9,
            "group fractions must be a distribution"
        );
        let g800 = (nodes as f64 * fractions[0]).round() as u32;
        let g600 = (nodes as f64 * fractions[1]).round() as u32;
        let g0 = nodes.saturating_sub(g800 + g600);
        Cluster {
            total: [g800.min(nodes), g600.min(nodes - g800.min(nodes)), g0],
        }
    }

    /// A conventional cluster (no usable margins anywhere).
    pub fn conventional(nodes: u32) -> Cluster {
        Cluster {
            total: [0, 0, nodes],
        }
    }

    /// Total nodes.
    pub fn nodes(&self) -> u32 {
        self.total.iter().sum()
    }

    /// Nodes per group, fastest first.
    pub fn group_sizes(&self) -> [u32; 3] {
        self.total
    }

    /// Starts a scheduling run over `source`: configure with
    /// [`config`](ScheduleBuilder::config), attach observability with
    /// [`metrics`](ScheduleBuilder::metrics) /
    /// [`tracer`](ScheduleBuilder::tracer), then finish with
    /// [`run`](ScheduleBuilder::run) (collected outcomes) or
    /// [`run_streaming`](ScheduleBuilder::run_streaming) (O(1)-memory
    /// summary).
    pub fn schedule<S: JobSource>(&self, source: S) -> ScheduleBuilder<'_, S> {
        ScheduleBuilder {
            cluster: self,
            source,
            config: SchedulerConfig::default(),
            scope: None,
            tracer: None,
            series: None,
        }
    }

    /// Deprecated spelling of the builder entry point.
    #[deprecated(
        note = "use `cluster.schedule(SliceSource::new(jobs)).config(cfg).run()` \
                (see README: migrating from run/run_metered/run_traced)"
    )]
    pub fn run(&self, jobs: &[Job], policy: Policy, speedups: &SpeedupModel) -> Vec<JobOutcome> {
        self.schedule(SliceSource::new(jobs))
            .config(SchedulerConfig::from_parts_unchecked(policy, *speedups))
            .run()
    }

    /// Deprecated spelling of the builder entry point with metrics.
    #[deprecated(
        note = "use `cluster.schedule(SliceSource::new(jobs)).config(cfg).metrics(scope).run()` \
                (see README: migrating from run/run_metered/run_traced)"
    )]
    pub fn run_metered(
        &self,
        jobs: &[Job],
        policy: Policy,
        speedups: &SpeedupModel,
        scope: &Scope,
    ) -> Vec<JobOutcome> {
        self.schedule(SliceSource::new(jobs))
            .config(SchedulerConfig::from_parts_unchecked(policy, *speedups))
            .metrics(scope)
            .run()
    }

    /// Deprecated spelling of the builder entry point with tracing.
    #[deprecated(
        note = "use `cluster.schedule(SliceSource::new(jobs)).config(cfg).tracer(t).run()` \
                (see README: migrating from run/run_metered/run_traced)"
    )]
    pub fn run_traced(
        &self,
        jobs: &[Job],
        policy: Policy,
        speedups: &SpeedupModel,
        scope: Option<&Scope>,
        tracer: &Tracer,
    ) -> Vec<JobOutcome> {
        let mut run = self
            .schedule(SliceSource::new(jobs))
            .config(SchedulerConfig::from_parts_unchecked(policy, *speedups))
            .tracer(tracer);
        if let Some(scope) = scope {
            run = run.metrics(scope);
        }
        run.run()
    }

    /// The event-driven core: pulls jobs from `source`, keeps
    /// completions in the ordered [`EventQueue`], and reports every
    /// started job to `sink` (outcome, min group, backfilled). Returns
    /// `(jobs started, makespan seconds)`.
    fn run_core(
        &self,
        source: &mut dyn JobSource,
        config: &SchedulerConfig,
        metrics: Option<&ClusterMetrics>,
        trace: Option<&ClusterTrace>,
        sink: &mut dyn FnMut(&JobOutcome, u32, bool),
    ) -> (u64, f64) {
        let mut state = RunState {
            free: self.total,
            events: EventQueue::new(),
            waiting: VecDeque::new(),
            started: 0,
            makespan_s: 0.0,
            metrics,
            trace,
        };
        let mut pending = source.next_job();
        let mut last_submit = f64::NEG_INFINITY;

        loop {
            // Advance to the next event: arrival or completion
            // (arrivals win ties so a job submitted exactly at a
            // completion instant sees the freed nodes in its first
            // scheduling pass).
            let arrival_t = pending.as_ref().map(|j| j.submit_s);
            let completion_t = state.events.peek_end();
            let now;
            match (arrival_t, completion_t) {
                (None, None) if state.waiting.is_empty() => break,
                (Some(a), Some(c)) if a <= c => {
                    now = a;
                    let job = pending.take().expect("arrival peeked");
                    debug_assert!(
                        job.submit_s >= last_submit,
                        "JobSource must yield nondecreasing submit times \
                         ({} after {last_submit})",
                        job.submit_s
                    );
                    last_submit = job.submit_s;
                    state.waiting.push_back(job);
                    pending = source.next_job();
                }
                (Some(a), None) => {
                    now = a;
                    let job = pending.take().expect("arrival peeked");
                    debug_assert!(
                        job.submit_s >= last_submit,
                        "JobSource must yield nondecreasing submit times \
                         ({} after {last_submit})",
                        job.submit_s
                    );
                    last_submit = job.submit_s;
                    state.waiting.push_back(job);
                    pending = source.next_job();
                }
                (_, Some(_)) => {
                    let event = state.events.pop().expect("completion peeked");
                    now = event.end_s;
                    for (f, freed) in state.free.iter_mut().zip(event.freed) {
                        *f += freed;
                    }
                }
                (None, None) => {
                    panic!("waiting jobs can never start: a queued job is wider than the cluster")
                }
            }

            state.schedule(now, config, sink);
            if let Some(m) = state.metrics {
                m.queue_depth.set(state.waiting.len() as i64);
            }
        }
        (state.started, state.makespan_s)
    }

    /// Shared front half of `run`/`run_streaming`: builds per-run
    /// observers, wraps the run in a `schedule` root span when traced.
    fn execute<S: JobSource>(
        &self,
        mut source: S,
        config: &SchedulerConfig,
        scope: Option<&Scope>,
        tracer: Option<&Tracer>,
        sink: &mut dyn FnMut(&JobOutcome, u32, bool),
    ) {
        let metrics = scope.map(ClusterMetrics::new);
        match tracer {
            Some(tracer) => {
                let trace = ClusterTrace {
                    tracer,
                    root: tracer.begin("schedule", "sched", Clock::SchedUs, 0),
                    cap: config.traced_job_cap(),
                    traced: Cell::new(0),
                    dropped: Cell::new(0),
                };
                let (jobs, makespan_s) =
                    self.run_core(&mut source, config, metrics.as_ref(), Some(&trace), sink);
                if let Some(m) = metrics.as_ref() {
                    m.trace_dropped_jobs.add(trace.dropped.get() as u64);
                }
                tracer.end_with(
                    trace.root,
                    sched_us(makespan_s),
                    vec![
                        kv("jobs", jobs),
                        kv("jobs_traced", trace.traced.get()),
                        kv("jobs_trace_dropped", trace.dropped.get()),
                    ],
                );
            }
            None => {
                self.run_core(&mut source, config, metrics.as_ref(), None, sink);
            }
        }
    }
}

/// A configured-but-not-yet-run schedule; see [`Cluster::schedule`].
#[derive(Debug)]
pub struct ScheduleBuilder<'c, S> {
    cluster: &'c Cluster,
    source: S,
    config: SchedulerConfig,
    scope: Option<Scope>,
    tracer: Option<&'c Tracer>,
    series: Option<telemetry::series::Series>,
}

impl<'c, S: JobSource> ScheduleBuilder<'c, S> {
    /// Sets the validated policy + speedup configuration (defaults to
    /// a conventional, margin-oblivious system).
    pub fn config(mut self, config: SchedulerConfig) -> Self {
        self.config = config;
        self
    }

    /// Meters the run under `scope`: queue depth, start/backfill
    /// tallies, per-group latency histograms.
    pub fn metrics(mut self, scope: &Scope) -> Self {
        self.scope = Some(scope.clone());
        self
    }

    /// Records job spans into `tracer` under a `schedule` root span.
    pub fn tracer(mut self, tracer: &'c Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Streams every job's queue delay into `series`, windowed by
    /// submit time (see [`StreamSummary::tap_series`]). Only
    /// [`run_streaming`](Self::run_streaming) consumes the tap.
    pub fn series(mut self, series: telemetry::series::Series) -> Self {
        self.series = Some(series);
        self
    }

    /// Runs to completion, collecting one outcome per job (sorted by
    /// job id). Materializes the outcome list — for fleet-scale runs
    /// use [`run_streaming`](Self::run_streaming) instead.
    pub fn run(self) -> Vec<JobOutcome> {
        let ScheduleBuilder {
            cluster,
            source,
            config,
            scope,
            tracer,
            series: _,
        } = self;
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(source.len_hint().unwrap_or(0));
        cluster.execute(source, &config, scope.as_ref(), tracer, &mut |o, _, _| {
            outcomes.push(*o)
        });
        outcomes.sort_by_key(|o| o.job.id);
        outcomes
    }

    /// Runs to completion, folding every outcome into a
    /// [`StreamSummary`] as it happens. Memory stays O(1) in the job
    /// count — this is the fleet-scale entry point.
    pub fn run_streaming(self) -> StreamSummary {
        let ScheduleBuilder {
            cluster,
            source,
            config,
            scope,
            tracer,
            series,
        } = self;
        let mut summary = StreamSummary::new();
        if let Some(series) = series {
            summary.tap_series(series);
        }
        cluster.execute(
            source,
            &config,
            scope.as_ref(),
            tracer,
            &mut |o, min_group, backfilled| summary.note(o, min_group, backfilled),
        );
        summary
    }
}

/// Mutable state of one run of the event loop.
struct RunState<'a> {
    free: [u32; 3],
    events: EventQueue,
    waiting: VecDeque<Job>,
    started: u64,
    makespan_s: f64,
    metrics: Option<&'a ClusterMetrics>,
    trace: Option<&'a ClusterTrace<'a>>,
}

impl RunState<'_> {
    /// FCFS + EASY backfill scheduling pass at time `now`.
    fn schedule(
        &mut self,
        now: f64,
        config: &SchedulerConfig,
        sink: &mut dyn FnMut(&JobOutcome, u32, bool),
    ) {
        // Start FCFS-eligible jobs from the head.
        while let Some(&head) = self.waiting.front() {
            if head.nodes <= self.free.iter().sum::<u32>() {
                self.waiting.pop_front();
                self.start(head, now, config, false, sink);
            } else {
                break;
            }
        }
        let Some(&head) = self.waiting.front() else {
            return;
        };

        // EASY backfill: the head job gets a reservation at the
        // earliest time enough nodes will be free; jobs behind it may
        // start now if they fit and finish before that reservation.
        // The completion estimate accounts for the speedup of the
        // nodes the candidate would actually receive — the scheduler
        // knows its groups (that is the whole point of margin
        // awareness).
        let shadow = self.shadow_time(head.nodes);
        let mut i = 1;
        while i < self.waiting.len() {
            let candidate = self.waiting[i];
            let fits = candidate.nodes <= self.free.iter().sum::<u32>();
            let ends_in_time = fits && {
                let alloc = match config.policy() {
                    Policy::MarginAware => allocate_margin_aware(candidate.nodes, &self.free),
                    Policy::Default => allocate_default(candidate.nodes, &self.free),
                };
                let exec = candidate.duration_s
                    / config
                        .speedups()
                        .job_speedup(min_group(&alloc), candidate.mem_utilization);
                now + exec <= shadow
            };
            if fits && ends_in_time {
                let job = self.waiting.remove(i).expect("index in bounds");
                self.start(job, now, config, true, sink);
            } else {
                i += 1;
            }
        }
    }

    /// The earliest time at which `needed` nodes will be
    /// simultaneously free, given current free nodes and running
    /// jobs. Walks the event queue in order and stops as soon as the
    /// deficit is covered — no copying, no re-sorting.
    fn shadow_time(&self, needed: u32) -> f64 {
        let mut available: u32 = self.free.iter().sum();
        if available >= needed {
            return 0.0;
        }
        for event in self.events.in_order() {
            available += event.freed.iter().sum::<u32>();
            if available >= needed {
                return event.end_s;
            }
        }
        f64::INFINITY
    }

    /// Allocates and starts one job.
    fn start(
        &mut self,
        job: Job,
        now: f64,
        config: &SchedulerConfig,
        backfilled: bool,
        sink: &mut dyn FnMut(&JobOutcome, u32, bool),
    ) {
        let alloc = match config.policy() {
            Policy::MarginAware => allocate_margin_aware(job.nodes, &self.free),
            Policy::Default => allocate_default(job.nodes, &self.free),
        };
        for (f, a) in self.free.iter_mut().zip(alloc) {
            *f -= a;
        }
        // The slowest allocated node's group caps the MPI job.
        let min_group = min_group(&alloc);
        let exec = job.duration_s
            / config
                .speedups()
                .job_speedup(min_group, job.mem_utilization);
        self.events.push(now + exec, alloc);
        let outcome = JobOutcome {
            job,
            start_s: now,
            exec_s: exec,
        };
        self.started += 1;
        self.makespan_s = self.makespan_s.max(now + exec);
        if let Some(m) = self.metrics {
            m.note_start(&outcome, min_group, backfilled);
        }
        if let Some(t) = self.trace {
            t.note_start(&outcome, min_group, backfilled);
        }
        sink(&outcome, min_group, backfilled);
    }
}

/// The slowest group present in an allocation (caps an MPI job).
fn min_group(alloc: &[u32; 3]) -> u32 {
    GROUPS
        .iter()
        .zip(alloc)
        .filter(|&(_, &a)| a > 0)
        .map(|(&g, _)| g)
        .min()
        .unwrap_or(0)
}

/// Margin-aware allocation: the fastest single group that fits
/// takes the whole job; otherwise spill fastest-first.
fn allocate_margin_aware(nodes: u32, free: &[u32; 3]) -> [u32; 3] {
    for (i, &f) in free.iter().enumerate() {
        if f >= nodes {
            let mut alloc = [0; 3];
            alloc[i] = nodes;
            return alloc;
        }
    }
    let mut alloc = [0; 3];
    let mut remaining = nodes;
    for (a, &f) in alloc.iter_mut().zip(free) {
        let take = remaining.min(f);
        *a = take;
        remaining -= take;
    }
    debug_assert_eq!(remaining, 0, "caller checked total capacity");
    alloc
}

/// Margin-oblivious allocation: nodes come in proportion to what
/// is free (groups are physically interleaved in the racks).
fn allocate_default(nodes: u32, free: &[u32; 3]) -> [u32; 3] {
    let total: u32 = free.iter().sum();
    let mut alloc = [0u32; 3];
    let mut assigned = 0;
    for i in 0..3 {
        let share = (nodes as u64 * free[i] as u64 / total as u64) as u32;
        let take = share.min(free[i]);
        alloc[i] = take;
        assigned += take;
    }
    // Distribute the rounding remainder wherever room remains.
    let mut i = 0;
    while assigned < nodes {
        if alloc[i] < free[i] {
            alloc[i] += 1;
            assigned += 1;
        } else {
            i = (i + 1) % 3;
            continue;
        }
        i = (i + 1) % 3;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, submit: f64, nodes: u32, dur: f64, util: f64) -> Job {
        Job {
            id,
            submit_s: submit,
            nodes,
            duration_s: dur,
            mem_utilization: util,
        }
    }

    fn aware() -> SchedulerConfig {
        SchedulerConfig::builder()
            .margin_aware()
            .speedups(SpeedupModel::hetero_dmr_default())
            .build()
            .unwrap()
    }

    fn oblivious_hdmr() -> SchedulerConfig {
        SchedulerConfig::builder()
            .margin_oblivious()
            .speedups(SpeedupModel::hetero_dmr_default())
            .build()
            .unwrap()
    }

    fn conventional() -> SchedulerConfig {
        SchedulerConfig::default()
    }

    fn run(c: &Cluster, jobs: &[Job], config: SchedulerConfig) -> Vec<JobOutcome> {
        c.schedule(SliceSource::new(jobs)).config(config).run()
    }

    #[test]
    fn group_split() {
        let c = Cluster::new(100, [0.62, 0.36, 0.02]);
        assert_eq!(c.group_sizes(), [62, 36, 2]);
        assert_eq!(c.nodes(), 100);
        let conv = Cluster::conventional(10);
        assert_eq!(conv.group_sizes(), [0, 0, 10]);
    }

    #[test]
    fn single_job_runs_immediately() {
        let c = Cluster::new(10, [1.0, 0.0, 0.0]);
        let jobs = [job(0, 5.0, 4, 100.0, 0.1)];
        let out = run(&c, &jobs, aware());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].start_s, 5.0);
        assert!((out[0].exec_s - 100.0 / 1.10).abs() < 1e-9);
    }

    #[test]
    fn fcfs_queues_when_full() {
        let c = Cluster::conventional(4);
        let jobs = [job(0, 0.0, 4, 100.0, 0.1), job(1, 1.0, 4, 50.0, 0.1)];
        let out = run(&c, &jobs, conventional());
        assert_eq!(out[1].start_s, 100.0);
        assert_eq!(out[1].queue_delay_s(), 99.0);
    }

    #[test]
    fn backfill_slips_small_jobs_past_a_blocked_head() {
        let c = Cluster::conventional(4);
        let jobs = [
            job(0, 0.0, 4, 100.0, 0.1), // runs 0..100
            job(1, 1.0, 4, 50.0, 0.1),  // head: must wait to 100
            job(2, 2.0, 1, 30.0, 0.1),  // would fit... but 0 free
        ];
        let out = run(&c, &jobs, conventional());
        // Nothing is free until t=100, so no backfill possible here;
        // all start at 100 (head first, then the 1-node job backfills
        // the 4-node... capacity is 4, head takes it).
        assert_eq!(out[1].start_s, 100.0);
        assert_eq!(out[2].start_s, 150.0);

        // Now with spare room: an 8-node cluster where the head needs
        // more than free but a small job fits and ends before the
        // head's reservation.
        let c = Cluster::conventional(8);
        let jobs = [
            job(0, 0.0, 6, 100.0, 0.1), // runs 0..100, leaves 2 free
            job(1, 1.0, 8, 50.0, 0.1),  // head: reservation at 100
            job(2, 2.0, 2, 30.0, 0.1),  // fits in the 2 free, ends at 32 ≤ 100
            job(3, 3.0, 2, 200.0, 0.1), // fits but would overrun the reservation
        ];
        let out = run(&c, &jobs, conventional());
        assert_eq!(out[2].start_s, 2.0, "small job backfills");
        assert_eq!(out[1].start_s, 100.0, "head unharmed");
        assert!(out[3].start_s >= 100.0, "overrunning job must not backfill");
    }

    #[test]
    fn margin_aware_prefers_one_fast_group() {
        let c = Cluster::new(100, [0.62, 0.36, 0.02]);
        let jobs = [job(0, 0.0, 30, 100.0, 0.1)];
        let aware_out = run(&c, &jobs, aware());
        // All 30 nodes fit in the 62-node fast group → full 1.10.
        assert!((aware_out[0].exec_s - 100.0 / 1.10).abs() < 1e-9);

        let unaware = run(&c, &jobs, oblivious_hdmr());
        // Proportional mixing pulls in slower-group nodes, capping the
        // job below the fast group's speedup.
        assert!(unaware[0].exec_s > aware_out[0].exec_s);
        assert!((unaware[0].exec_s - 100.0 / 1.07).abs() < 1e-9);
    }

    #[test]
    fn spill_is_capped_by_slowest_group() {
        let c = Cluster::new(100, [0.62, 0.36, 0.02]);
        // 70 nodes cannot fit in any single group: 62+8 spill → slowest
        // allocated is the 600 group.
        let jobs = [job(0, 0.0, 70, 100.0, 0.1)];
        let out = run(&c, &jobs, aware());
        assert!((out[0].exec_s - 100.0 / 1.07).abs() < 1e-9);
    }

    #[test]
    fn high_utilization_jobs_never_speed_up() {
        let c = Cluster::new(10, [1.0, 0.0, 0.0]);
        let jobs = [job(0, 0.0, 1, 100.0, 0.8)];
        let out = run(&c, &jobs, aware());
        assert_eq!(out[0].exec_s, 100.0);
    }

    #[test]
    fn faster_nodes_reduce_queueing_downstream() {
        // A saturated cluster: speeding execution up must shrink queue
        // delays for later jobs.
        let c_fast = Cluster::new(8, [1.0, 0.0, 0.0]);
        let c_slow = Cluster::conventional(8);
        let jobs: Vec<Job> = (0..40).map(|i| job(i, i as f64, 4, 100.0, 0.1)).collect();
        let fast = run(&c_fast, &jobs, aware());
        let slow = run(&c_slow, &jobs, conventional());
        let qf: f64 = fast.iter().map(JobOutcome::queue_delay_s).sum();
        let qs: f64 = slow.iter().map(JobOutcome::queue_delay_s).sum();
        assert!(qf < qs, "queueing must shrink: {qf} vs {qs}");
    }

    #[test]
    fn variant_sweep_matches_individual_runs() {
        let trace = crate::trace::GrizzlyTrace::scaled(300, 64).generate(3);
        let hdmr = Cluster::new(64, [0.62, 0.36, 0.02]);
        let conv = Cluster::conventional(64);
        let sweep = run_variants(
            &trace,
            vec![
                Variant {
                    label: "conventional".into(),
                    cluster: conv.clone(),
                    policy: Policy::Default,
                    speedups: SpeedupModel::conventional(),
                    scope: None,
                    tracer: None,
                },
                Variant {
                    label: "margin_aware".into(),
                    cluster: hdmr.clone(),
                    policy: Policy::MarginAware,
                    speedups: SpeedupModel::hetero_dmr_default(),
                    scope: None,
                    tracer: None,
                },
            ],
        );
        assert_eq!(sweep[0].0, "conventional");
        assert_eq!(sweep[1].0, "margin_aware");
        assert_eq!(sweep[0].1, run(&conv, &trace, conventional()));
        assert_eq!(sweep[1].1, run(&hdmr, &trace, aware()));
    }

    #[test]
    fn traced_run_wraps_job_spans_in_schedule_root() {
        use telemetry::trace::{check_nesting, Ph};
        let c = Cluster::new(8, [0.5, 0.25, 0.25]);
        let jobs = [
            job(0, 0.0, 4, 100.0, 0.1),
            job(1, 1.0, 4, 50.0, 0.3),
            job(2, 2.0, 8, 25.0, 0.8),
        ];
        let tracer = Tracer::new();
        let out = c
            .schedule(SliceSource::new(&jobs))
            .config(aware())
            .tracer(&tracer)
            .run();
        assert_eq!(
            out,
            run(&c, &jobs, aware()),
            "tracing must not perturb the schedule"
        );
        let events = tracer.take();
        check_nesting(&events).unwrap();
        let root = &events[0];
        assert_eq!(root.name, "schedule");
        assert!(root.args.contains(&kv("jobs", 3)));
        assert!(root.args.contains(&kv("jobs_traced", 3)));
        assert!(root.args.contains(&kv("jobs_trace_dropped", 0)));
        let job_spans: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("job."))
            .collect();
        assert_eq!(job_spans.len(), 3);
        for s in &job_spans {
            assert_eq!(s.ph, Ph::Span);
            assert_eq!(s.parent, Some(root.id));
            assert!(s.end <= root.end, "job span inside the makespan");
        }
        let j0 = job_spans.iter().find(|e| e.name == "job.0").unwrap();
        assert!(j0.args.contains(&kv("nodes", 4)));
        assert!(j0.args.contains(&kv("backfilled", false)));
    }

    #[test]
    fn traced_job_cap_is_configurable_and_drops_are_counted() {
        let c = Cluster::new(8, [0.5, 0.25, 0.25]);
        let jobs = [
            job(0, 0.0, 4, 100.0, 0.1),
            job(1, 1.0, 4, 50.0, 0.3),
            job(2, 2.0, 8, 25.0, 0.8),
        ];
        let capped = SchedulerConfig::builder()
            .margin_aware()
            .speedups(SpeedupModel::hetero_dmr_default())
            .traced_job_cap(1)
            .build()
            .unwrap();
        let registry = telemetry::Registry::new();
        let tracer = Tracer::new();
        let out = c
            .schedule(SliceSource::new(&jobs))
            .config(capped)
            .metrics(&registry.scope("m"))
            .tracer(&tracer)
            .run();
        assert_eq!(out, run(&c, &jobs, aware()), "the cap only affects spans");
        let events = tracer.take();
        let root = &events[0];
        assert!(root.args.contains(&kv("jobs", 3)));
        assert!(root.args.contains(&kv("jobs_traced", 1)));
        assert!(root.args.contains(&kv("jobs_trace_dropped", 2)));
        assert_eq!(
            events.iter().filter(|e| e.name.starts_with("job.")).count(),
            1
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("m.trace_dropped_jobs"), 2);
    }

    #[test]
    fn every_job_completes_exactly_once() {
        let c = Cluster::new(64, [0.62, 0.36, 0.02]);
        let trace = crate::trace::GrizzlyTrace::scaled(500, 64).generate(3);
        let out = run(&c, &trace, aware());
        assert_eq!(out.len(), trace.len());
        for (o, j) in out.iter().zip(&trace) {
            assert_eq!(o.job.id, j.id);
            assert!(o.start_s >= j.submit_s);
            assert!(o.exec_s <= j.duration_s + 1e-9);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_builder() {
        let c = Cluster::new(64, [0.62, 0.36, 0.02]);
        let trace = crate::trace::GrizzlyTrace::scaled(400, 64).generate(11);
        let speedups = SpeedupModel::hetero_dmr_default();
        assert_eq!(
            c.run(&trace, Policy::MarginAware, &speedups),
            run(&c, &trace, aware())
        );
        let registry = telemetry::Registry::new();
        let metered = c.run_metered(
            &trace,
            Policy::MarginAware,
            &speedups,
            &registry.scope("old"),
        );
        assert_eq!(metered, run(&c, &trace, aware()));
        let tracer = Tracer::new();
        let traced = c.run_traced(&trace, Policy::MarginAware, &speedups, None, &tracer);
        assert_eq!(traced, run(&c, &trace, aware()));
        assert!(!tracer.take().is_empty());
    }

    #[test]
    fn streaming_summary_matches_the_collected_run() {
        let c = Cluster::new(64, [0.62, 0.36, 0.02]);
        let trace = crate::trace::GrizzlyTrace::scaled(800, 64).generate(5);
        let out = run(&c, &trace, aware());
        let summary = c
            .schedule(SliceSource::new(&trace))
            .config(aware())
            .run_streaming();
        let reference = crate::stats::RunSummary::from_outcomes(&out);
        assert_eq!(summary.jobs(), out.len() as u64);
        assert!((summary.mean_exec_s() - reference.mean_exec_s).abs() < 1e-9);
        assert!((summary.mean_queue_s() - reference.mean_queue_s).abs() < 1e-9);
        assert!((summary.mean_turnaround_s() - reference.mean_turnaround_s).abs() < 1e-9);
        let makespan = out.iter().map(|o| o.start_s + o.exec_s).fold(0.0, f64::max);
        assert!((summary.makespan_s() - makespan).abs() < 1e-9);
    }

    #[test]
    fn metered_runs_never_see_unknown_groups() {
        let registry = telemetry::Registry::new();
        let c = Cluster::new(32, [0.5, 0.25, 0.25]);
        let trace = crate::trace::GrizzlyTrace::scaled(200, 32).generate(2);
        let out = c
            .schedule(SliceSource::new(&trace))
            .config(aware())
            .metrics(&registry.scope("m"))
            .run();
        assert_eq!(out.len(), trace.len());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("m.jobs_started"), trace.len() as u64);
        assert_eq!(snap.counter("m.unknown_group_starts"), 0);
    }

    #[test]
    fn streaming_source_runs_without_materializing() {
        use workloads::jobs::SyntheticJobs;
        use workloads::utilization::{Cluster as LanlCluster, UtilizationModel};
        let gen = SyntheticJobs {
            jobs: 2_000,
            max_nodes: 64,
            capacity_nodes: 64.0,
            target_utilization: 0.7,
            utilization: UtilizationModel::for_cluster(LanlCluster::Grizzly),
        };
        let c = Cluster::new(64, [0.62, 0.36, 0.02]);
        let summary = c
            .schedule(crate::source::from_specs(gen.stream(3)))
            .config(aware())
            .run_streaming();
        assert_eq!(summary.jobs(), 2_000);
        assert!(summary.mean_exec_s() > 0.0);
        // Replaying the same stream gives the same summary.
        let again = c
            .schedule(crate::source::from_specs(gen.stream(3)))
            .config(aware())
            .run_streaming();
        assert_eq!(summary.mean_turnaround_s(), again.mean_turnaround_s());
        assert_eq!(summary.makespan_s(), again.makespan_s());
    }
}
