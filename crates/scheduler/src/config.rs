//! Validated scheduler and federation configuration.
//!
//! The original API threaded a bare `Policy` plus a loose
//! `&SpeedupModel` through every call. [`SchedulerConfig`] bundles the
//! two behind a builder that rejects inconsistent group/speedup tables
//! up front (mirroring `memsim`'s `MemoryConfig` builder idiom), so a
//! bad table fails once at construction instead of silently skewing a
//! 10 M-job simulation.

use crate::cluster::{Policy, SpeedupModel};

/// Margin-group ordering tolerance: the node model measures the 800
/// and 600 MT/s speedups independently, so sampling noise may leave
/// the 600 table a hair above the 800 one without the configuration
/// being wrong (the end-to-end suite allows the same slack).
const GROUP_ORDER_TOLERANCE: f64 = 0.02;

/// Speedups materially below 1.0 are rejected: a frequency margin can
/// make memory faster, never slower. Tables measured from short node
/// simulations carry sampling noise (quick runs measure the 600 MT/s
/// mid-usage bucket a couple of percent under parity), so the slack
/// is sized like [`GROUP_ORDER_TOLERANCE`], not machine epsilon.
const BASELINE_TOLERANCE: f64 = 0.05;

/// What made a [`SchedulerConfig`] (or federation) invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A speedup entry is NaN or infinite.
    NonFiniteSpeedup {
        /// Which table (`"at_800"` / `"at_600"`).
        table: &'static str,
        /// Usage-bucket index within the table.
        bucket: usize,
        /// The offending value.
        value: f64,
    },
    /// A speedup entry is materially below 1.0 (margins never slow
    /// jobs down; sub-parity beyond measurement noise is a bad table).
    BelowBaseline {
        /// Which table (`"at_800"` / `"at_600"`).
        table: &'static str,
        /// Usage-bucket index within the table.
        bucket: usize,
        /// The offending value.
        value: f64,
    },
    /// The 600 MT/s margin group claims a materially larger speedup
    /// than the 800 MT/s group in the same usage bucket.
    GroupInversion {
        /// Usage-bucket index.
        bucket: usize,
        /// Speedup claimed at 800 MT/s margin.
        at_800: f64,
        /// Speedup claimed at 600 MT/s margin.
        at_600: f64,
    },
    /// A federation needs at least one member cluster.
    EmptyFederation,
    /// Two federation members share a name.
    DuplicateMember(String),
    /// A federation member has no nodes.
    EmptyCluster(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonFiniteSpeedup {
                table,
                bucket,
                value,
            } => write!(f, "speedup {table}[{bucket}] = {value} is not finite"),
            ConfigError::BelowBaseline {
                table,
                bucket,
                value,
            } => write!(
                f,
                "speedup {table}[{bucket}] = {value} is below 1.0; margins never slow jobs down"
            ),
            ConfigError::GroupInversion {
                bucket,
                at_800,
                at_600,
            } => write!(
                f,
                "bucket {bucket}: at_600 = {at_600} exceeds at_800 = {at_800} beyond tolerance; \
                 a smaller margin cannot be faster"
            ),
            ConfigError::EmptyFederation => write!(f, "a federation needs at least one cluster"),
            ConfigError::DuplicateMember(name) => {
                write!(f, "duplicate federation member name {name:?}")
            }
            ConfigError::EmptyCluster(name) => {
                write!(f, "federation member {name:?} has no nodes")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A validated (policy, speedup-table) pair — the scheduling side of a
/// cluster's identity. Construct via [`SchedulerConfig::builder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    policy: Policy,
    speedups: SpeedupModel,
    traced_job_cap: usize,
}

impl Default for SchedulerConfig {
    /// A conventional, margin-oblivious system (always valid).
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            policy: Policy::Default,
            speedups: SpeedupModel::conventional(),
            traced_job_cap: crate::cluster::TRACED_JOB_CAP,
        }
    }
}

impl SchedulerConfig {
    /// Starts a builder at the conventional default.
    pub fn builder() -> SchedulerConfigBuilder {
        SchedulerConfigBuilder {
            policy: Policy::Default,
            speedups: SpeedupModel::conventional(),
            traced_job_cap: crate::cluster::TRACED_JOB_CAP,
        }
    }

    /// The node-selection policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The per-(group, usage-bucket) speedup table.
    pub fn speedups(&self) -> &SpeedupModel {
        &self.speedups
    }

    /// How many jobs get per-job trace spans before the tracer starts
    /// dropping them (the drop count is still metered; see
    /// `trace_dropped_jobs`).
    pub fn traced_job_cap(&self) -> usize {
        self.traced_job_cap
    }

    /// Compatibility escape hatch for the deprecated `Cluster::run*`
    /// wrappers, which historically accepted any table unchecked.
    pub(crate) fn from_parts_unchecked(policy: Policy, speedups: SpeedupModel) -> SchedulerConfig {
        SchedulerConfig {
            policy,
            speedups,
            traced_job_cap: crate::cluster::TRACED_JOB_CAP,
        }
    }
}

/// Builder for [`SchedulerConfig`]; `build` validates the table.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfigBuilder {
    policy: Policy,
    speedups: SpeedupModel,
    traced_job_cap: usize,
}

impl SchedulerConfigBuilder {
    /// Sets the node-selection policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Caps how many jobs receive individual trace spans (default
    /// [`crate::cluster::TRACED_JOB_CAP`]). Raising it fattens traces;
    /// drops beyond the cap are counted either way.
    pub fn traced_job_cap(mut self, cap: usize) -> Self {
        self.traced_job_cap = cap;
        self
    }

    /// Shorthand for the paper's margin-aware policy.
    pub fn margin_aware(self) -> Self {
        self.policy(Policy::MarginAware)
    }

    /// Shorthand for Slurm's margin-oblivious policy.
    pub fn margin_oblivious(self) -> Self {
        self.policy(Policy::Default)
    }

    /// Sets the speedup table (validated at `build`).
    pub fn speedups(mut self, speedups: SpeedupModel) -> Self {
        self.speedups = speedups;
        self
    }

    /// Validates and builds the configuration.
    pub fn build(self) -> Result<SchedulerConfig, ConfigError> {
        let tables = [
            ("at_800", self.speedups.at_800),
            ("at_600", self.speedups.at_600),
        ];
        for (table, values) in tables {
            for (bucket, &value) in values.iter().enumerate() {
                if !value.is_finite() {
                    return Err(ConfigError::NonFiniteSpeedup {
                        table,
                        bucket,
                        value,
                    });
                }
                if value < 1.0 - BASELINE_TOLERANCE {
                    return Err(ConfigError::BelowBaseline {
                        table,
                        bucket,
                        value,
                    });
                }
            }
        }
        for bucket in 0..2 {
            let (at_800, at_600) = (self.speedups.at_800[bucket], self.speedups.at_600[bucket]);
            if at_600 > at_800 + GROUP_ORDER_TOLERANCE {
                return Err(ConfigError::GroupInversion {
                    bucket,
                    at_800,
                    at_600,
                });
            }
        }
        Ok(SchedulerConfig {
            policy: self.policy,
            speedups: self.speedups,
            traced_job_cap: self.traced_job_cap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_conventional_and_valid() {
        let c = SchedulerConfig::default();
        assert_eq!(c.policy(), Policy::Default);
        assert_eq!(*c.speedups(), SpeedupModel::conventional());
        // The builder's default must round-trip too.
        assert_eq!(SchedulerConfig::builder().build().unwrap(), c);
    }

    #[test]
    fn valid_tables_build() {
        let c = SchedulerConfig::builder()
            .margin_aware()
            .speedups(SpeedupModel::hetero_dmr_default())
            .build()
            .unwrap();
        assert_eq!(c.policy(), Policy::MarginAware);
        assert_eq!(c.speedups().at_800, [1.10, 1.10]);
    }

    #[test]
    fn non_finite_speedup_is_rejected() {
        let err = SchedulerConfig::builder()
            .speedups(SpeedupModel {
                at_800: [f64::NAN, 1.1],
                at_600: [1.0, 1.0],
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::NonFiniteSpeedup {
                table: "at_800",
                bucket: 0,
                ..
            }
        ));
        assert!(err.to_string().contains("not finite"));
    }

    #[test]
    fn slowdown_tables_are_rejected() {
        // Within measurement noise of parity: allowed (quick node
        // simulations measure a hair under 1.0).
        SchedulerConfig::builder()
            .speedups(SpeedupModel {
                at_800: [1.1, 1.1],
                at_600: [0.98, 1.0],
            })
            .build()
            .unwrap();
        let err = SchedulerConfig::builder()
            .speedups(SpeedupModel {
                at_800: [1.1, 1.1],
                at_600: [0.93, 1.0],
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::BelowBaseline {
                table: "at_600",
                bucket: 0,
                ..
            }
        ));
    }

    #[test]
    fn group_inversion_is_rejected_beyond_tolerance() {
        // Within measurement tolerance: allowed.
        SchedulerConfig::builder()
            .speedups(SpeedupModel {
                at_800: [1.08, 1.08],
                at_600: [1.09, 1.08],
            })
            .build()
            .unwrap();
        // A materially faster 600 group is a broken table.
        let err = SchedulerConfig::builder()
            .speedups(SpeedupModel {
                at_800: [1.05, 1.05],
                at_600: [1.12, 1.05],
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::GroupInversion { bucket: 0, .. }));
        assert!(err.to_string().contains("smaller margin"));
    }

    #[test]
    fn traced_job_cap_defaults_and_overrides() {
        assert_eq!(
            SchedulerConfig::default().traced_job_cap(),
            crate::cluster::TRACED_JOB_CAP
        );
        let c = SchedulerConfig::builder()
            .traced_job_cap(7)
            .build()
            .unwrap();
        assert_eq!(c.traced_job_cap(), 7);
    }

    #[test]
    fn config_error_is_a_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(ConfigError::EmptyFederation);
        assert!(err.to_string().contains("at least one"));
    }
}
