//! HPC cluster scheduler simulator for the Hetero-DMR reproduction.
//!
//! Stands in for the paper's Slurm + Slurmsim setup (Section IV-C):
//! a 1490-node Grizzly-like cluster fed four months of synthetic job
//! traces (~58 K jobs, ~78 % node utilization), scheduled FCFS with
//! EASY backfill. Nodes carry frequency-margin groups (0.8 / 0.6 /
//! 0 GT/s); jobs on Hetero-DMR nodes run faster according to the
//! node-level performance model, probabilistically gated by the job's
//! memory utilization (only jobs below 50 % benefit).
//!
//! Two node-selection policies are compared, as in the paper:
//!
//! * **default** — Slurm's margin-oblivious first-fit;
//! * **margin-aware** — the paper's ~30-line Slurm patch: prefer
//!   allocating a job entirely within the fastest group that can hold
//!   it, because one slow node drags the whole MPI job down.

pub mod cluster;
pub mod config;
pub mod federation;
pub mod job;
pub mod queue;
pub mod source;
pub mod stats;
pub mod trace;

pub use cluster::{run_variants, Cluster, Policy, ScheduleBuilder, SpeedupModel, Variant};
pub use config::{ConfigError, SchedulerConfig, SchedulerConfigBuilder};
pub use federation::{ClusterSpec, Federation, FederationRun, MemberRun, PlacementPolicy};
pub use job::{Job, JobOutcome};
pub use queue::EventQueue;
pub use source::{from_iter, from_specs, IterSource, JobSource, SliceSource, SpecSource};
pub use stats::{QueueTail, RunSummary, StreamSummary};
pub use trace::GrizzlyTrace;
