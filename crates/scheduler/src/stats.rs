//! Run-level statistics (Figure 17's execution / queueing /
//! turnaround bars), plus the memory-bounded streaming summary that
//! fleet-scale runs fold outcomes into.

use crate::cluster::GROUPS;
use crate::job::JobOutcome;
use telemetry::Histogram;

/// Aggregate metrics of one scheduled run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Mean job execution time, seconds.
    pub mean_exec_s: f64,
    /// Mean queueing delay, seconds.
    pub mean_queue_s: f64,
    /// Mean turnaround, seconds.
    pub mean_turnaround_s: f64,
    /// Jobs in the run.
    pub jobs: usize,
}

impl RunSummary {
    /// Summarizes a run's outcomes.
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> RunSummary {
        let n = outcomes.len().max(1) as f64;
        RunSummary {
            mean_exec_s: outcomes.iter().map(|o| o.exec_s).sum::<f64>() / n,
            mean_queue_s: outcomes.iter().map(JobOutcome::queue_delay_s).sum::<f64>() / n,
            mean_turnaround_s: outcomes.iter().map(JobOutcome::turnaround_s).sum::<f64>() / n,
            jobs: outcomes.len(),
        }
    }

    /// Figure 17's normalized metrics: this run's means relative to a
    /// baseline run's (values < 1 are improvements). Returns
    /// `(execution, queueing, turnaround)`.
    pub fn normalized_to(&self, baseline: &RunSummary) -> (f64, f64, f64) {
        (
            self.mean_exec_s / baseline.mean_exec_s,
            self.mean_queue_s / baseline.mean_queue_s,
            self.mean_turnaround_s / baseline.mean_turnaround_s,
        )
    }

    /// Turnaround speedup over a baseline (>1 is faster) — the
    /// paper's headline 1.4×.
    pub fn turnaround_speedup_over(&self, baseline: &RunSummary) -> f64 {
        baseline.mean_turnaround_s / self.mean_turnaround_s
    }
}

/// Achieved node utilization of a run: consumed node-seconds over the
/// cluster's capacity across the run's span (the paper reports ~78 %
/// for the four-month Grizzly trace).
pub fn achieved_utilization(outcomes: &[JobOutcome], cluster_nodes: u32) -> f64 {
    if outcomes.is_empty() || cluster_nodes == 0 {
        return 0.0;
    }
    let consumed: f64 = outcomes.iter().map(|o| o.job.nodes as f64 * o.exec_s).sum();
    let end = outcomes
        .iter()
        .map(|o| o.start_s + o.exec_s)
        .fold(0.0f64, f64::max);
    let start = outcomes
        .iter()
        .map(|o| o.job.submit_s)
        .fold(f64::MAX, f64::min);
    let span = (end - start).max(f64::EPSILON);
    consumed / (cluster_nodes as f64 * span)
}

/// Tail statistics of a run's queueing delays — means hide the worst
/// cases that users actually feel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueTail {
    /// Median queueing delay, seconds.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Worst job.
    pub max_s: f64,
}

impl QueueTail {
    /// Computes the tail from a run's outcomes (empty runs give zeros).
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> QueueTail {
        if outcomes.is_empty() {
            return QueueTail {
                p50_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
                max_s: 0.0,
            };
        }
        let mut delays: Vec<f64> = outcomes.iter().map(JobOutcome::queue_delay_s).collect();
        delays.sort_by(f64::total_cmp);
        let pick = |q: f64| {
            let idx = ((delays.len() - 1) as f64 * q).round() as usize;
            delays[idx]
        };
        QueueTail {
            p50_s: pick(0.50),
            p95_s: pick(0.95),
            p99_s: pick(0.99),
            max_s: *delays.last().expect("nonempty"),
        }
    }
}

/// Streaming run statistics: everything Figure-17-style reporting
/// needs, folded in one outcome at a time with O(1) memory. Queue
/// delays keep a log₂-bucketed [`Histogram`] (65 fixed buckets) for
/// approximate tail quantiles, so a 10 M-job run costs the same RSS
/// as a 100-job run. Summaries merge across federation shards in
/// member order, keeping fleet-level results deterministic.
#[derive(Debug, Default)]
pub struct StreamSummary {
    jobs: u64,
    backfilled: u64,
    started_per_group: [u64; 3],
    exec_sum_s: f64,
    queue_sum_s: f64,
    turnaround_sum_s: f64,
    /// Consumed node-seconds (nodes × accelerated execution time).
    node_seconds: f64,
    first_submit_s: f64,
    makespan_s: f64,
    queue_delay_ms: Histogram,
    /// Optional health-plane tap: when set, every noted job also
    /// records its queue delay (ms) into this sim-time series at the
    /// job's submit time, feeding the SLO burn-rate detectors.
    series: Option<telemetry::series::Series>,
}

impl StreamSummary {
    /// An empty summary (identity under [`merge_from`](Self::merge_from)).
    pub fn new() -> StreamSummary {
        StreamSummary {
            first_submit_s: f64::INFINITY,
            ..StreamSummary::default()
        }
    }

    /// Streams queue delays into `series` as jobs are noted: the
    /// sample time is the job's submit time on the schedule-ms clock,
    /// the value its queue delay in ms. Window aggregation is
    /// order-independent, so tapped summaries stay merge-deterministic.
    pub fn tap_series(&mut self, series: telemetry::series::Series) {
        self.series = Some(series);
    }

    /// Folds one started job in.
    pub fn note(&mut self, outcome: &JobOutcome, min_group: u32, backfilled: bool) {
        self.jobs += 1;
        if backfilled {
            self.backfilled += 1;
        }
        if let Some(idx) = GROUPS.iter().position(|&g| g == min_group) {
            self.started_per_group[idx] += 1;
        }
        self.exec_sum_s += outcome.exec_s;
        self.queue_sum_s += outcome.queue_delay_s();
        self.turnaround_sum_s += outcome.turnaround_s();
        self.node_seconds += outcome.job.nodes as f64 * outcome.exec_s;
        self.first_submit_s = self.first_submit_s.min(outcome.job.submit_s);
        self.makespan_s = self.makespan_s.max(outcome.start_s + outcome.exec_s);
        let delay_ms = (outcome.queue_delay_s() * 1e3).max(0.0) as u64;
        self.queue_delay_ms.record(delay_ms);
        if let Some(series) = &self.series {
            series.record((outcome.job.submit_s * 1e3).max(0.0) as u64, delay_ms);
        }
    }

    /// Folds another summary in (sums add, extremes combine, the
    /// delay histograms fold bucket-wise). Order-insensitive up to
    /// float addition, so merge in a canonical order for
    /// byte-reproducible results.
    pub fn merge_from(&mut self, other: &StreamSummary) {
        self.jobs += other.jobs;
        self.backfilled += other.backfilled;
        for (mine, theirs) in self
            .started_per_group
            .iter_mut()
            .zip(other.started_per_group)
        {
            *mine += theirs;
        }
        self.exec_sum_s += other.exec_sum_s;
        self.queue_sum_s += other.queue_sum_s;
        self.turnaround_sum_s += other.turnaround_sum_s;
        self.node_seconds += other.node_seconds;
        self.first_submit_s = self.first_submit_s.min(other.first_submit_s);
        self.makespan_s = self.makespan_s.max(other.makespan_s);
        self.queue_delay_ms.merge_from(&other.queue_delay_ms);
    }

    /// Jobs folded in.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Jobs started by backfill rather than FCFS.
    pub fn backfilled(&self) -> u64 {
        self.backfilled
    }

    /// Starts whose slowest node was in each margin group (indexed
    /// like `GROUPS`: 800, 600, none).
    pub fn started_per_group(&self) -> [u64; 3] {
        self.started_per_group
    }

    /// Mean execution time, seconds.
    pub fn mean_exec_s(&self) -> f64 {
        self.exec_sum_s / self.jobs.max(1) as f64
    }

    /// Mean queueing delay, seconds.
    pub fn mean_queue_s(&self) -> f64 {
        self.queue_sum_s / self.jobs.max(1) as f64
    }

    /// Mean turnaround, seconds.
    pub fn mean_turnaround_s(&self) -> f64 {
        self.turnaround_sum_s / self.jobs.max(1) as f64
    }

    /// Time the last job finished, seconds.
    pub fn makespan_s(&self) -> f64 {
        self.makespan_s
    }

    /// Approximate queue-delay quantile in seconds (log₂-bucket upper
    /// bound), 0 for an empty summary.
    pub fn queue_quantile_s(&self, q: f64) -> f64 {
        self.queue_delay_ms
            .approx_quantile(q)
            .map(|ms| ms as f64 / 1e3)
            .unwrap_or(0.0)
    }

    /// Turnaround speedup over a baseline (>1 is faster) — the
    /// paper's headline metric, streaming edition.
    pub fn turnaround_speedup_over(&self, baseline: &StreamSummary) -> f64 {
        baseline.mean_turnaround_s() / self.mean_turnaround_s()
    }

    /// Achieved node utilization against `capacity_nodes` over the
    /// run's span (first submit → makespan).
    pub fn utilization(&self, capacity_nodes: f64) -> f64 {
        if self.jobs == 0 || capacity_nodes <= 0.0 {
            return 0.0;
        }
        let span = (self.makespan_s - self.first_submit_s).max(f64::EPSILON);
        self.node_seconds / (capacity_nodes * span)
    }

    /// The fixed-size [`RunSummary`] view (for code that compares
    /// against materialized runs).
    pub fn as_run_summary(&self) -> RunSummary {
        RunSummary {
            mean_exec_s: self.mean_exec_s(),
            mean_queue_s: self.mean_queue_s(),
            mean_turnaround_s: self.mean_turnaround_s(),
            jobs: self.jobs as usize,
        }
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use crate::job::Job;

    fn outcome(id: u32, submit: f64, start: f64, exec: f64, nodes: u32) -> JobOutcome {
        JobOutcome {
            job: Job {
                id,
                submit_s: submit,
                nodes,
                duration_s: exec,
                mem_utilization: 0.1,
            },
            start_s: start,
            exec_s: exec,
        }
    }

    #[test]
    fn streaming_means_match_the_batch_summary() {
        let outcomes = [
            outcome(0, 0.0, 10.0, 100.0, 2),
            outcome(1, 5.0, 30.0, 200.0, 4),
            outcome(2, 9.0, 40.0, 50.0, 1),
        ];
        let batch = RunSummary::from_outcomes(&outcomes);
        let mut s = StreamSummary::new();
        for o in &outcomes {
            s.note(o, 800, false);
        }
        assert_eq!(s.jobs(), 3);
        assert!((s.mean_exec_s() - batch.mean_exec_s).abs() < 1e-12);
        assert!((s.mean_queue_s() - batch.mean_queue_s).abs() < 1e-12);
        assert!((s.mean_turnaround_s() - batch.mean_turnaround_s).abs() < 1e-12);
        assert_eq!(s.as_run_summary(), batch);
        assert_eq!(s.started_per_group(), [3, 0, 0]);
        assert_eq!(s.makespan_s(), 230.0);
    }

    #[test]
    fn merge_equals_noting_everything_into_one() {
        let outcomes: Vec<JobOutcome> = (0..40)
            .map(|i| outcome(i, i as f64, i as f64 + (i % 7) as f64, 60.0 + i as f64, 1))
            .collect();
        let mut whole = StreamSummary::new();
        let mut left = StreamSummary::new();
        let mut right = StreamSummary::new();
        for (i, o) in outcomes.iter().enumerate() {
            let group = GROUPS[i % 3];
            whole.note(o, group, i % 2 == 0);
            if i < 17 {
                left.note(o, group, i % 2 == 0);
            } else {
                right.note(o, group, i % 2 == 0);
            }
        }
        let mut merged = StreamSummary::new();
        merged.merge_from(&left);
        merged.merge_from(&right);
        assert_eq!(merged.jobs(), whole.jobs());
        assert_eq!(merged.backfilled(), whole.backfilled());
        assert_eq!(merged.started_per_group(), whole.started_per_group());
        assert!((merged.mean_turnaround_s() - whole.mean_turnaround_s()).abs() < 1e-9);
        assert_eq!(merged.makespan_s(), whole.makespan_s());
        assert_eq!(merged.queue_quantile_s(0.95), whole.queue_quantile_s(0.95));
    }

    #[test]
    fn quantiles_are_log2_upper_bounds() {
        let mut s = StreamSummary::new();
        for i in 0..100 {
            s.note(&outcome(i, 0.0, i as f64, 10.0, 1), 0, false);
        }
        // Delays 0..99 s → p50 ≈ 50 000 ms lands in the 2^16 bucket.
        let p50 = s.queue_quantile_s(0.5);
        assert!((49.0..=66.0).contains(&p50), "p50 {p50}");
        assert!(s.queue_quantile_s(0.99) >= s.queue_quantile_s(0.5));
        assert_eq!(StreamSummary::new().queue_quantile_s(0.5), 0.0);
    }

    #[test]
    fn series_tap_buckets_queue_delays_by_submit_time() {
        let store = telemetry::series::SeriesStore::new();
        let mut s = StreamSummary::new();
        // 10 s windows on the schedule-ms clock.
        s.tap_series(store.series("q.queue_delay_ms", 10_000));
        s.note(&outcome(0, 1.0, 3.0, 10.0, 1), 800, false); // 2 s delay @ t=1 s
        s.note(&outcome(1, 2.0, 6.0, 10.0, 1), 800, false); // 4 s delay @ t=2 s
        s.note(&outcome(2, 15.0, 15.0, 10.0, 1), 800, false); // 0 delay @ t=15 s
        let snap = store.snapshot();
        let entry = snap.get("q.queue_delay_ms").unwrap();
        assert_eq!(entry.windows.len(), 2);
        let (start, w) = &entry.windows[0];
        assert_eq!((*start, w.count, w.sum), (0, 2, 6_000));
        let (start, w) = &entry.windows[1];
        assert_eq!((*start, w.count, w.sum), (10_000, 1, 0));
        // The tap does not perturb the summary itself.
        assert_eq!(s.jobs(), 3);
        assert!((s.mean_queue_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_and_speedup() {
        let mut busy = StreamSummary::new();
        busy.note(&outcome(0, 0.0, 0.0, 50.0, 1), 0, false);
        busy.note(&outcome(1, 0.0, 50.0, 50.0, 1), 0, false);
        assert!((busy.utilization(1.0) - 1.0).abs() < 1e-9);
        assert!((busy.utilization(2.0) - 0.5).abs() < 1e-9);
        assert_eq!(StreamSummary::new().utilization(8.0), 0.0);

        let mut slow = StreamSummary::new();
        slow.note(&outcome(0, 0.0, 0.0, 100.0, 1), 0, false);
        let mut fast = StreamSummary::new();
        fast.note(&outcome(0, 0.0, 0.0, 80.0, 1), 0, false);
        assert!((fast.turnaround_speedup_over(&slow) - 1.25).abs() < 1e-12);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn outcome(submit: f64, start: f64, exec: f64) -> JobOutcome {
        JobOutcome {
            job: Job {
                id: 0,
                submit_s: submit,
                nodes: 1,
                duration_s: exec,
                mem_utilization: 0.1,
            },
            start_s: start,
            exec_s: exec,
        }
    }

    #[test]
    fn summary_means() {
        let outcomes = [outcome(0.0, 10.0, 100.0), outcome(0.0, 30.0, 200.0)];
        let s = RunSummary::from_outcomes(&outcomes);
        assert_eq!(s.mean_exec_s, 150.0);
        assert_eq!(s.mean_queue_s, 20.0);
        assert_eq!(s.mean_turnaround_s, 170.0);
        assert_eq!(s.jobs, 2);
    }

    #[test]
    fn normalization_and_speedup() {
        let base = RunSummary {
            mean_exec_s: 100.0,
            mean_queue_s: 50.0,
            mean_turnaround_s: 150.0,
            jobs: 10,
        };
        let fast = RunSummary {
            mean_exec_s: 85.0,
            mean_queue_s: 33.0,
            mean_turnaround_s: 118.0,
            jobs: 10,
        };
        let (e, q, t) = fast.normalized_to(&base);
        assert!((e - 0.85).abs() < 1e-12);
        assert!((q - 0.66).abs() < 1e-12);
        assert!((t - 118.0 / 150.0).abs() < 1e-12);
        assert!((fast.turnaround_speedup_over(&base) - 150.0 / 118.0).abs() < 1e-12);
    }

    #[test]
    fn queue_tail_percentiles() {
        let outcomes: Vec<JobOutcome> = (0..100).map(|i| outcome(0.0, i as f64, 10.0)).collect();
        let tail = QueueTail::from_outcomes(&outcomes);
        assert_eq!(tail.p50_s, 50.0);
        assert_eq!(tail.p95_s, 94.0);
        assert_eq!(tail.p99_s, 98.0);
        assert_eq!(tail.max_s, 99.0);
        // Ordering invariant.
        assert!(tail.p50_s <= tail.p95_s && tail.p95_s <= tail.p99_s && tail.p99_s <= tail.max_s);
    }

    #[test]
    fn utilization_of_a_full_machine() {
        // Two jobs back to back on a 1-node cluster: 100% utilization.
        let outcomes = [outcome(0.0, 0.0, 50.0), outcome(0.0, 50.0, 50.0)];
        let u = achieved_utilization(&outcomes, 1);
        assert!((u - 1.0).abs() < 1e-9, "utilization {u}");
        // The same work on 2 nodes: 50%.
        let u = achieved_utilization(&outcomes, 2);
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(achieved_utilization(&[], 4), 0.0);
    }

    #[test]
    fn grizzly_trace_achieves_the_papers_utilization() {
        use crate::cluster::Cluster;
        use crate::source::SliceSource;
        use crate::trace::GrizzlyTrace;
        let trace = GrizzlyTrace::scaled(6_000, 1_490).generate(5);
        let cluster = Cluster::conventional(1_490);
        let outcomes = cluster.schedule(SliceSource::new(&trace)).run();
        let u = achieved_utilization(&outcomes, 1_490);
        // The offered load targets 78%; achieved lands nearby
        // (scheduling losses push it slightly below, queue drain at the
        // end slightly above).
        assert!((0.6..0.95).contains(&u), "achieved utilization {u}");
    }

    #[test]
    fn queue_tail_empty_run() {
        let tail = QueueTail::from_outcomes(&[]);
        assert_eq!(tail.max_s, 0.0);
        assert_eq!(tail.p50_s, 0.0);
    }

    #[test]
    fn empty_run_is_safe() {
        let s = RunSummary::from_outcomes(&[]);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_exec_s, 0.0);
    }
}
