//! Run-level statistics (Figure 17's execution / queueing /
//! turnaround bars).

use crate::job::JobOutcome;

/// Aggregate metrics of one scheduled run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Mean job execution time, seconds.
    pub mean_exec_s: f64,
    /// Mean queueing delay, seconds.
    pub mean_queue_s: f64,
    /// Mean turnaround, seconds.
    pub mean_turnaround_s: f64,
    /// Jobs in the run.
    pub jobs: usize,
}

impl RunSummary {
    /// Summarizes a run's outcomes.
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> RunSummary {
        let n = outcomes.len().max(1) as f64;
        RunSummary {
            mean_exec_s: outcomes.iter().map(|o| o.exec_s).sum::<f64>() / n,
            mean_queue_s: outcomes.iter().map(JobOutcome::queue_delay_s).sum::<f64>() / n,
            mean_turnaround_s: outcomes.iter().map(JobOutcome::turnaround_s).sum::<f64>() / n,
            jobs: outcomes.len(),
        }
    }

    /// Figure 17's normalized metrics: this run's means relative to a
    /// baseline run's (values < 1 are improvements). Returns
    /// `(execution, queueing, turnaround)`.
    pub fn normalized_to(&self, baseline: &RunSummary) -> (f64, f64, f64) {
        (
            self.mean_exec_s / baseline.mean_exec_s,
            self.mean_queue_s / baseline.mean_queue_s,
            self.mean_turnaround_s / baseline.mean_turnaround_s,
        )
    }

    /// Turnaround speedup over a baseline (>1 is faster) — the
    /// paper's headline 1.4×.
    pub fn turnaround_speedup_over(&self, baseline: &RunSummary) -> f64 {
        baseline.mean_turnaround_s / self.mean_turnaround_s
    }
}

/// Achieved node utilization of a run: consumed node-seconds over the
/// cluster's capacity across the run's span (the paper reports ~78 %
/// for the four-month Grizzly trace).
pub fn achieved_utilization(outcomes: &[JobOutcome], cluster_nodes: u32) -> f64 {
    if outcomes.is_empty() || cluster_nodes == 0 {
        return 0.0;
    }
    let consumed: f64 = outcomes.iter().map(|o| o.job.nodes as f64 * o.exec_s).sum();
    let end = outcomes
        .iter()
        .map(|o| o.start_s + o.exec_s)
        .fold(0.0f64, f64::max);
    let start = outcomes
        .iter()
        .map(|o| o.job.submit_s)
        .fold(f64::MAX, f64::min);
    let span = (end - start).max(f64::EPSILON);
    consumed / (cluster_nodes as f64 * span)
}

/// Tail statistics of a run's queueing delays — means hide the worst
/// cases that users actually feel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueTail {
    /// Median queueing delay, seconds.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Worst job.
    pub max_s: f64,
}

impl QueueTail {
    /// Computes the tail from a run's outcomes (empty runs give zeros).
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> QueueTail {
        if outcomes.is_empty() {
            return QueueTail {
                p50_s: 0.0,
                p95_s: 0.0,
                p99_s: 0.0,
                max_s: 0.0,
            };
        }
        let mut delays: Vec<f64> = outcomes.iter().map(JobOutcome::queue_delay_s).collect();
        delays.sort_by(f64::total_cmp);
        let pick = |q: f64| {
            let idx = ((delays.len() - 1) as f64 * q).round() as usize;
            delays[idx]
        };
        QueueTail {
            p50_s: pick(0.50),
            p95_s: pick(0.95),
            p99_s: pick(0.99),
            max_s: *delays.last().expect("nonempty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn outcome(submit: f64, start: f64, exec: f64) -> JobOutcome {
        JobOutcome {
            job: Job {
                id: 0,
                submit_s: submit,
                nodes: 1,
                duration_s: exec,
                mem_utilization: 0.1,
            },
            start_s: start,
            exec_s: exec,
        }
    }

    #[test]
    fn summary_means() {
        let outcomes = [outcome(0.0, 10.0, 100.0), outcome(0.0, 30.0, 200.0)];
        let s = RunSummary::from_outcomes(&outcomes);
        assert_eq!(s.mean_exec_s, 150.0);
        assert_eq!(s.mean_queue_s, 20.0);
        assert_eq!(s.mean_turnaround_s, 170.0);
        assert_eq!(s.jobs, 2);
    }

    #[test]
    fn normalization_and_speedup() {
        let base = RunSummary {
            mean_exec_s: 100.0,
            mean_queue_s: 50.0,
            mean_turnaround_s: 150.0,
            jobs: 10,
        };
        let fast = RunSummary {
            mean_exec_s: 85.0,
            mean_queue_s: 33.0,
            mean_turnaround_s: 118.0,
            jobs: 10,
        };
        let (e, q, t) = fast.normalized_to(&base);
        assert!((e - 0.85).abs() < 1e-12);
        assert!((q - 0.66).abs() < 1e-12);
        assert!((t - 118.0 / 150.0).abs() < 1e-12);
        assert!((fast.turnaround_speedup_over(&base) - 150.0 / 118.0).abs() < 1e-12);
    }

    #[test]
    fn queue_tail_percentiles() {
        let outcomes: Vec<JobOutcome> = (0..100).map(|i| outcome(0.0, i as f64, 10.0)).collect();
        let tail = QueueTail::from_outcomes(&outcomes);
        assert_eq!(tail.p50_s, 50.0);
        assert_eq!(tail.p95_s, 94.0);
        assert_eq!(tail.p99_s, 98.0);
        assert_eq!(tail.max_s, 99.0);
        // Ordering invariant.
        assert!(tail.p50_s <= tail.p95_s && tail.p95_s <= tail.p99_s && tail.p99_s <= tail.max_s);
    }

    #[test]
    fn utilization_of_a_full_machine() {
        // Two jobs back to back on a 1-node cluster: 100% utilization.
        let outcomes = [outcome(0.0, 0.0, 50.0), outcome(0.0, 50.0, 50.0)];
        let u = achieved_utilization(&outcomes, 1);
        assert!((u - 1.0).abs() < 1e-9, "utilization {u}");
        // The same work on 2 nodes: 50%.
        let u = achieved_utilization(&outcomes, 2);
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(achieved_utilization(&[], 4), 0.0);
    }

    #[test]
    fn grizzly_trace_achieves_the_papers_utilization() {
        use crate::cluster::{Cluster, Policy, SpeedupModel};
        use crate::trace::GrizzlyTrace;
        let trace = GrizzlyTrace::scaled(6_000, 1_490).generate(5);
        let cluster = Cluster::conventional(1_490);
        let outcomes = cluster.run(&trace, Policy::Default, &SpeedupModel::conventional());
        let u = achieved_utilization(&outcomes, 1_490);
        // The offered load targets 78%; achieved lands nearby
        // (scheduling losses push it slightly below, queue drain at the
        // end slightly above).
        assert!((0.6..0.95).contains(&u), "achieved utilization {u}");
    }

    #[test]
    fn queue_tail_empty_run() {
        let tail = QueueTail::from_outcomes(&[]);
        assert_eq!(tail.max_s, 0.0);
        assert_eq!(tail.p50_s, 0.0);
    }

    #[test]
    fn empty_run_is_safe() {
        let s = RunSummary::from_outcomes(&[]);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_exec_s, 0.0);
    }
}
