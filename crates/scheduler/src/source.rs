//! Streaming job ingestion: the [`JobSource`] trait and its adapters.
//!
//! The scheduler's event loop pulls jobs one at a time instead of
//! taking a `&[Job]`, so traces can be generated on the fly
//! (`workloads::jobs`) and a 10 M-job run never materializes the
//! trace. Sources must yield jobs in nondecreasing `submit_s` order —
//! the event loop debug-asserts this.

use crate::job::Job;
use workloads::jobs::JobSpec;

/// A stream of jobs in nondecreasing submission order.
///
/// Implementors are pull-based iterators; the scheduler buffers at
/// most one job of lookahead, so a source's memory footprint is its
/// own business (a slice adapter borrows, a synthetic stream is O(1)).
pub trait JobSource {
    /// The next job, or `None` when the stream is exhausted.
    fn next_job(&mut self) -> Option<Job>;

    /// Jobs remaining, if cheaply known. Used only to pre-size result
    /// buffers; correctness never depends on it.
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

impl<T: JobSource + ?Sized> JobSource for &mut T {
    fn next_job(&mut self) -> Option<Job> {
        (**self).next_job()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }
}

/// Borrows a materialized trace as a source (the migration path for
/// every pre-existing `&[Job]` caller).
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    jobs: &'a [Job],
    next: usize,
}

impl<'a> SliceSource<'a> {
    /// Wraps `jobs` (must already be sorted by `submit_s`).
    pub fn new(jobs: &'a [Job]) -> SliceSource<'a> {
        SliceSource { jobs, next: 0 }
    }
}

impl JobSource for SliceSource<'_> {
    fn next_job(&mut self) -> Option<Job> {
        let job = self.jobs.get(self.next).copied()?;
        self.next += 1;
        Some(job)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.jobs.len() - self.next)
    }
}

/// Adapts any `Iterator<Item = Job>` into a source.
#[derive(Debug, Clone)]
pub struct IterSource<I>(I);

/// Wraps a job iterator as a [`JobSource`].
pub fn from_iter<I: Iterator<Item = Job>>(iter: I) -> IterSource<I> {
    IterSource(iter)
}

impl<I: Iterator<Item = Job>> JobSource for IterSource<I> {
    fn next_job(&mut self) -> Option<Job> {
        self.0.next()
    }

    fn len_hint(&self) -> Option<usize> {
        match self.0.size_hint() {
            (lo, Some(hi)) if lo == hi => Some(hi),
            _ => None,
        }
    }
}

/// Adapts a stream of `workloads` [`JobSpec`]s (e.g. a counter-seeded
/// [`workloads::jobs::JobStream`]) into scheduler jobs. The spec's
/// stream index becomes the job id.
#[derive(Debug, Clone)]
pub struct SpecSource<I>(I);

/// Wraps a `JobSpec` iterator as a [`JobSource`].
pub fn from_specs<I: Iterator<Item = JobSpec>>(iter: I) -> SpecSource<I> {
    SpecSource(iter)
}

impl<I: Iterator<Item = JobSpec>> JobSource for SpecSource<I> {
    fn next_job(&mut self) -> Option<Job> {
        self.0.next().map(|spec| Job {
            id: spec.index as u32,
            submit_s: spec.submit_s,
            nodes: spec.nodes,
            duration_s: spec.duration_s,
            mem_utilization: spec.mem_utilization,
        })
    }

    fn len_hint(&self) -> Option<usize> {
        match self.0.size_hint() {
            (lo, Some(hi)) if lo == hi => Some(hi),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, submit: f64) -> Job {
        Job {
            id,
            submit_s: submit,
            nodes: 1,
            duration_s: 60.0,
            mem_utilization: 0.1,
        }
    }

    #[test]
    fn slice_source_yields_in_order_with_exact_hint() {
        let jobs = [job(0, 0.0), job(1, 1.0), job(2, 2.0)];
        let mut s = SliceSource::new(&jobs);
        assert_eq!(s.len_hint(), Some(3));
        assert_eq!(s.next_job(), Some(jobs[0]));
        assert_eq!(s.len_hint(), Some(2));
        assert_eq!(s.next_job(), Some(jobs[1]));
        assert_eq!(s.next_job(), Some(jobs[2]));
        assert_eq!(s.next_job(), None);
        assert_eq!(s.len_hint(), Some(0));
    }

    #[test]
    fn iter_source_adapts_and_hints() {
        let jobs = vec![job(0, 0.0), job(1, 5.0)];
        let mut s = from_iter(jobs.clone().into_iter());
        assert_eq!(s.len_hint(), Some(2));
        assert_eq!(s.next_job(), Some(jobs[0]));
        assert_eq!(s.next_job(), Some(jobs[1]));
        assert_eq!(s.next_job(), None);
    }

    #[test]
    fn spec_source_maps_stream_index_to_job_id() {
        use workloads::jobs::JobSpec;
        let specs = vec![JobSpec {
            index: 7,
            submit_s: 3.0,
            nodes: 4,
            duration_s: 120.0,
            mem_utilization: 0.3,
        }];
        let mut s = from_specs(specs.into_iter());
        let j = s.next_job().unwrap();
        assert_eq!(j.id, 7);
        assert_eq!(j.submit_s, 3.0);
        assert_eq!(j.nodes, 4);
        assert_eq!(s.next_job(), None);
    }

    #[test]
    fn mut_ref_is_a_source_too() {
        let jobs = [job(0, 0.0)];
        let mut s = SliceSource::new(&jobs);
        let r = &mut s;
        assert_eq!(r.len_hint(), Some(1));
        assert_eq!(r.next_job(), Some(jobs[0]));
        assert_eq!(s.next_job(), None);
    }
}
