//! Property tests for the DDR4 device state machines: any command the
//! model *offers* (via `earliest_issue`) must be accepted when issued
//! at or after that time, and the channel frequency protocol must be
//! well-formed under arbitrary interleavings.

use dram::bank::Bank;
use dram::channel::{Channel, ChannelConfig, FrequencyState, FREQUENCY_TRANSITION_PS};
use dram::command::Command;
use dram::module::{Module, ModuleId};
use dram::organization::ModuleOrganization;
use dram::rank::Rank;
use dram::timing::{MemorySetting, TimingParams};
use proptest::prelude::*;

fn timing() -> TimingParams {
    MemorySetting::Specified.timing()
}

fn arbitrary_command() -> impl Strategy<Value = (Command, u64)> {
    (
        prop_oneof![
            Just(Command::Activate),
            Just(Command::Read),
            Just(Command::Write),
            Just(Command::ReadAp),
            Just(Command::WriteAp),
            Just(Command::Precharge),
            Just(Command::Refresh),
        ],
        0u64..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A bank never lies: whenever `earliest_issue` offers a time,
    /// issuing the command at that time succeeds; and the bank's
    /// responses never travel backwards in time.
    #[test]
    fn bank_offers_are_always_honoured(cmds in proptest::collection::vec(arbitrary_command(), 1..60)) {
        let t = timing();
        let mut bank = Bank::new();
        let mut clock = 0u64;
        for (cmd, row) in cmds {
            if let Some(at) = bank.earliest_issue(cmd, row) {
                let when = at.max(clock);
                let outcome = bank.issue(cmd, row, when, &t);
                prop_assert!(outcome.is_ok(), "{cmd} offered at {at} but rejected: {outcome:?}");
                let out = outcome.unwrap();
                prop_assert!(out.done_at >= when, "completion precedes issue");
                if let Some((start, end)) = out.bus_occupancy {
                    prop_assert!(start >= when && end > start);
                }
                clock = when;
            }
        }
    }

    /// Rank-level scheduling with the same contract, including
    /// tRRD/tFAW interactions across banks.
    #[test]
    fn rank_offers_are_always_honoured(cmds in proptest::collection::vec((arbitrary_command(), 0usize..16), 1..60)) {
        let t = timing();
        let mut rank = Rank::new();
        let mut clock = 0u64;
        for ((cmd, row), bank) in cmds {
            if cmd == Command::Refresh && !rank.all_banks_idle() {
                continue;
            }
            if let Some(at) = rank.earliest_issue(cmd, bank, row) {
                let when = at.max(clock);
                let outcome = rank.issue(cmd, bank, row, when, &t);
                prop_assert!(outcome.is_ok(), "{cmd} to bank {bank} offered at {at}: {outcome:?}");
                clock = when;
            }
        }
        // Counters stay consistent.
        prop_assert!(rank.row_hits() <= rank.reads() + rank.writes());
    }

    /// The channel frequency protocol: any sequence of up/down
    /// requests leaves the channel in a well-defined state, every
    /// transition costs exactly 1 µs, and transition counting is
    /// consistent.
    #[test]
    fn channel_frequency_protocol_is_sound(ups in proptest::collection::vec(any::<bool>(), 1..40)) {
        let mut channel = Channel::new(ChannelConfig::paper_default());
        let mut now = 0u64;
        let mut expected_transitions = 0u64;
        for want_fast in ups {
            let state = channel.state_at(now);
            let result = if want_fast {
                channel.begin_speed_up(now)
            } else {
                channel.begin_slow_down(now)
            };
            match (state, want_fast) {
                (FrequencyState::Safe, true) | (FrequencyState::UnsafelyFast, false) => {
                    let until = result.expect("legal transition");
                    prop_assert_eq!(until, now + FREQUENCY_TRANSITION_PS);
                    now = until;
                    expected_transitions += 1;
                }
                _ => {
                    prop_assert!(result.is_err(), "redundant transition must be rejected");
                    now += 10;
                }
            }
        }
        let _ = channel.state_at(now);
        prop_assert_eq!(channel.transitions(), expected_transitions);
    }

    /// Self-refresh accounting: total time only grows, and equals the
    /// sum of the entered intervals.
    #[test]
    fn self_refresh_time_accounting(intervals in proptest::collection::vec((1u64..1_000_000, 1u64..1_000_000), 1..20)) {
        let t = timing();
        let mut module = Module::new(ModuleId(0), ModuleOrganization::ddr4_3200_9cpr_dual_rank());
        let mut now = 0u64;
        let mut expected = 0u64;
        for (inside, outside) in intervals {
            module.enter_self_refresh(now).unwrap();
            now += inside;
            module.exit_self_refresh(now, &t).unwrap();
            expected += inside;
            prop_assert_eq!(module.self_refresh_time(), expected);
            now += outside;
        }
    }
}
