//! The DDR command vocabulary used by the bank/rank state machines.

use std::fmt;

/// A DDR4 command as issued by the memory controller.
///
/// Only the commands the simulator schedules are modelled; mode
/// register writes and ZQ calibration are folded into the channel
/// frequency-transition cost (Figures 9–10 of the paper) rather than
/// issued individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Open a row in a bank.
    Activate,
    /// Column read (burst of 8).
    Read,
    /// Column read with auto-precharge.
    ReadAp,
    /// Column write (burst of 8).
    Write,
    /// Column write with auto-precharge.
    WriteAp,
    /// Close the open row of a bank.
    Precharge,
    /// Refresh (all banks).
    Refresh,
    /// Enter self-refresh; the device refreshes itself from its
    /// internal clock and ignores the external bus.
    SelfRefreshEnter,
    /// Exit self-refresh.
    SelfRefreshExit,
}

impl Command {
    /// Whether this command transfers data on the bus.
    pub fn transfers_data(self) -> bool {
        matches!(
            self,
            Command::Read | Command::ReadAp | Command::Write | Command::WriteAp
        )
    }

    /// Whether this is a column-read command.
    pub fn is_read(self) -> bool {
        matches!(self, Command::Read | Command::ReadAp)
    }

    /// Whether this is a column-write command.
    pub fn is_write(self) -> bool {
        matches!(self, Command::Write | Command::WriteAp)
    }

    /// Whether the command auto-precharges its bank after the burst.
    pub fn auto_precharges(self) -> bool {
        matches!(self, Command::ReadAp | Command::WriteAp)
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Command::Activate => "ACT",
            Command::Read => "RD",
            Command::ReadAp => "RDA",
            Command::Write => "WR",
            Command::WriteAp => "WRA",
            Command::Precharge => "PRE",
            Command::Refresh => "REF",
            Command::SelfRefreshEnter => "SRE",
            Command::SelfRefreshExit => "SRX",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_transfer_classification() {
        assert!(Command::Read.transfers_data());
        assert!(Command::WriteAp.transfers_data());
        assert!(!Command::Activate.transfers_data());
        assert!(!Command::Refresh.transfers_data());
    }

    #[test]
    fn read_write_partition() {
        for cmd in [
            Command::Activate,
            Command::Read,
            Command::ReadAp,
            Command::Write,
            Command::WriteAp,
            Command::Precharge,
            Command::Refresh,
            Command::SelfRefreshEnter,
            Command::SelfRefreshExit,
        ] {
            // A command is never both a read and a write.
            assert!(!(cmd.is_read() && cmd.is_write()), "{cmd}");
            // Only data-transferring commands are reads or writes.
            assert_eq!(cmd.transfers_data(), cmd.is_read() || cmd.is_write());
        }
    }

    #[test]
    fn auto_precharge_variants() {
        assert!(Command::ReadAp.auto_precharges());
        assert!(Command::WriteAp.auto_precharges());
        assert!(!Command::Read.auto_precharges());
        assert!(!Command::Write.auto_precharges());
    }

    #[test]
    fn display_is_mnemonic() {
        assert_eq!(Command::Activate.to_string(), "ACT");
        assert_eq!(Command::SelfRefreshEnter.to_string(), "SRE");
    }
}
