//! A memory channel with runtime frequency scaling and broadcast
//! writes.
//!
//! The channel is where the paper's two key hardware mechanisms live:
//!
//! * **Frequency transitions** (Figures 9 and 10): scaling the
//!   channel's CK_c/CK_t clock up or down takes ~1 µs end-to-end
//!   (precharge, change clock, re-synchronize / DLL relock). The
//!   channel models this as an opaque, exclusive transition window
//!   during which no commands may issue.
//! * **Broadcast writes** (Section III-A, reusing FMR's design): the
//!   bus interconnection topology lets a single write transaction carry
//!   identical command, address, and data to multiple ranks, so the
//!   copy at the same location `i` of a Free Module is updated for free.

use crate::command::Command;
use crate::error::DramError;
use crate::module::{Module, ModuleId};
use crate::organization::ModuleOrganization;
use crate::timing::TimingParams;
use crate::{Picos, PS_PER_US};

/// End-to-end cost of one channel frequency transition (the paper's
/// measured ~1 µs, Section III-A1).
pub const FREQUENCY_TRANSITION_PS: Picos = PS_PER_US;

/// The channel's clock state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrequencyState {
    /// Operating at manufacturer specification (safe for every module).
    Safe,
    /// Mid-transition from safe to fast; completes at the given time.
    SpeedingUp {
        /// When the transition completes.
        until: Picos,
    },
    /// Operating beyond specification (only Free Modules are accessed).
    UnsafelyFast,
    /// Mid-transition from fast to safe; completes at the given time.
    SlowingDown {
        /// When the transition completes.
        until: Picos,
    },
}

/// Static configuration of a channel.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// Organization of every module in the channel (the paper populates
    /// channels homogeneously: 2 modules/channel, 2 ranks/module).
    pub organization: ModuleOrganization,
    /// Number of module slots.
    pub modules: usize,
    /// Timing used in the safe state.
    pub safe_timing: TimingParams,
    /// Timing used in the unsafely fast state.
    pub fast_timing: TimingParams,
}

impl ChannelConfig {
    /// The paper's performance-experiment channel: two dual-rank
    /// 9-chips/rank 3200 MT/s modules, safe at Table II row 1 and fast
    /// at Table II row 4 (4000 MT/s + latency margins).
    pub fn paper_default() -> ChannelConfig {
        ChannelConfig {
            organization: ModuleOrganization::ddr4_3200_9cpr_dual_rank(),
            modules: 2,
            safe_timing: crate::timing::MemorySetting::Specified.timing(),
            fast_timing: crate::timing::MemorySetting::FreqLatMargin.timing(),
        }
    }
}

/// A memory channel: module slots sharing one command/data bus and one
/// clock, with the Hetero-DMR frequency-scaling protocol.
#[derive(Debug, Clone)]
pub struct Channel {
    config: ChannelConfig,
    modules: Vec<Module>,
    state: FrequencyState,
    /// Number of completed frequency transitions (both directions).
    transitions: u64,
    /// Number of broadcast write transactions.
    broadcast_writes: u64,
}

impl Channel {
    /// Creates a channel in the safe state with all slots populated.
    pub fn new(config: ChannelConfig) -> Channel {
        let modules = (0..config.modules)
            .map(|i| Module::new(ModuleId(i), config.organization))
            .collect();
        Channel {
            config,
            modules,
            state: FrequencyState::Safe,
            transitions: 0,
            broadcast_writes: 0,
        }
    }

    /// The channel's static configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Number of populated module slots.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Immutable module access.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] for an invalid slot.
    pub fn module(&self, id: ModuleId) -> Result<&Module, DramError> {
        self.modules.get(id.0).ok_or(DramError::AddressOutOfRange {
            component: "module",
            index: id.0,
            count: self.modules.len(),
        })
    }

    /// Mutable module access.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] for an invalid slot.
    pub fn module_mut(&mut self, id: ModuleId) -> Result<&mut Module, DramError> {
        let count = self.modules.len();
        self.modules
            .get_mut(id.0)
            .ok_or(DramError::AddressOutOfRange {
                component: "module",
                index: id.0,
                count,
            })
    }

    /// Completed frequency transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Broadcast write transactions issued so far.
    pub fn broadcast_writes(&self) -> u64 {
        self.broadcast_writes
    }

    /// The clock state as of `now`, resolving any transition that has
    /// already completed.
    pub fn state_at(&mut self, now: Picos) -> FrequencyState {
        match self.state {
            FrequencyState::SpeedingUp { until } if now >= until => {
                self.finish_transition(FrequencyState::UnsafelyFast, until);
            }
            FrequencyState::SlowingDown { until } if now >= until => {
                self.finish_transition(FrequencyState::Safe, until);
            }
            _ => {}
        }
        self.state
    }

    /// The timing parameters in force at `now`.
    ///
    /// During a transition the channel is unusable; this returns the
    /// *destination* timing so callers can plan the next command, but
    /// [`Channel::usable_at`] gates actual issue.
    pub fn timing_at(&mut self, now: Picos) -> TimingParams {
        match self.state_at(now) {
            FrequencyState::Safe | FrequencyState::SlowingDown { .. } => self.config.safe_timing,
            FrequencyState::UnsafelyFast | FrequencyState::SpeedingUp { .. } => {
                self.config.fast_timing
            }
        }
    }

    /// Earliest time commands may issue, given any in-flight transition.
    pub fn usable_at(&mut self, now: Picos) -> Picos {
        match self.state_at(now) {
            FrequencyState::Safe | FrequencyState::UnsafelyFast => now,
            FrequencyState::SpeedingUp { until } | FrequencyState::SlowingDown { until } => until,
        }
    }

    /// Begins the safe→fast transition of Figure 10: precharge all
    /// non-self-refresh modules, raise the clock, re-synchronize.
    /// Returns the completion time (`now + 1 µs`).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::TransitionInProgress`] if a transition is
    /// already under way, and [`DramError::StateViolation`] if already
    /// fast.
    pub fn begin_speed_up(&mut self, now: Picos) -> Result<Picos, DramError> {
        match self.state_at(now) {
            FrequencyState::Safe => {
                let timing = self.config.safe_timing;
                for module in &mut self.modules {
                    if !module.in_self_refresh() {
                        module.precharge_all(now, &timing);
                    }
                }
                let until = now + FREQUENCY_TRANSITION_PS;
                self.state = FrequencyState::SpeedingUp { until };
                Ok(until)
            }
            FrequencyState::UnsafelyFast => Err(DramError::StateViolation {
                command: Command::SelfRefreshEnter,
                reason: "channel is already unsafely fast",
            }),
            _ => Err(DramError::TransitionInProgress),
        }
    }

    /// Begins the fast→safe transition of Figure 9. Returns the
    /// completion time (`now + 1 µs`).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::TransitionInProgress`] if a transition is
    /// already under way, and [`DramError::StateViolation`] if already
    /// safe.
    pub fn begin_slow_down(&mut self, now: Picos) -> Result<Picos, DramError> {
        match self.state_at(now) {
            FrequencyState::UnsafelyFast => {
                let timing = self.config.fast_timing;
                for module in &mut self.modules {
                    if !module.in_self_refresh() {
                        module.precharge_all(now, &timing);
                    }
                }
                let until = now + FREQUENCY_TRANSITION_PS;
                self.state = FrequencyState::SlowingDown { until };
                Ok(until)
            }
            FrequencyState::Safe => Err(DramError::StateViolation {
                command: Command::SelfRefreshExit,
                reason: "channel is already safe",
            }),
            _ => Err(DramError::TransitionInProgress),
        }
    }

    /// Issues a write broadcast to the same `(rank, bank, row)` of
    /// several modules in **one** bus transaction — the FMR mechanism
    /// Hetero-DMR reuses to update copies with zero write-bandwidth
    /// overhead. All targets receive identical address and data fields.
    ///
    /// # Errors
    ///
    /// Fails if the channel is mid-transition, any target is in
    /// self-refresh, or any target rejects the write.
    pub fn broadcast_write(
        &mut self,
        targets: &[ModuleId],
        rank: usize,
        bank: usize,
        row: u64,
        now: Picos,
    ) -> Result<crate::bank::CommandOutcome, DramError> {
        let usable = self.usable_at(now);
        if now < usable {
            return Err(DramError::TimingViolation {
                command: Command::Write,
                issued_at: now,
                allowed_at: usable,
            });
        }
        let timing = self.timing_at(now);
        let mut outcome = None;
        for &id in targets {
            let module = self.module_mut(id)?;
            let out = module.issue(Command::Write, rank, bank, row, now, &timing)?;
            outcome = Some(out);
        }
        self.broadcast_writes += 1;
        outcome.ok_or(DramError::StateViolation {
            command: Command::Write,
            reason: "broadcast write needs at least one target",
        })
    }

    fn finish_transition(&mut self, new_state: FrequencyState, at: Picos) {
        self.state = new_state;
        self.transitions += 1;
        for module in &mut self.modules {
            if !module.in_self_refresh() {
                module.reset_after_transition(at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> Channel {
        Channel::new(ChannelConfig::paper_default())
    }

    #[test]
    fn starts_safe_with_two_modules() {
        let mut ch = channel();
        assert_eq!(ch.module_count(), 2);
        assert_eq!(ch.state_at(0), FrequencyState::Safe);
        assert_eq!(ch.timing_at(0).data_rate.mts(), 3200);
    }

    #[test]
    fn speed_up_takes_one_microsecond() {
        let mut ch = channel();
        let until = ch.begin_speed_up(1_000).unwrap();
        assert_eq!(until, 1_000 + FREQUENCY_TRANSITION_PS);
        assert!(matches!(
            ch.state_at(until - 1),
            FrequencyState::SpeedingUp { .. }
        ));
        assert_eq!(ch.state_at(until), FrequencyState::UnsafelyFast);
        assert_eq!(ch.timing_at(until).data_rate.mts(), 4000);
        assert_eq!(ch.transitions(), 1);
    }

    #[test]
    fn round_trip_costs_two_transitions() {
        let mut ch = channel();
        let up = ch.begin_speed_up(0).unwrap();
        let down = ch.begin_slow_down(up).unwrap();
        assert_eq!(ch.state_at(down), FrequencyState::Safe);
        assert_eq!(ch.transitions(), 2);
        assert_eq!(down, 2 * FREQUENCY_TRANSITION_PS);
    }

    #[test]
    fn transition_while_transitioning_rejected() {
        let mut ch = channel();
        ch.begin_speed_up(0).unwrap();
        assert_eq!(
            ch.begin_slow_down(10).unwrap_err(),
            DramError::TransitionInProgress
        );
        assert_eq!(
            ch.begin_speed_up(10).unwrap_err(),
            DramError::TransitionInProgress
        );
    }

    #[test]
    fn redundant_transitions_rejected() {
        let mut ch = channel();
        assert!(ch.begin_slow_down(0).is_err());
        let up = ch.begin_speed_up(0).unwrap();
        assert!(ch.begin_speed_up(up).is_err());
    }

    #[test]
    fn channel_unusable_during_transition() {
        let mut ch = channel();
        let until = ch.begin_speed_up(0).unwrap();
        assert_eq!(ch.usable_at(500), until);
        assert_eq!(ch.usable_at(until + 7), until + 7);
    }

    #[test]
    fn broadcast_write_updates_all_targets_in_one_transaction() {
        let mut ch = channel();
        let timing = ch.timing_at(0);
        // Open row 3 on bank 0 of rank 0 in both modules.
        for id in [ModuleId(0), ModuleId(1)] {
            ch.module_mut(id)
                .unwrap()
                .issue(Command::Activate, 0, 0, 3, 0, &timing)
                .unwrap();
        }
        let now = timing.t_rcd_ps();
        ch.broadcast_write(&[ModuleId(0), ModuleId(1)], 0, 0, 3, now)
            .unwrap();
        assert_eq!(ch.broadcast_writes(), 1);
        // Both modules saw exactly one write — same address, one bus
        // transaction.
        assert_eq!(ch.module(ModuleId(0)).unwrap().writes(), 1);
        assert_eq!(ch.module(ModuleId(1)).unwrap().writes(), 1);
    }

    #[test]
    fn broadcast_write_blocked_mid_transition() {
        let mut ch = channel();
        ch.begin_speed_up(0).unwrap();
        let err = ch
            .broadcast_write(&[ModuleId(0)], 0, 0, 0, 500)
            .unwrap_err();
        assert!(matches!(err, DramError::TimingViolation { .. }));
    }

    #[test]
    fn self_refresh_module_survives_transition_untouched() {
        let mut ch = channel();
        // Put module 0 (originals) in self-refresh, then speed up.
        ch.module_mut(ModuleId(0))
            .unwrap()
            .enter_self_refresh(0)
            .unwrap();
        let up = ch.begin_speed_up(10).unwrap();
        assert_eq!(ch.state_at(up), FrequencyState::UnsafelyFast);
        assert!(ch.module(ModuleId(0)).unwrap().in_self_refresh());
        // The self-refreshed module still rejects bus commands.
        let timing = ch.timing_at(up);
        let err = ch
            .module_mut(ModuleId(0))
            .unwrap()
            .issue(Command::Activate, 0, 0, 0, up, &timing)
            .unwrap_err();
        assert!(matches!(err, DramError::StateViolation { .. }));
    }
}
