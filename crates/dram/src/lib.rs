//! DDR4 device-level substrate for the Hetero-DMR reproduction.
//!
//! This crate models the pieces of a DDR4 memory system that the paper's
//! architecture manipulates directly:
//!
//! * [`rate`] — data rates in MT/s and the derived clock period,
//! * [`timing`] — JEDEC-style timing parameter sets, including the four
//!   memory settings of Table II of the paper,
//! * [`command`] — the DDR command vocabulary,
//! * [`bank`] — per-bank state machines with timing-legality tracking,
//! * [`rank`] — rank-level constraints (tRRD/tFAW) and activity counters,
//! * [`organization`] — physical module organization (chips/rank, ranks,
//!   density, ECC chips),
//! * [`module`] — a DIMM with self-refresh state,
//! * [`channel`] — a memory channel with the runtime frequency-scaling
//!   protocol of Figures 9 and 10 of the paper and broadcast writes,
//! * [`power`] — activity counters consumed by the `energy` crate.
//!
//! All times are integer **picoseconds** ([`Picos`]) so that frequency
//! changes at runtime never lose precision.
//!
//! # Example
//!
//! ```
//! use dram::rate::DataRate;
//! use dram::timing::MemorySetting;
//!
//! let spec = MemorySetting::Specified.timing();
//! assert_eq!(spec.data_rate, DataRate::MT3200);
//! // At 3200 MT/s the clock period is 625 ps.
//! assert_eq!(spec.data_rate.clock_period_ps(), 625);
//! ```

pub mod bank;
pub mod channel;
pub mod command;
pub mod error;
pub mod module;
pub mod organization;
pub mod power;
pub mod rank;
pub mod rate;
pub mod timing;

pub use bank::{Bank, BankState};
pub use channel::{Channel, ChannelConfig, FrequencyState};
pub use command::Command;
pub use error::DramError;
pub use module::{Module, ModuleId};
pub use organization::ModuleOrganization;
pub use power::ActivityCounters;
pub use rate::DataRate;
pub use timing::{MemorySetting, TimingParams};

/// Simulation time in integer picoseconds.
///
/// Picoseconds are fine enough that every DDR4 clock period between
/// 1600 MT/s and 6400 MT/s is an exact integer, so frequency scaling
/// under Hetero-DMR never accumulates rounding error.
pub type Picos = u64;

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;

/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;

/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;

/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// Convert nanoseconds (possibly fractional) to integer picoseconds,
/// rounding to the nearest picosecond.
///
/// ```
/// assert_eq!(dram::ns_to_ps(13.75), 13_750);
/// ```
pub fn ns_to_ps(ns: f64) -> Picos {
    (ns * PS_PER_NS as f64).round() as Picos
}

/// Convert integer picoseconds to fractional nanoseconds.
///
/// ```
/// assert_eq!(dram::ps_to_ns(13_750), 13.75);
/// ```
pub fn ps_to_ns(ps: Picos) -> f64 {
    ps as f64 / PS_PER_NS as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_ps_round_trip() {
        for ns in [0.0, 1.0, 13.75, 32.5, 7800.0] {
            assert!((ps_to_ns(ns_to_ps(ns)) - ns).abs() < 1e-9);
        }
    }

    #[test]
    fn unit_constants_consistent() {
        assert_eq!(PS_PER_US, 1_000 * PS_PER_NS);
        assert_eq!(PS_PER_MS, 1_000 * PS_PER_US);
        assert_eq!(PS_PER_S, 1_000 * PS_PER_MS);
    }
}
