//! JEDEC-style timing parameters and the paper's Table II settings.
//!
//! Timing parameters are stored in nanoseconds (the unit manufacturers
//! specify them in) and converted to clock cycles at a given
//! [`DataRate`] on demand. This mirrors how exploiting *frequency*
//! margin works physically: the analog latencies of the DRAM array do
//! not change when the interface clock is raised, so a setting that
//! raises the data rate keeps the same nanosecond latencies and simply
//! needs more cycles to cover them, while the burst transfer itself
//! gets proportionally faster.

use crate::rate::DataRate;
use crate::{ns_to_ps, Picos, PS_PER_US};

/// DRAM timing parameters in nanoseconds (and tREFI in microseconds).
///
/// The four parameters the paper characterizes latency margin for are
/// `t_rcd_ns`, `t_rp_ns`, `t_ras_ns`, and `t_refi_us`; the remainder
/// are fixed DDR4-3200 RDIMM values needed for a faithful bank-level
/// timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Data rate this parameter set runs the interface at.
    pub data_rate: DataRate,
    /// ACT to internal read/write delay (row to column delay).
    pub t_rcd_ns: f64,
    /// PRE to ACT delay (row precharge time).
    pub t_rp_ns: f64,
    /// ACT to PRE minimum (row active time).
    pub t_ras_ns: f64,
    /// Average refresh interval, in microseconds.
    pub t_refi_us: f64,
    /// CAS read latency.
    pub t_cas_ns: f64,
    /// CAS write latency.
    pub t_cwl_ns: f64,
    /// Read to PRE delay.
    pub t_rtp_ns: f64,
    /// Write recovery time (end of write burst to PRE).
    pub t_wr_ns: f64,
    /// Write-to-read turnaround, same rank.
    pub t_wtr_ns: f64,
    /// ACT to ACT delay, different banks in the same bank group pair.
    pub t_rrd_ns: f64,
    /// Four-activate window.
    pub t_faw_ns: f64,
    /// Refresh cycle time (8 Gb device).
    pub t_rfc_ns: f64,
    /// Self-refresh exit to first valid command.
    pub t_xs_ns: f64,
}

impl TimingParams {
    /// Manufacturer-specified DDR4-3200 RDIMM timings (Table II row 1).
    pub fn ddr4_3200_spec() -> TimingParams {
        TimingParams {
            data_rate: DataRate::MT3200,
            t_rcd_ns: 13.75,
            t_rp_ns: 13.75,
            t_ras_ns: 32.5,
            t_refi_us: 7.8,
            t_cas_ns: 13.75,
            t_cwl_ns: 10.0,
            t_rtp_ns: 7.5,
            t_wr_ns: 15.0,
            t_wtr_ns: 7.5,
            t_rrd_ns: 4.9,
            t_faw_ns: 21.0,
            t_rfc_ns: 350.0,
            t_xs_ns: 360.0,
        }
    }

    /// Manufacturer-specified DDR4-2400 RDIMM timings (the other
    /// specified rate in the paper's module population).
    pub fn ddr4_2400_spec() -> TimingParams {
        TimingParams {
            data_rate: DataRate::MT2400,
            t_rcd_ns: 13.32,
            t_rp_ns: 13.32,
            t_ras_ns: 32.0,
            ..TimingParams::ddr4_3200_spec()
        }
    }

    /// DDR5-4800 timings (Section III-F's outlook: DDR5 stipulates the
    /// same eye width at every rate, so the paper expects similar
    /// *fractional* frequency margins to DDR4).
    pub fn ddr5_4800_spec() -> TimingParams {
        TimingParams {
            data_rate: DataRate::MT4800,
            t_rcd_ns: 16.0,
            t_rp_ns: 16.0,
            t_ras_ns: 32.0,
            t_refi_us: 3.9,
            t_cas_ns: 16.7,
            t_cwl_ns: 14.2,
            t_rtp_ns: 7.5,
            t_wr_ns: 30.0,
            t_wtr_ns: 10.0,
            t_rrd_ns: 5.0,
            t_faw_ns: 13.3,
            t_rfc_ns: 295.0,
            t_xs_ns: 305.0,
        }
    }

    /// DDR5-6400 timings: mid-generation DDR5 keeps the entry
    /// generation's analog (row) latencies while binning a faster CAS
    /// path onto a faster interface.
    pub fn ddr5_6400_spec() -> TimingParams {
        TimingParams {
            data_rate: DataRate::MT6400,
            t_cas_ns: 15.0,
            t_cwl_ns: 13.0,
            ..TimingParams::ddr5_4800_spec()
        }
    }

    /// MRDIMM-8800 timings: a multiplexed-rank DIMM runs each physical
    /// rank at DDR5-4400 internally while the mux buffer interleaves
    /// two pseudo-channels onto an 8800 MT/s host interface. The
    /// buffer's mux/demux hop adds ~2 ns to the CAS path; array (row)
    /// timings stay DDR5.
    pub fn mrdimm_8800_spec() -> TimingParams {
        TimingParams {
            data_rate: DataRate::MT8800,
            t_cas_ns: 18.0,
            t_cwl_ns: 16.0,
            ..TimingParams::ddr5_4800_spec()
        }
    }

    /// Returns a copy with a different interface data rate, leaving all
    /// analog (nanosecond) latencies unchanged — i.e. exploiting
    /// *frequency* margin only.
    pub fn at_rate(mut self, rate: DataRate) -> TimingParams {
        self.data_rate = rate;
        self
    }

    /// Returns a copy with the conservative latency-margin combination
    /// the paper measured across all 119 modules:
    /// ⟨tRCD 16 %, tRP 16 %, tRAS 9 %, tREFI 92 %⟩, i.e. the Table II
    /// "Setting to Exploit Latency Margin" values.
    pub fn with_latency_margin(mut self) -> TimingParams {
        self.t_rcd_ns = 11.5;
        self.t_rp_ns = 11.0;
        self.t_ras_ns = 29.5;
        self.t_refi_us = 15.0;
        self
    }

    /// Converts a parameter given in nanoseconds to whole clock cycles
    /// at this set's data rate (ceiling, as a real controller must).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        self.data_rate.cycles_for_ps(ns_to_ps(ns))
    }

    /// tRCD in picoseconds as the controller enforces it (rounded up to
    /// whole cycles).
    pub fn t_rcd_ps(&self) -> Picos {
        self.enforced_ps(self.t_rcd_ns)
    }

    /// tRP in picoseconds, cycle-quantized.
    pub fn t_rp_ps(&self) -> Picos {
        self.enforced_ps(self.t_rp_ns)
    }

    /// tRAS in picoseconds, cycle-quantized.
    pub fn t_ras_ps(&self) -> Picos {
        self.enforced_ps(self.t_ras_ns)
    }

    /// CAS (read) latency in picoseconds, cycle-quantized.
    pub fn t_cas_ps(&self) -> Picos {
        self.enforced_ps(self.t_cas_ns)
    }

    /// CAS write latency in picoseconds, cycle-quantized.
    pub fn t_cwl_ps(&self) -> Picos {
        self.enforced_ps(self.t_cwl_ns)
    }

    /// Read-to-precharge in picoseconds, cycle-quantized.
    pub fn t_rtp_ps(&self) -> Picos {
        self.enforced_ps(self.t_rtp_ns)
    }

    /// Write recovery in picoseconds, cycle-quantized.
    pub fn t_wr_ps(&self) -> Picos {
        self.enforced_ps(self.t_wr_ns)
    }

    /// Write-to-read turnaround in picoseconds, cycle-quantized.
    pub fn t_wtr_ps(&self) -> Picos {
        self.enforced_ps(self.t_wtr_ns)
    }

    /// ACT-to-ACT (same bank group) in picoseconds, cycle-quantized.
    pub fn t_rrd_ps(&self) -> Picos {
        self.enforced_ps(self.t_rrd_ns)
    }

    /// Four-activate window in picoseconds, cycle-quantized.
    pub fn t_faw_ps(&self) -> Picos {
        self.enforced_ps(self.t_faw_ns)
    }

    /// Refresh cycle time in picoseconds, cycle-quantized.
    pub fn t_rfc_ps(&self) -> Picos {
        self.enforced_ps(self.t_rfc_ns)
    }

    /// Average refresh interval in picoseconds.
    pub fn t_refi_ps(&self) -> Picos {
        (self.t_refi_us * PS_PER_US as f64).round() as Picos
    }

    /// Self-refresh exit latency in picoseconds, cycle-quantized.
    pub fn t_xs_ps(&self) -> Picos {
        self.enforced_ps(self.t_xs_ns)
    }

    /// Data burst duration for one 64-byte block.
    pub fn burst_ps(&self) -> Picos {
        self.data_rate.burst_time_ps()
    }

    /// Random-access read latency (closed page): tRP + tRCD + CL + burst.
    pub fn closed_page_read_ps(&self) -> Picos {
        self.t_rp_ps() + self.t_rcd_ps() + self.t_cas_ps() + self.burst_ps()
    }

    /// Row-buffer-hit read latency: CL + burst.
    pub fn open_page_read_ps(&self) -> Picos {
        self.t_cas_ps() + self.burst_ps()
    }

    fn enforced_ps(&self, ns: f64) -> Picos {
        self.ns_to_cycles(ns) * self.data_rate.clock_period_ps()
    }
}

/// The four memory settings of Table II of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySetting {
    /// 3200 MT/s with manufacturer-specified latencies.
    Specified,
    /// 3200 MT/s with the conservative latency-margin combination.
    LatencyMargin,
    /// 4000 MT/s with manufacturer-specified latencies.
    FrequencyMargin,
    /// 4000 MT/s with the latency-margin combination (the setting
    /// Hetero-DMR uses during read mode).
    FreqLatMargin,
}

impl MemorySetting {
    /// All four settings in Table II order.
    pub const ALL: [MemorySetting; 4] = [
        MemorySetting::Specified,
        MemorySetting::LatencyMargin,
        MemorySetting::FrequencyMargin,
        MemorySetting::FreqLatMargin,
    ];

    /// The timing parameter set for this Table II row.
    pub fn timing(self) -> TimingParams {
        let spec = TimingParams::ddr4_3200_spec();
        match self {
            MemorySetting::Specified => spec,
            MemorySetting::LatencyMargin => spec.with_latency_margin(),
            MemorySetting::FrequencyMargin => spec.at_rate(DataRate::MT4000),
            MemorySetting::FreqLatMargin => spec.with_latency_margin().at_rate(DataRate::MT4000),
        }
    }

    /// Human-readable name matching Table II.
    pub fn name(self) -> &'static str {
        match self {
            MemorySetting::Specified => "Manufacturer-specified Setting",
            MemorySetting::LatencyMargin => "Setting to Exploit Latency Margin",
            MemorySetting::FrequencyMargin => "Setting to Exploit Frequency Margin",
            MemorySetting::FreqLatMargin => "Setting to Exploit Freq+Lat Margins",
        }
    }
}

impl std::fmt::Display for MemorySetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let spec = MemorySetting::Specified.timing();
        assert_eq!(spec.data_rate.mts(), 3200);
        assert_eq!(spec.t_rcd_ns, 13.75);
        assert_eq!(spec.t_rp_ns, 13.75);
        assert_eq!(spec.t_ras_ns, 32.5);
        assert_eq!(spec.t_refi_us, 7.8);

        let lat = MemorySetting::LatencyMargin.timing();
        assert_eq!(lat.data_rate.mts(), 3200);
        assert_eq!(lat.t_rcd_ns, 11.5);
        assert_eq!(lat.t_rp_ns, 11.0);
        assert_eq!(lat.t_ras_ns, 29.5);
        assert_eq!(lat.t_refi_us, 15.0);

        let freq = MemorySetting::FrequencyMargin.timing();
        assert_eq!(freq.data_rate.mts(), 4000);
        assert_eq!(freq.t_rcd_ns, 13.75);

        let both = MemorySetting::FreqLatMargin.timing();
        assert_eq!(both.data_rate.mts(), 4000);
        assert_eq!(both.t_rcd_ns, 11.5);
        assert_eq!(both.t_refi_us, 15.0);
    }

    #[test]
    fn cycle_quantization_rounds_up() {
        let spec = TimingParams::ddr4_3200_spec();
        // 13.75 ns at 625 ps/cycle = 22 cycles exactly.
        assert_eq!(spec.ns_to_cycles(13.75), 22);
        // 13.76 ns must round up to 23 cycles.
        assert_eq!(spec.ns_to_cycles(13.76), 23);
        assert_eq!(spec.t_rcd_ps(), 22 * 625);
    }

    #[test]
    fn frequency_margin_keeps_ns_latencies() {
        let spec = MemorySetting::Specified.timing();
        let freq = MemorySetting::FrequencyMargin.timing();
        // Same analog latency...
        assert_eq!(spec.t_rcd_ns, freq.t_rcd_ns);
        // ...but a faster burst.
        assert!(freq.burst_ps() < spec.burst_ps());
        // Enforced tRCD differs by at most one (shorter) clock period
        // due to cycle quantization.
        let diff = spec.t_rcd_ps().abs_diff(freq.t_rcd_ps());
        assert!(diff <= spec.data_rate.clock_period_ps());
    }

    #[test]
    fn open_page_faster_than_closed_page() {
        for setting in MemorySetting::ALL {
            let t = setting.timing();
            assert!(t.open_page_read_ps() < t.closed_page_read_ps());
        }
    }

    #[test]
    fn freq_lat_margin_is_fastest_setting() {
        let tightest = MemorySetting::FreqLatMargin.timing();
        for setting in [
            MemorySetting::Specified,
            MemorySetting::LatencyMargin,
            MemorySetting::FrequencyMargin,
        ] {
            let t = setting.timing();
            assert!(tightest.closed_page_read_ps() <= t.closed_page_read_ps());
        }
    }

    #[test]
    fn ddr5_preset_is_coherent() {
        let t = TimingParams::ddr5_4800_spec();
        assert_eq!(t.data_rate.mts(), 4800);
        // Faster interface: a 64-byte transfer takes less wall time
        // than on DDR4-3200 despite higher CAS.
        let ddr4 = TimingParams::ddr4_3200_spec();
        assert!(t.burst_ps() < ddr4.burst_ps());
        assert!(t.closed_page_read_ps() > 0);
        // Exploiting the outlook margin (same fraction as DDR4's ~25%)
        // composes with the preset.
        let fast = t.at_rate(DataRate::MT6400);
        assert!(fast.burst_ps() < t.burst_ps());
    }

    #[test]
    fn generation_presets_scale_burst_time_with_rate() {
        let g: [TimingParams; 4] = [
            TimingParams::ddr4_3200_spec(),
            TimingParams::ddr5_4800_spec(),
            TimingParams::ddr5_6400_spec(),
            TimingParams::mrdimm_8800_spec(),
        ];
        for pair in g.windows(2) {
            assert!(pair[1].data_rate.mts() > pair[0].data_rate.mts());
            assert!(pair[1].burst_ps() < pair[0].burst_ps());
        }
        // MRDIMM pays the mux-buffer hop on the CAS path.
        assert!(
            TimingParams::mrdimm_8800_spec().t_cas_ns > TimingParams::ddr5_6400_spec().t_cas_ns
        );
    }

    #[test]
    fn refresh_interval_doubles_under_latency_margin() {
        let spec = MemorySetting::Specified.timing();
        let lat = MemorySetting::LatencyMargin.timing();
        // tREFI margin of 92% means nearly double the refresh interval,
        // i.e. about half the refresh overhead.
        assert!(lat.t_refi_ps() > spec.t_refi_ps() * 19 / 10);
    }
}

impl TimingParams {
    /// Checks internal coherence of a timing set: the constraints a
    /// JEDEC-legal device must satisfy among its own parameters.
    /// Returns the violated rule names (empty = coherent).
    pub fn validate(&self) -> Vec<&'static str> {
        let mut violations = Vec::new();
        if self.t_ras_ns < self.t_rcd_ns {
            violations.push("tRAS must cover at least tRCD (a row must be open to read it)");
        }
        if self.t_rc_ns() < self.t_ras_ns {
            violations.push("tRC = tRAS + tRP must exceed tRAS");
        }
        if self.t_refi_us * 1000.0 <= self.t_rfc_ns {
            violations.push("tREFI must exceed tRFC or refresh starves the device");
        }
        if self.t_faw_ns < self.t_rrd_ns {
            violations.push("tFAW cannot be shorter than a single tRRD");
        }
        if self.t_xs_ns < self.t_rfc_ns {
            violations.push("self-refresh exit must cover a refresh cycle");
        }
        for (name, v) in [
            ("tRCD", self.t_rcd_ns),
            ("tRP", self.t_rp_ns),
            ("tRAS", self.t_ras_ns),
            ("tCAS", self.t_cas_ns),
            ("tCWL", self.t_cwl_ns),
        ] {
            if v <= 0.0 {
                violations.push(name);
            }
        }
        violations
    }

    /// Row cycle time: tRAS + tRP.
    pub fn t_rc_ns(&self) -> f64 {
        self.t_ras_ns + self.t_rp_ns
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;

    #[test]
    fn all_shipped_presets_are_coherent() {
        for t in [
            TimingParams::ddr4_3200_spec(),
            TimingParams::ddr4_2400_spec(),
            TimingParams::ddr5_4800_spec(),
            TimingParams::ddr5_6400_spec(),
            TimingParams::mrdimm_8800_spec(),
            TimingParams::ddr4_3200_spec().with_latency_margin(),
            MemorySetting::FreqLatMargin.timing(),
        ] {
            assert!(
                t.validate().is_empty(),
                "{:?}: {:?}",
                t.data_rate,
                t.validate()
            );
        }
    }

    #[test]
    fn broken_sets_are_caught() {
        let mut t = TimingParams::ddr4_3200_spec();
        t.t_ras_ns = 5.0; // < tRCD
        assert!(!t.validate().is_empty());

        let mut t = TimingParams::ddr4_3200_spec();
        t.t_refi_us = 0.0001; // < tRFC
        assert!(!t.validate().is_empty());

        let mut t = TimingParams::ddr4_3200_spec();
        t.t_cas_ns = 0.0;
        assert!(t.validate().contains(&"tCAS"));
    }

    #[test]
    fn row_cycle_time() {
        let t = TimingParams::ddr4_3200_spec();
        assert_eq!(t.t_rc_ns(), 32.5 + 13.75);
    }
}
