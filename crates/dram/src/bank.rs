//! Per-bank state machine with timing-legality tracking.
//!
//! A [`Bank`] accepts DDR commands and enforces the intra-bank timing
//! constraints (tRCD, tRP, tRAS, tRTP, tWR, tRFC). Inter-bank and
//! rank-level constraints (tRRD, tFAW, bus occupancy) are enforced one
//! level up in [`crate::rank::Rank`] and by the memory controller.

use crate::command::Command;
use crate::error::DramError;
use crate::timing::TimingParams;
use crate::Picos;

/// The row-buffer state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed; an ACT is required before column commands.
    Idle,
    /// A row is open in the row buffer.
    Active {
        /// The open row index.
        row: u64,
    },
}

/// The outcome of successfully issuing a command to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandOutcome {
    /// When the command's effect completes. For reads this is when the
    /// last data beat leaves the pins; for writes, when the burst has
    /// been received; for ACT/PRE/REF, when the bank becomes usable.
    pub done_at: Picos,
    /// For data commands, when the data burst occupies the bus
    /// (`start`, `end`); `None` for non-data commands.
    pub bus_occupancy: Option<(Picos, Picos)>,
}

/// A single DRAM bank.
#[derive(Debug, Clone)]
pub struct Bank {
    state: BankState,
    /// Earliest time an ACT may be issued.
    act_allowed_at: Picos,
    /// Earliest time a column RD/WR may be issued.
    rw_allowed_at: Picos,
    /// Earliest time a PRE may be issued.
    pre_allowed_at: Picos,
    /// Statistics: activates issued.
    activates: u64,
    /// Statistics: row-buffer hits (column command to already-open row).
    row_hits: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

impl Bank {
    /// Creates an idle bank with no timing obligations.
    pub fn new() -> Bank {
        Bank {
            state: BankState::Idle,
            act_allowed_at: 0,
            rw_allowed_at: 0,
            pre_allowed_at: 0,
            activates: 0,
            row_hits: 0,
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The row currently open, if any.
    pub fn open_row(&self) -> Option<u64> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Idle => None,
        }
    }

    /// Number of ACT commands this bank has received.
    pub fn activates(&self) -> u64 {
        self.activates
    }

    /// Number of column commands that hit the open row.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Earliest time `cmd` targeting `row` may legally be issued, or
    /// `None` if the command is illegal in the current state regardless
    /// of time (e.g. a read to a different row than the open one —
    /// the controller must precharge first).
    pub fn earliest_issue(&self, cmd: Command, row: u64) -> Option<Picos> {
        match (cmd, self.state) {
            (Command::Activate, BankState::Idle) => Some(self.act_allowed_at),
            (Command::Activate, BankState::Active { .. }) => None,
            (
                Command::Read | Command::ReadAp | Command::Write | Command::WriteAp,
                BankState::Active { row: open },
            ) if open == row => Some(self.rw_allowed_at),
            (Command::Read | Command::ReadAp | Command::Write | Command::WriteAp, _) => None,
            (Command::Precharge, BankState::Active { .. }) => Some(self.pre_allowed_at),
            // PRE to an idle bank is a legal no-op in DDR4.
            (Command::Precharge, BankState::Idle) => Some(0),
            (Command::Refresh, BankState::Idle) => Some(self.act_allowed_at),
            (Command::Refresh, BankState::Active { .. }) => None,
            // Self-refresh entry/exit is sequenced at the module level.
            (Command::SelfRefreshEnter | Command::SelfRefreshExit, BankState::Idle) => {
                Some(self.act_allowed_at)
            }
            (Command::SelfRefreshEnter | Command::SelfRefreshExit, _) => None,
        }
    }

    /// Issues `cmd` to `row` at time `now` under timing set `t`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::StateViolation`] if the command is illegal
    /// in the current bank state and [`DramError::TimingViolation`] if
    /// issued before its earliest legal time.
    pub fn issue(
        &mut self,
        cmd: Command,
        row: u64,
        now: Picos,
        t: &TimingParams,
    ) -> Result<CommandOutcome, DramError> {
        let allowed = self
            .earliest_issue(cmd, row)
            .ok_or(DramError::StateViolation {
                command: cmd,
                reason: state_conflict_reason(cmd, self.state),
            })?;
        if now < allowed {
            return Err(DramError::TimingViolation {
                command: cmd,
                issued_at: now,
                allowed_at: allowed,
            });
        }
        Ok(match cmd {
            Command::Activate => {
                self.state = BankState::Active { row };
                self.activates += 1;
                self.rw_allowed_at = now + t.t_rcd_ps();
                self.pre_allowed_at = now + t.t_ras_ps();
                CommandOutcome {
                    done_at: now + t.t_rcd_ps(),
                    bus_occupancy: None,
                }
            }
            Command::Read | Command::ReadAp => {
                self.row_hits += 1;
                let burst_start = now + t.t_cas_ps();
                let burst_end = burst_start + t.burst_ps();
                self.pre_allowed_at = self.pre_allowed_at.max(now + t.t_rtp_ps());
                if cmd.auto_precharges() {
                    self.apply_auto_precharge(t);
                }
                CommandOutcome {
                    done_at: burst_end,
                    bus_occupancy: Some((burst_start, burst_end)),
                }
            }
            Command::Write | Command::WriteAp => {
                self.row_hits += 1;
                let burst_start = now + t.t_cwl_ps();
                let burst_end = burst_start + t.burst_ps();
                self.pre_allowed_at = self.pre_allowed_at.max(burst_end + t.t_wr_ps());
                if cmd.auto_precharges() {
                    self.apply_auto_precharge(t);
                }
                CommandOutcome {
                    done_at: burst_end,
                    bus_occupancy: Some((burst_start, burst_end)),
                }
            }
            Command::Precharge => {
                self.state = BankState::Idle;
                self.act_allowed_at = self.act_allowed_at.max(now + t.t_rp_ps());
                CommandOutcome {
                    done_at: now + t.t_rp_ps(),
                    bus_occupancy: None,
                }
            }
            Command::Refresh => {
                self.act_allowed_at = self.act_allowed_at.max(now + t.t_rfc_ps());
                CommandOutcome {
                    done_at: now + t.t_rfc_ps(),
                    bus_occupancy: None,
                }
            }
            Command::SelfRefreshEnter => CommandOutcome {
                done_at: now,
                bus_occupancy: None,
            },
            Command::SelfRefreshExit => {
                self.act_allowed_at = self.act_allowed_at.max(now + t.t_xs_ps());
                CommandOutcome {
                    done_at: now + t.t_xs_ps(),
                    bus_occupancy: None,
                }
            }
        })
    }

    /// Applies the precharge implied by an auto-precharge column
    /// command at the earliest legal point.
    fn apply_auto_precharge(&mut self, t: &TimingParams) {
        let pre_at = self.pre_allowed_at;
        self.state = BankState::Idle;
        self.act_allowed_at = self.act_allowed_at.max(pre_at + t.t_rp_ps());
    }

    /// Forces the bank idle with no timing obligations, as after a
    /// channel-level frequency transition (Figures 9–10 of the paper:
    /// all banks are precharged before the clock is changed and the
    /// transition time dwarfs every bank constraint).
    pub fn reset_after_transition(&mut self, now: Picos) {
        self.state = BankState::Idle;
        self.act_allowed_at = now;
        self.rw_allowed_at = now;
        self.pre_allowed_at = now;
    }
}

fn state_conflict_reason(cmd: Command, state: BankState) -> &'static str {
    match (cmd, state) {
        (Command::Activate, BankState::Active { .. }) => "activate while a row is already open",
        (_, BankState::Idle) => "column command to an idle bank",
        (_, BankState::Active { .. }) => "command conflicts with the open row",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::MemorySetting;

    fn t() -> TimingParams {
        MemorySetting::Specified.timing()
    }

    #[test]
    fn activate_then_read_obeys_trcd() {
        let t = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate, 7, 0, &t).unwrap();
        // Reading immediately violates tRCD.
        let err = bank.issue(Command::Read, 7, 1, &t).unwrap_err();
        assert!(matches!(err, DramError::TimingViolation { .. }));
        // Reading at tRCD succeeds.
        let out = bank.issue(Command::Read, 7, t.t_rcd_ps(), &t).unwrap();
        assert_eq!(out.done_at, t.t_rcd_ps() + t.t_cas_ps() + t.burst_ps());
    }

    #[test]
    fn read_to_wrong_row_is_state_violation() {
        let t = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate, 7, 0, &t).unwrap();
        let err = bank.issue(Command::Read, 8, t.t_rcd_ps(), &t).unwrap_err();
        assert!(matches!(err, DramError::StateViolation { .. }));
    }

    #[test]
    fn precharge_respects_tras() {
        let t = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate, 0, 0, &t).unwrap();
        let err = bank
            .issue(Command::Precharge, 0, t.t_rcd_ps(), &t)
            .unwrap_err();
        assert!(matches!(err, DramError::TimingViolation { allowed_at, .. }
            if allowed_at == t.t_ras_ps()));
        bank.issue(Command::Precharge, 0, t.t_ras_ps(), &t).unwrap();
        assert_eq!(bank.state(), BankState::Idle);
    }

    #[test]
    fn write_recovery_extends_precharge() {
        let t = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate, 0, 0, &t).unwrap();
        let wr_at = t.t_rcd_ps();
        bank.issue(Command::Write, 0, wr_at, &t).unwrap();
        let wr_done = wr_at + t.t_cwl_ps() + t.burst_ps();
        let pre_earliest = bank.earliest_issue(Command::Precharge, 0).unwrap();
        assert_eq!(pre_earliest, (wr_done + t.t_wr_ps()).max(t.t_ras_ps()));
    }

    #[test]
    fn refresh_blocks_activates_for_trfc() {
        let t = t();
        let mut bank = Bank::new();
        bank.issue(Command::Refresh, 0, 0, &t).unwrap();
        assert_eq!(
            bank.earliest_issue(Command::Activate, 0).unwrap(),
            t.t_rfc_ps()
        );
    }

    #[test]
    fn refresh_requires_idle_bank() {
        let t = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate, 3, 0, &t).unwrap();
        assert!(bank.earliest_issue(Command::Refresh, 0).is_none());
    }

    #[test]
    fn auto_precharge_closes_row() {
        let t = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate, 5, 0, &t).unwrap();
        bank.issue(Command::ReadAp, 5, t.t_rcd_ps(), &t).unwrap();
        assert_eq!(bank.state(), BankState::Idle);
        // Next activate must wait for the implicit precharge plus tRP.
        let next_act = bank.earliest_issue(Command::Activate, 9).unwrap();
        assert!(next_act >= t.t_ras_ps() + t.t_rp_ps());
    }

    #[test]
    fn row_hit_counting() {
        let t = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate, 5, 0, &t).unwrap();
        let rd = t.t_rcd_ps();
        bank.issue(Command::Read, 5, rd, &t).unwrap();
        bank.issue(Command::Read, 5, rd + t.burst_ps(), &t).unwrap();
        assert_eq!(bank.activates(), 1);
        assert_eq!(bank.row_hits(), 2);
    }

    #[test]
    fn reset_after_transition_clears_obligations() {
        let t = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate, 5, 0, &t).unwrap();
        bank.reset_after_transition(1_000_000);
        assert_eq!(bank.state(), BankState::Idle);
        assert_eq!(
            bank.earliest_issue(Command::Activate, 0).unwrap(),
            1_000_000
        );
    }

    #[test]
    fn precharge_idle_bank_is_noop() {
        let t = t();
        let mut bank = Bank::new();
        let out = bank.issue(Command::Precharge, 0, 0, &t).unwrap();
        assert_eq!(bank.state(), BankState::Idle);
        assert!(out.bus_occupancy.is_none());
    }
}
