//! Physical module organization.
//!
//! The characterization study (Section II of the paper) slices its 119
//! modules by chips per rank, ranks per module, chip density, and
//! manufacturer-specified data rate; this module captures those axes.

use crate::rate::DataRate;
use std::fmt;

/// Chip density of the DRAM devices on a module, in gigabits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChipDensity {
    /// 4 Gb devices.
    Gb4,
    /// 8 Gb devices.
    Gb8,
    /// 16 Gb devices.
    Gb16,
}

impl ChipDensity {
    /// Density in gigabits.
    pub fn gigabits(self) -> u32 {
        match self {
            ChipDensity::Gb4 => 4,
            ChipDensity::Gb8 => 8,
            ChipDensity::Gb16 => 16,
        }
    }
}

impl fmt::Display for ChipDensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Gb", self.gigabits())
    }
}

/// Physical organization of a registered DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleOrganization {
    /// Chips operating in lockstep per rank: 9 (x8 devices, one ECC
    /// chip) or 18 (x4 devices, two ECC chips) in the paper's
    /// population.
    pub chips_per_rank: u8,
    /// Ranks on the module (1 or 2 in the study).
    pub ranks: u8,
    /// Density of each DRAM device.
    pub density: ChipDensity,
    /// Manufacturer-specified (labelled) data rate.
    pub specified_rate: DataRate,
}

impl ModuleOrganization {
    /// A dual-rank 3200 MT/s module with 9 chips/rank — the
    /// configuration the paper's performance experiments use because it
    /// resembles upcoming DDR5 modules (≤10 chips/rank).
    pub fn ddr4_3200_9cpr_dual_rank() -> ModuleOrganization {
        ModuleOrganization {
            chips_per_rank: 9,
            ranks: 2,
            density: ChipDensity::Gb8,
            specified_rate: DataRate::MT3200,
        }
    }

    /// An 18 chips/rank 3200 MT/s dual-rank module (x4 devices).
    pub fn ddr4_3200_18cpr_dual_rank() -> ModuleOrganization {
        ModuleOrganization {
            chips_per_rank: 18,
            ranks: 2,
            density: ChipDensity::Gb8,
            specified_rate: DataRate::MT3200,
        }
    }

    /// A DDR5-4800 dual-rank module with 10 chips/rank — DDR5 supports
    /// at most 10 chips/rank, which is why the paper's performance
    /// experiments prefer 9-chips/rank DDR4 modules as the closest
    /// stand-in (Section II-B).
    pub fn ddr5_4800_10cpr_dual_rank() -> ModuleOrganization {
        ModuleOrganization {
            chips_per_rank: 10,
            ranks: 2,
            density: ChipDensity::Gb16,
            specified_rate: DataRate::MT4800,
        }
    }

    /// A dual-rank 2400 MT/s module with 9 chips/rank.
    pub fn ddr4_2400_9cpr_dual_rank() -> ModuleOrganization {
        ModuleOrganization {
            chips_per_rank: 9,
            ranks: 2,
            density: ChipDensity::Gb8,
            specified_rate: DataRate::MT2400,
        }
    }

    /// A DDR5-6400 dual-rank module (mid-generation speed bin; same
    /// 10-chips/rank geometry as entry DDR5).
    pub fn ddr5_6400_10cpr_dual_rank() -> ModuleOrganization {
        ModuleOrganization {
            chips_per_rank: 10,
            ranks: 2,
            density: ChipDensity::Gb16,
            specified_rate: DataRate::MT6400,
        }
    }

    /// An MRDIMM-8800: two physical DDR5 ranks, each multiplexed into
    /// two pseudo-ranks by the rank-mux buffer, presented to the host
    /// as four ranks behind one 8800 MT/s interface. Geometry per
    /// physical rank matches DDR5 (10 chips, 16 Gb), so the module
    /// doubles capacity as well as interface rate.
    pub fn mrdimm_8800_10cpr_quad_rank() -> ModuleOrganization {
        ModuleOrganization {
            chips_per_rank: 10,
            ranks: 4,
            density: ChipDensity::Gb16,
            specified_rate: DataRate::MT8800,
        }
    }

    /// Total DRAM devices on the module (all ranks).
    pub fn total_chips(self) -> u32 {
        self.chips_per_rank as u32 * self.ranks as u32
    }

    /// Data chips per rank (excluding ECC chips).
    ///
    /// A 72-bit-wide ECC rank is 8 data bits of every 9 (x8 devices) or
    /// 16 of every 18 (x4 devices).
    pub fn data_chips_per_rank(self) -> u8 {
        match self.chips_per_rank {
            9 => 8,
            18 => 16,
            n => n - n / 9,
        }
    }

    /// ECC chips per rank.
    pub fn ecc_chips_per_rank(self) -> u8 {
        self.chips_per_rank - self.data_chips_per_rank()
    }

    /// Usable (data) capacity of the module in gigabytes.
    pub fn capacity_gb(self) -> u32 {
        self.data_chips_per_rank() as u32 * self.ranks as u32 * self.density.gigabits() / 8
    }
}

impl fmt::Display for ModuleOrganization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}R x{} {} {} ({} GB)",
            self.ranks,
            if self.chips_per_rank == 18 { 4 } else { 8 },
            self.density,
            self.specified_rate,
            self.capacity_gb()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_chip_rank_has_one_ecc_chip() {
        let org = ModuleOrganization::ddr4_3200_9cpr_dual_rank();
        assert_eq!(org.data_chips_per_rank(), 8);
        assert_eq!(org.ecc_chips_per_rank(), 1);
        assert_eq!(org.total_chips(), 18);
    }

    #[test]
    fn eighteen_chip_rank_has_two_ecc_chips() {
        let org = ModuleOrganization::ddr4_3200_18cpr_dual_rank();
        assert_eq!(org.data_chips_per_rank(), 16);
        assert_eq!(org.ecc_chips_per_rank(), 2);
        assert_eq!(org.total_chips(), 36);
    }

    #[test]
    fn ddr5_module_is_ten_chips() {
        let org = ModuleOrganization::ddr5_4800_10cpr_dual_rank();
        assert_eq!(org.chips_per_rank, 10);
        assert!(org.chips_per_rank <= 10, "DDR5 caps chips/rank at 10");
        assert_eq!(org.ecc_chips_per_rank(), 1);
        assert_eq!(org.specified_rate.mts(), 4800);
    }

    #[test]
    fn mrdimm_doubles_ddr5_capacity_and_rate() {
        let ddr5 = ModuleOrganization::ddr5_4800_10cpr_dual_rank();
        let mr = ModuleOrganization::mrdimm_8800_10cpr_quad_rank();
        assert_eq!(mr.ranks, 4, "two physical ranks × two mux pseudo-ranks");
        assert_eq!(mr.chips_per_rank, 10, "DDR5 geometry per physical rank");
        assert_eq!(mr.capacity_gb(), 2 * ddr5.capacity_gb());
        assert_eq!(mr.specified_rate.mts(), 2 * 4400);
        // 9 data chips × 4 ranks × 16 Gb = 72 GB.
        assert_eq!(mr.capacity_gb(), 72);
    }

    #[test]
    fn capacity_computation() {
        // 8 data chips × 2 ranks × 8 Gb = 128 Gb = 16 GB.
        let org = ModuleOrganization::ddr4_3200_9cpr_dual_rank();
        assert_eq!(org.capacity_gb(), 16);
        // x4 module: 16 data chips × 2 ranks × 8 Gb = 32 GB.
        let org = ModuleOrganization::ddr4_3200_18cpr_dual_rank();
        assert_eq!(org.capacity_gb(), 32);
    }

    #[test]
    fn display_is_informative() {
        let text = ModuleOrganization::ddr4_3200_9cpr_dual_rank().to_string();
        assert!(text.contains("2R"));
        assert!(text.contains("3200"));
        assert!(text.contains("16 GB"));
    }
}
