//! A DIMM: ranks plus self-refresh state.
//!
//! Hetero-DMR (Section III-A2 of the paper) keeps the modules holding
//! *original* blocks in self-refresh while the channel runs unsafely
//! fast: in self-refresh the devices refresh from their internal,
//! in-spec clocks and ignore the (overclocked) external bus entirely,
//! so no command misinterpretation can corrupt them.

use crate::command::Command;
use crate::error::DramError;
use crate::organization::ModuleOrganization;
use crate::rank::Rank;
use crate::timing::TimingParams;
use crate::Picos;

/// Identifier of a module within a channel (slot index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub usize);

impl std::fmt::Display for ModuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DIMM{}", self.0)
    }
}

/// A registered DIMM with per-rank state and self-refresh tracking.
#[derive(Debug, Clone)]
pub struct Module {
    id: ModuleId,
    organization: ModuleOrganization,
    ranks: Vec<Rank>,
    /// `Some(entered_at)` while in self-refresh.
    self_refresh_since: Option<Picos>,
    /// Accumulated time spent in self-refresh (for the power model).
    self_refresh_total: Picos,
}

impl Module {
    /// Creates a module in normal (externally clocked) operation.
    pub fn new(id: ModuleId, organization: ModuleOrganization) -> Module {
        Module {
            id,
            organization,
            ranks: (0..organization.ranks).map(|_| Rank::new()).collect(),
            self_refresh_since: None,
            self_refresh_total: 0,
        }
    }

    /// The module's slot identifier.
    pub fn id(&self) -> ModuleId {
        self.id
    }

    /// Physical organization.
    pub fn organization(&self) -> ModuleOrganization {
        self.organization
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Immutable access to a rank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] for an invalid index.
    pub fn rank(&self, index: usize) -> Result<&Rank, DramError> {
        self.ranks.get(index).ok_or(DramError::AddressOutOfRange {
            component: "rank",
            index,
            count: self.ranks.len(),
        })
    }

    /// Mutable access to a rank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] for an invalid index.
    pub fn rank_mut(&mut self, index: usize) -> Result<&mut Rank, DramError> {
        let count = self.ranks.len();
        self.ranks
            .get_mut(index)
            .ok_or(DramError::AddressOutOfRange {
                component: "rank",
                index,
                count,
            })
    }

    /// Whether the module is currently in self-refresh.
    pub fn in_self_refresh(&self) -> bool {
        self.self_refresh_since.is_some()
    }

    /// Total time spent in self-refresh so far (closed intervals only).
    pub fn self_refresh_time(&self) -> Picos {
        self.self_refresh_total
    }

    /// Enters self-refresh at `now`.
    ///
    /// All banks must be precharged first (the caller typically uses
    /// [`Rank::precharge_all`]). While in self-refresh the module
    /// rejects every command except [`Command::SelfRefreshExit`].
    ///
    /// # Errors
    ///
    /// Returns [`DramError::StateViolation`] if a bank is still open or
    /// the module is already in self-refresh.
    pub fn enter_self_refresh(&mut self, now: Picos) -> Result<(), DramError> {
        if self.in_self_refresh() {
            return Err(DramError::StateViolation {
                command: Command::SelfRefreshEnter,
                reason: "already in self-refresh",
            });
        }
        if !self.ranks.iter().all(Rank::all_banks_idle) {
            return Err(DramError::StateViolation {
                command: Command::SelfRefreshEnter,
                reason: "banks must be precharged before self-refresh entry",
            });
        }
        self.self_refresh_since = Some(now);
        Ok(())
    }

    /// Exits self-refresh at `now`; the module accepts commands again
    /// after tXS, which the returned time reflects.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::StateViolation`] if not in self-refresh.
    pub fn exit_self_refresh(&mut self, now: Picos, t: &TimingParams) -> Result<Picos, DramError> {
        let since = self
            .self_refresh_since
            .take()
            .ok_or(DramError::StateViolation {
                command: Command::SelfRefreshExit,
                reason: "not in self-refresh",
            })?;
        self.self_refresh_total += now.saturating_sub(since);
        let ready = now + t.t_xs_ps();
        for rank in &mut self.ranks {
            rank.reset_after_transition(ready);
        }
        Ok(ready)
    }

    /// Issues a command to `rank`/`bank`/`row` at `now`.
    ///
    /// # Errors
    ///
    /// Rejects all commands while in self-refresh (the device ignores
    /// the external bus), plus any rank/bank-level violation.
    pub fn issue(
        &mut self,
        cmd: Command,
        rank: usize,
        bank: usize,
        row: u64,
        now: Picos,
        t: &TimingParams,
    ) -> Result<crate::bank::CommandOutcome, DramError> {
        if self.in_self_refresh() {
            return Err(DramError::StateViolation {
                command: cmd,
                reason: "module is in self-refresh and ignores the external bus",
            });
        }
        self.rank_mut(rank)?.issue(cmd, bank, row, now, t)
    }

    /// Precharges every bank on the module; returns when the slowest
    /// rank is fully precharged.
    pub fn precharge_all(&mut self, now: Picos, t: &TimingParams) -> Picos {
        self.ranks
            .iter_mut()
            .map(|r| r.precharge_all(now, t))
            .max()
            .unwrap_or(now)
    }

    /// Resets all ranks after a channel frequency transition.
    pub fn reset_after_transition(&mut self, now: Picos) {
        for rank in &mut self.ranks {
            rank.reset_after_transition(now);
        }
    }

    /// Total reads across ranks.
    pub fn reads(&self) -> u64 {
        self.ranks.iter().map(Rank::reads).sum()
    }

    /// Total writes across ranks.
    pub fn writes(&self) -> u64 {
        self.ranks.iter().map(Rank::writes).sum()
    }

    /// Total activates across ranks.
    pub fn activates(&self) -> u64 {
        self.ranks.iter().map(Rank::activates).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::MemorySetting;

    fn module() -> Module {
        Module::new(ModuleId(0), ModuleOrganization::ddr4_3200_9cpr_dual_rank())
    }

    fn t() -> TimingParams {
        MemorySetting::Specified.timing()
    }

    #[test]
    fn dual_rank_module_has_two_ranks() {
        let m = module();
        assert_eq!(m.rank_count(), 2);
        assert!(m.rank(1).is_ok());
        assert!(m.rank(2).is_err());
    }

    #[test]
    fn self_refresh_requires_precharged_banks() {
        let t = t();
        let mut m = module();
        m.issue(Command::Activate, 0, 0, 0, 0, &t).unwrap();
        let err = m.enter_self_refresh(100).unwrap_err();
        assert!(matches!(err, DramError::StateViolation { .. }));
        let done = m.precharge_all(t.t_ras_ps(), &t);
        m.enter_self_refresh(done).unwrap();
        assert!(m.in_self_refresh());
    }

    #[test]
    fn self_refresh_blocks_external_commands() {
        let t = t();
        let mut m = module();
        m.enter_self_refresh(0).unwrap();
        let err = m.issue(Command::Activate, 0, 0, 0, 10, &t).unwrap_err();
        assert!(matches!(err, DramError::StateViolation { .. }));
        let err = m.issue(Command::Refresh, 0, 0, 0, 10, &t).unwrap_err();
        assert!(matches!(err, DramError::StateViolation { .. }));
    }

    #[test]
    fn self_refresh_exit_applies_txs_and_tracks_time() {
        let t = t();
        let mut m = module();
        m.enter_self_refresh(1_000).unwrap();
        let ready = m.exit_self_refresh(2_001_000, &t).unwrap();
        assert_eq!(ready, 2_001_000 + t.t_xs_ps());
        assert_eq!(m.self_refresh_time(), 2_000_000);
        assert!(!m.in_self_refresh());
        // Commands are accepted again after tXS.
        m.issue(Command::Activate, 0, 0, 0, ready, &t).unwrap();
    }

    #[test]
    fn double_entry_rejected() {
        let mut m = module();
        m.enter_self_refresh(0).unwrap();
        assert!(m.enter_self_refresh(5).is_err());
    }

    #[test]
    fn exit_without_entry_rejected() {
        let t = t();
        let mut m = module();
        assert!(m.exit_self_refresh(5, &t).is_err());
    }

    #[test]
    fn activity_counters_aggregate_ranks() {
        let t = t();
        let mut m = module();
        m.issue(Command::Activate, 0, 0, 0, 0, &t).unwrap();
        m.issue(Command::Read, 0, 0, 0, t.t_rcd_ps(), &t).unwrap();
        m.issue(Command::Activate, 1, 0, 0, 0, &t).unwrap();
        m.issue(Command::Write, 1, 0, 0, t.t_rcd_ps(), &t).unwrap();
        assert_eq!(m.reads(), 1);
        assert_eq!(m.writes(), 1);
        assert_eq!(m.activates(), 2);
    }
}
