//! Rank-level timing constraints and bank aggregation.
//!
//! A rank is a group of DRAM chips that operate in lockstep (the paper
//! studies modules with 9 or 18 chips per rank). The rank model owns
//! its 16 banks and enforces the inter-bank constraints: tRRD between
//! activates and the four-activate window tFAW.

use crate::bank::{Bank, CommandOutcome};
use crate::command::Command;
use crate::error::DramError;
use crate::timing::TimingParams;
use crate::Picos;

/// Number of banks per DDR4 rank (4 bank groups × 4 banks).
pub const BANKS_PER_RANK: usize = 16;

/// A DRAM rank: 16 banks plus rank-wide activation bookkeeping.
#[derive(Debug, Clone)]
pub struct Rank {
    banks: Vec<Bank>,
    /// Issue times of the four most recent ACTs (for tFAW).
    recent_activates: [Picos; 4],
    /// Earliest time the next ACT may issue due to tRRD.
    act_allowed_at: Picos,
    reads: u64,
    writes: u64,
}

impl Default for Rank {
    fn default() -> Self {
        Rank::new()
    }
}

impl Rank {
    /// Creates a rank with 16 idle banks.
    pub fn new() -> Rank {
        Rank {
            banks: vec![Bank::new(); BANKS_PER_RANK],
            recent_activates: [0; 4],
            act_allowed_at: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Number of banks in the rank.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Immutable access to a bank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::AddressOutOfRange`] for an invalid index.
    pub fn bank(&self, index: usize) -> Result<&Bank, DramError> {
        self.banks.get(index).ok_or(DramError::AddressOutOfRange {
            component: "bank",
            index,
            count: BANKS_PER_RANK,
        })
    }

    /// Column reads issued to this rank.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Column writes issued to this rank.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total ACTs across all banks.
    pub fn activates(&self) -> u64 {
        self.banks.iter().map(Bank::activates).sum()
    }

    /// Total row-buffer hits across all banks.
    pub fn row_hits(&self) -> u64 {
        self.banks.iter().map(Bank::row_hits).sum()
    }

    /// Earliest legal issue time for `cmd` to `bank`/`row`, considering
    /// both bank-level and rank-level constraints. `None` if illegal in
    /// the current state.
    pub fn earliest_issue(&self, cmd: Command, bank: usize, row: u64) -> Option<Picos> {
        let b = self.banks.get(bank)?;
        let bank_time = b.earliest_issue(cmd, row)?;
        if cmd == Command::Activate {
            // tFAW: the 4th-most-recent ACT bounds the next one.
            let faw_bound = self.recent_activates[0];
            Some(bank_time.max(self.act_allowed_at).max(faw_bound))
        } else {
            Some(bank_time)
        }
    }

    /// Issues `cmd` to `bank`/`row` at `now`.
    ///
    /// # Errors
    ///
    /// Propagates bank-level violations and additionally reports
    /// rank-level tRRD/tFAW violations for ACTs, and out-of-range bank
    /// indices.
    pub fn issue(
        &mut self,
        cmd: Command,
        bank: usize,
        row: u64,
        now: Picos,
        t: &TimingParams,
    ) -> Result<CommandOutcome, DramError> {
        if bank >= self.banks.len() {
            return Err(DramError::AddressOutOfRange {
                component: "bank",
                index: bank,
                count: BANKS_PER_RANK,
            });
        }
        if cmd == Command::Activate {
            let rank_bound = self.act_allowed_at.max(self.recent_activates[0]);
            if now < rank_bound {
                return Err(DramError::TimingViolation {
                    command: cmd,
                    issued_at: now,
                    allowed_at: rank_bound,
                });
            }
        }
        let outcome = self.banks[bank].issue(cmd, row, now, t)?;
        match cmd {
            Command::Activate => {
                self.act_allowed_at = now + t.t_rrd_ps();
                // Slide the tFAW window: the oldest of the last four
                // ACTs plus tFAW bounds the next ACT.
                self.recent_activates.rotate_left(1);
                self.recent_activates[3] = now + t.t_faw_ps();
            }
            Command::Read | Command::ReadAp => self.reads += 1,
            Command::Write | Command::WriteAp => self.writes += 1,
            Command::Refresh => {
                // An all-bank refresh occupies every bank.
                for b in &mut self.banks {
                    if b.open_row().is_none() {
                        let _ = b.issue(Command::Refresh, 0, now, t);
                    }
                }
            }
            _ => {}
        }
        Ok(outcome)
    }

    /// True when every bank is idle (precharged) — the precondition for
    /// refresh and self-refresh entry.
    pub fn all_banks_idle(&self) -> bool {
        self.banks.iter().all(|b| b.open_row().is_none())
    }

    /// Precharges all open banks, returning when the slowest one
    /// becomes usable. Used before refresh, self-refresh entry, and
    /// channel frequency transitions.
    pub fn precharge_all(&mut self, now: Picos, t: &TimingParams) -> Picos {
        let mut done = now;
        for bank in &mut self.banks {
            if bank.open_row().is_some() {
                let at = bank
                    .earliest_issue(Command::Precharge, 0)
                    .expect("open bank accepts precharge")
                    .max(now);
                let out = bank
                    .issue(Command::Precharge, 0, at, t)
                    .expect("legal precharge");
                done = done.max(out.done_at);
            }
        }
        done
    }

    /// Resets all banks after a channel frequency transition.
    pub fn reset_after_transition(&mut self, now: Picos) {
        for bank in &mut self.banks {
            bank.reset_after_transition(now);
        }
        self.recent_activates = [now; 4];
        self.act_allowed_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::MemorySetting;

    fn t() -> TimingParams {
        MemorySetting::Specified.timing()
    }

    #[test]
    fn rank_has_sixteen_banks() {
        let rank = Rank::new();
        assert_eq!(rank.bank_count(), 16);
        assert!(rank.bank(15).is_ok());
        assert!(rank.bank(16).is_err());
    }

    #[test]
    fn trrd_separates_activates() {
        let t = t();
        let mut rank = Rank::new();
        rank.issue(Command::Activate, 0, 0, 0, &t).unwrap();
        let err = rank.issue(Command::Activate, 1, 0, 1, &t).unwrap_err();
        assert!(matches!(err, DramError::TimingViolation { .. }));
        rank.issue(Command::Activate, 1, 0, t.t_rrd_ps(), &t)
            .unwrap();
    }

    #[test]
    fn tfaw_limits_activate_burst() {
        let t = t();
        let mut rank = Rank::new();
        let rrd = t.t_rrd_ps();
        // Four activates spaced at tRRD.
        for i in 0..4 {
            rank.issue(Command::Activate, i, 0, i as Picos * rrd, &t)
                .unwrap();
        }
        // The fifth must wait for the first ACT + tFAW, which is later
        // than 4*tRRD for DDR4-3200 (21 ns > 4 * 4.9 ns rounded).
        let fifth_earliest = rank.earliest_issue(Command::Activate, 4, 0).unwrap();
        assert_eq!(fifth_earliest, t.t_faw_ps());
        assert!(fifth_earliest > 4 * rrd);
    }

    #[test]
    fn read_write_counters() {
        let t = t();
        let mut rank = Rank::new();
        rank.issue(Command::Activate, 0, 0, 0, &t).unwrap();
        rank.issue(Command::Read, 0, 0, t.t_rcd_ps(), &t).unwrap();
        rank.issue(Command::Write, 0, 0, t.t_rcd_ps() + t.burst_ps(), &t)
            .unwrap();
        assert_eq!(rank.reads(), 1);
        assert_eq!(rank.writes(), 1);
        assert_eq!(rank.activates(), 1);
    }

    #[test]
    fn precharge_all_closes_everything() {
        let t = t();
        let mut rank = Rank::new();
        rank.issue(Command::Activate, 0, 3, 0, &t).unwrap();
        rank.issue(Command::Activate, 1, 4, t.t_rrd_ps(), &t)
            .unwrap();
        assert!(!rank.all_banks_idle());
        let done = rank.precharge_all(10 * t.t_ras_ps(), &t);
        assert!(rank.all_banks_idle());
        assert!(done >= 10 * t.t_ras_ps() + t.t_rp_ps());
    }

    #[test]
    fn refresh_requires_all_banks_idle_eventually() {
        let t = t();
        let mut rank = Rank::new();
        rank.issue(Command::Activate, 2, 0, 0, &t).unwrap();
        // Refresh to an idle bank index still models an all-bank REF;
        // the controller must precharge first, which we verify via the
        // idle check.
        assert!(!rank.all_banks_idle());
        let done = rank.precharge_all(t.t_ras_ps(), &t);
        rank.issue(Command::Refresh, 0, 0, done, &t).unwrap();
        // After REF, activates are blocked for tRFC on every bank.
        let earliest = rank.earliest_issue(Command::Activate, 5, 0).unwrap();
        assert!(earliest >= done + t.t_rfc_ps());
    }

    #[test]
    fn reset_after_transition_synchronizes_banks() {
        let t = t();
        let mut rank = Rank::new();
        rank.issue(Command::Activate, 0, 0, 0, &t).unwrap();
        rank.reset_after_transition(5_000_000);
        assert!(rank.all_banks_idle());
        assert_eq!(
            rank.earliest_issue(Command::Activate, 0, 0).unwrap(),
            5_000_000
        );
    }
}
