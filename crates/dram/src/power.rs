//! Activity counters consumed by the `energy` crate's power model.
//!
//! The DRAM power model follows the standard datasheet decomposition
//! (Micron DDR4 system-power calculator, which the paper cites):
//! background power + activate/precharge energy per row cycle +
//! read/write burst energy + refresh, with self-refresh as a reduced
//! background state.

use crate::Picos;

/// Aggregated DRAM activity over a simulated interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Row activations (each implies a later precharge).
    pub activates: u64,
    /// 64-byte read bursts.
    pub reads: u64,
    /// 64-byte write bursts. Broadcast writes count **once** here (one
    /// bus transaction) — the per-module copy cost is captured by
    /// `broadcast_extra_cells`.
    pub writes: u64,
    /// Extra module-internal write-cell energy from broadcast targets
    /// beyond the first (copies written "for free" on the bus still
    /// charge DRAM cells in the Free Module).
    pub broadcast_extra_cells: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Time spent with the device in active standby.
    pub active_time: Picos,
    /// Time spent in self-refresh.
    pub self_refresh_time: Picos,
    /// Total wall time of the interval.
    pub total_time: Picos,
}

impl ActivityCounters {
    /// Creates zeroed counters.
    pub fn new() -> ActivityCounters {
        ActivityCounters::default()
    }

    /// Merges another interval's counters into this one.
    pub fn merge(&mut self, other: &ActivityCounters) {
        self.activates += other.activates;
        self.reads += other.reads;
        self.writes += other.writes;
        self.broadcast_extra_cells += other.broadcast_extra_cells;
        self.refreshes += other.refreshes;
        self.active_time += other.active_time;
        self.self_refresh_time += other.self_refresh_time;
        self.total_time += other.total_time;
    }

    /// Total data moved on the bus, in bytes (64 B per burst).
    pub fn bus_bytes(&self) -> u64 {
        (self.reads + self.writes) * 64
    }

    /// Fraction of bus transactions that are writes, in [0, 1].
    pub fn write_fraction(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.writes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ActivityCounters {
            activates: 1,
            reads: 2,
            writes: 3,
            broadcast_extra_cells: 4,
            refreshes: 5,
            active_time: 6,
            self_refresh_time: 7,
            total_time: 8,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.activates, 2);
        assert_eq!(a.reads, 4);
        assert_eq!(a.writes, 6);
        assert_eq!(a.broadcast_extra_cells, 8);
        assert_eq!(a.refreshes, 10);
        assert_eq!(a.active_time, 12);
        assert_eq!(a.self_refresh_time, 14);
        assert_eq!(a.total_time, 16);
    }

    #[test]
    fn write_fraction() {
        let c = ActivityCounters {
            reads: 85,
            writes: 15,
            ..ActivityCounters::new()
        };
        assert!((c.write_fraction() - 0.15).abs() < 1e-12);
        assert_eq!(ActivityCounters::new().write_fraction(), 0.0);
    }

    #[test]
    fn bus_bytes_counts_both_directions() {
        let c = ActivityCounters {
            reads: 10,
            writes: 5,
            ..ActivityCounters::new()
        };
        assert_eq!(c.bus_bytes(), 15 * 64);
    }
}
