//! Memory data rates.
//!
//! DDR transfers data on both clock edges, so a data rate of `N` MT/s
//! corresponds to a clock of `N/2` MHz. The paper scales data rates in
//! 200 MT/s steps (a BIOS limitation it inherits); [`DataRate::step_up`]
//! and [`DataRate::step_down`] model the same granularity.

use crate::{Picos, PS_PER_S};
use std::fmt;

/// A memory data rate in mega-transfers per second (MT/s).
///
/// ```
/// use dram::rate::DataRate;
///
/// let spec = DataRate::MT3200;
/// let fast = spec.plus_margin(800);
/// assert_eq!(fast.mts(), 4000);
/// assert_eq!(fast.clock_period_ps(), 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataRate(u32);

impl DataRate {
    /// DDR4-2400, one of the two specified rates studied in the paper.
    pub const MT2400: DataRate = DataRate(2400);
    /// DDR4-2666, the rate the paper's test CPU is advertised for.
    pub const MT2666: DataRate = DataRate(2666);
    /// DDR4-2933.
    pub const MT2933: DataRate = DataRate(2933);
    /// DDR4-3200, the maximum JEDEC DDR4 rate and the paper's main rate.
    pub const MT3200: DataRate = DataRate(3200);
    /// The 4000 MT/s system-level cap the paper observed on its testbed.
    pub const MT4000: DataRate = DataRate(4000);
    /// DDR5-4800 (the entry DDR5 rate; Section III-F's outlook).
    pub const MT4800: DataRate = DataRate(4800);
    /// DDR5-5600.
    pub const MT5600: DataRate = DataRate(5600);
    /// DDR5-6400.
    pub const MT6400: DataRate = DataRate(6400);
    /// MRDIMM-8800: a multiplexed-rank DIMM whose buffer interleaves
    /// two DDR5-4400 pseudo-channels onto one 8800 MT/s host interface.
    pub const MT8800: DataRate = DataRate(8800);

    /// The characterization step size the paper used (BIOS limitation).
    pub const STEP_MTS: u32 = 200;

    /// Creates a data rate from a raw MT/s value.
    ///
    /// # Panics
    ///
    /// Panics if `mts` is zero; a zero data rate has no clock period.
    pub fn new(mts: u32) -> DataRate {
        assert!(mts > 0, "data rate must be positive");
        DataRate(mts)
    }

    /// The raw rate in MT/s.
    pub fn mts(self) -> u32 {
        self.0
    }

    /// The clock frequency in MHz (half the data rate, DDR signalling).
    pub fn clock_mhz(self) -> f64 {
        self.0 as f64 / 2.0
    }

    /// The clock period in picoseconds, rounded to the nearest ps.
    ///
    /// For every standard DDR4 rate this is exact
    /// (e.g. 3200 MT/s → 625 ps, 4000 MT/s → 500 ps).
    pub fn clock_period_ps(self) -> Picos {
        // period = 1 / (mts/2 MHz) = 2_000_000 / mts ps
        (2_000_000u64 + self.0 as u64 / 2) / self.0 as u64
    }

    /// Peak bandwidth of a 64-bit (8-byte) channel at this rate, in
    /// bytes per second.
    ///
    /// ```
    /// use dram::rate::DataRate;
    /// assert_eq!(DataRate::MT3200.peak_bandwidth_bytes_per_s(), 25_600_000_000);
    /// ```
    pub fn peak_bandwidth_bytes_per_s(self) -> u64 {
        self.0 as u64 * 1_000_000 * 8
    }

    /// Time to transfer one 64-byte block (burst length 8 on an 8-byte
    /// bus), in picoseconds: four full clock periods.
    pub fn burst_time_ps(self) -> Picos {
        4 * self.clock_period_ps()
    }

    /// Adds a frequency margin, returning the raised rate.
    pub fn plus_margin(self, margin_mts: u32) -> DataRate {
        DataRate(self.0 + margin_mts)
    }

    /// The margin in MT/s between `self` and a slower `base` rate.
    ///
    /// Returns zero if `self` is not faster than `base`.
    pub fn margin_over(self, base: DataRate) -> u32 {
        self.0.saturating_sub(base.0)
    }

    /// One characterization step (200 MT/s) faster.
    pub fn step_up(self) -> DataRate {
        DataRate(self.0 + Self::STEP_MTS)
    }

    /// One characterization step (200 MT/s) slower.
    ///
    /// Saturates at one step rather than reaching zero.
    pub fn step_down(self) -> DataRate {
        DataRate(self.0.saturating_sub(Self::STEP_MTS).max(Self::STEP_MTS))
    }

    /// The number of whole clock cycles needed to cover `ps` picoseconds
    /// at this rate (ceiling division).
    pub fn cycles_for_ps(self, ps: Picos) -> u64 {
        let t = self.clock_period_ps();
        ps.div_ceil(t)
    }

    /// How many bytes a fully utilized 8-byte channel moves in `ps`
    /// picoseconds at this rate.
    pub fn bytes_in_ps(self, ps: Picos) -> u64 {
        (self.peak_bandwidth_bytes_per_s() as u128 * ps as u128 / PS_PER_S as u128) as u64
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MT/s", self.0)
    }
}

impl From<DataRate> for u32 {
    fn from(rate: DataRate) -> u32 {
        rate.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_periods_are_exact() {
        assert_eq!(DataRate::MT3200.clock_period_ps(), 625);
        assert_eq!(DataRate::MT4000.clock_period_ps(), 500);
        assert_eq!(DataRate::MT2400.clock_period_ps(), 833);
    }

    #[test]
    fn margin_arithmetic() {
        let base = DataRate::MT3200;
        let fast = base.plus_margin(800);
        assert_eq!(fast, DataRate::MT4000);
        assert_eq!(fast.margin_over(base), 800);
        assert_eq!(base.margin_over(fast), 0);
    }

    #[test]
    fn stepping_matches_paper_granularity() {
        let r = DataRate::MT3200;
        assert_eq!(r.step_up().mts(), 3400);
        assert_eq!(r.step_down().mts(), 3000);
        // Stepping down never reaches zero.
        let mut r = DataRate::new(200);
        r = r.step_down();
        assert_eq!(r.mts(), 200);
    }

    #[test]
    fn burst_time_shrinks_with_rate() {
        assert!(DataRate::MT4000.burst_time_ps() < DataRate::MT3200.burst_time_ps());
        assert_eq!(DataRate::MT3200.burst_time_ps(), 2500);
        assert_eq!(DataRate::MT4000.burst_time_ps(), 2000);
    }

    #[test]
    fn bandwidth_scales_linearly() {
        let b32 = DataRate::MT3200.peak_bandwidth_bytes_per_s();
        let b40 = DataRate::MT4000.peak_bandwidth_bytes_per_s();
        assert_eq!(b40 * 4, b32 * 5);
    }

    #[test]
    fn cycles_for_ps_is_ceiling() {
        let r = DataRate::MT3200; // 625 ps
        assert_eq!(r.cycles_for_ps(0), 0);
        assert_eq!(r.cycles_for_ps(1), 1);
        assert_eq!(r.cycles_for_ps(625), 1);
        assert_eq!(r.cycles_for_ps(626), 2);
    }

    #[test]
    fn bytes_in_ps_one_microsecond() {
        // 25.6 GB/s for 1 us = 25600 bytes.
        assert_eq!(DataRate::MT3200.bytes_in_ps(1_000_000), 25_600);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = DataRate::new(0);
    }
}
