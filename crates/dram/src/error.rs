//! Error types for the DRAM substrate.

use crate::command::Command;
use crate::Picos;
use std::error::Error;
use std::fmt;

/// An illegal operation against the DRAM device model.
///
/// These errors indicate a *simulator* bug (the controller issued a
/// command the device state machine forbids), not a modelled memory
/// error; modelled data errors live in the `ecc` and `margin` crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A command was issued before its earliest legal time.
    TimingViolation {
        /// The offending command.
        command: Command,
        /// When it was issued.
        issued_at: Picos,
        /// The earliest legal issue time.
        allowed_at: Picos,
    },
    /// A command was issued in a bank state that forbids it
    /// (e.g. a column read to an idle bank).
    StateViolation {
        /// The offending command.
        command: Command,
        /// Human-readable description of the state conflict.
        reason: &'static str,
    },
    /// An operation addressed a component that does not exist
    /// (module, rank, or bank index out of range).
    AddressOutOfRange {
        /// What kind of component was addressed.
        component: &'static str,
        /// The offending index.
        index: usize,
        /// Number of components present.
        count: usize,
    },
    /// A frequency transition was requested while another one is
    /// already in progress.
    TransitionInProgress,
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::TimingViolation {
                command,
                issued_at,
                allowed_at,
            } => write!(
                f,
                "timing violation: {command} issued at {issued_at} ps but allowed at {allowed_at} ps"
            ),
            DramError::StateViolation { command, reason } => {
                write!(f, "state violation issuing {command}: {reason}")
            }
            DramError::AddressOutOfRange {
                component,
                index,
                count,
            } => write!(
                f,
                "{component} index {index} out of range (have {count})"
            ),
            DramError::TransitionInProgress => {
                write!(f, "frequency transition already in progress")
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        let err = DramError::TimingViolation {
            command: Command::Read,
            issued_at: 10,
            allowed_at: 20,
        };
        let text = err.to_string();
        assert!(text.contains("RD"));
        assert!(text.contains("10"));
        assert!(text.contains("20"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
