//! The parallel runner's core contract: for a fixed seed, stdout and
//! the `--metrics` JSONL export are byte-identical for any `--jobs`
//! value, because every RNG stream is derived from `(seed, target,
//! iteration)` counters and never from thread identity or completion
//! order.
//!
//! Targets are chosen to cover the three parallelism layers:
//! `fig2`/`fig3` (population study + parallel grouping panels),
//! `fig11` (Monte Carlo with parallel per-trial streams), and `fig5`
//! (node simulations primed concurrently across designs × suites).

use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hdmr_det_{name}_{}", std::process::id()))
}

/// Runs `target` under the given worker count, writing metrics into
/// `dir` (the same dir for every worker count so the stdout summary
/// line is comparable), and returns `(stdout, metrics JSONL bytes)`.
/// `extra` carries additional flags (e.g. `--no-model-cache`).
fn run_with_jobs_and(
    target: &str,
    jobs: &str,
    dir: &std::path::Path,
    extra: &[&str],
) -> (Vec<u8>, Vec<u8>) {
    let _ = std::fs::remove_dir_all(dir);
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            target,
            "--seed",
            "7",
            "--quick",
            "--ops",
            "1200",
            "--jobs",
            jobs,
            "--metrics",
            dir.to_str().unwrap(),
        ])
        .args(extra)
        .output()
        .expect("spawn experiments binary");
    assert!(
        out.status.success(),
        "{target} --jobs {jobs} failed: {out:?}"
    );
    let jsonl =
        std::fs::read(dir.join(format!("{target}.metrics.jsonl"))).expect("metrics written");
    let _ = std::fs::remove_dir_all(dir);
    (out.stdout, jsonl)
}

fn run_with_jobs(target: &str, jobs: &str, dir: &std::path::Path) -> (Vec<u8>, Vec<u8>) {
    run_with_jobs_and(target, jobs, dir, &[])
}

fn assert_jobs_invariant(target: &str, expect_series: bool) {
    let dir = tmp_dir(target);
    let (serial_out, serial_jsonl) = run_with_jobs(target, "1", &dir);
    let (parallel_out, parallel_jsonl) = run_with_jobs(target, "8", &dir);
    if expect_series {
        assert!(
            !serial_jsonl.is_empty(),
            "{target} must export at least one metric series"
        );
    }
    assert_eq!(
        serial_out, parallel_out,
        "{target}: stdout differs between --jobs 1 and --jobs 8"
    );
    assert_eq!(
        serial_jsonl, parallel_jsonl,
        "{target}: metrics JSONL differs between --jobs 1 and --jobs 8"
    );
}

#[test]
fn fig2_is_jobs_invariant() {
    // Statistics-only target: the export is legitimately empty of
    // simulator series, but stdout must still be byte-stable.
    assert_jobs_invariant("fig2", false);
}

#[test]
fn fig3_is_jobs_invariant() {
    assert_jobs_invariant("fig3", false);
}

#[test]
fn fig5_is_jobs_invariant() {
    assert_jobs_invariant("fig5", true);
}

#[test]
fn fig11_is_jobs_invariant() {
    assert_jobs_invariant("fig11", false);
}

#[test]
fn fig17_is_jobs_invariant() {
    // Cluster variants run concurrently under distinct metric scopes.
    assert_jobs_invariant("fig17", true);
}

#[test]
fn energy_is_jobs_invariant() {
    // Residency-model EPI tables: node simulations (shared-cache) plus
    // direct generation-sweep runs, all inside one scenario.
    assert_jobs_invariant("energy", true);
}

#[test]
fn configurator_is_jobs_invariant() {
    assert_jobs_invariant("configurator", true);
}

#[test]
fn adaptive_is_jobs_invariant() {
    // The closed-loop governor ablation: per-epoch Poisson error
    // draws on counter-derived streams plus node-model speedups, all
    // inside one scenario task.
    assert_jobs_invariant("adaptive", true);
}

#[test]
fn fleet_is_jobs_invariant() {
    // Federation shards run one-per-member on the worker pool and
    // merge streaming summaries, telemetry snapshots, and traces in
    // member order; stdout and the JSONL export must not care how
    // many workers carried the shards. A reduced stream keeps the
    // debug-profile binary fast; the ci.sh smoke covers quick scale.
    let fleet = &["--fleet-jobs", "20000"];
    let dir = tmp_dir("fleet");
    let (serial_out, serial_jsonl) = run_with_jobs_and("fleet", "1", &dir, fleet);
    let (parallel_out, parallel_jsonl) = run_with_jobs_and("fleet", "8", &dir, fleet);
    assert!(
        !serial_jsonl.is_empty(),
        "fleet must export at least one metric series"
    );
    assert_eq!(
        serial_out, parallel_out,
        "fleet: stdout differs between --jobs 1 and --jobs 8"
    );
    assert_eq!(
        serial_jsonl, parallel_jsonl,
        "fleet: metrics JSONL differs between --jobs 1 and --jobs 8"
    );
}

#[test]
fn fleet_trace_is_jobs_invariant() {
    let fleet = &["--fleet-jobs", "20000"];
    let dir = tmp_dir("trace_fleet");
    let serial = run_with_trace_and("fleet", "1", &dir, fleet);
    let parallel = run_with_trace_and("fleet", "8", &dir, fleet);
    assert_eq!(
        serial, parallel,
        "fleet: trace differs between --jobs 1 and --jobs 8"
    );
    let text = String::from_utf8(serial).expect("trace is utf8");
    let events = telemetry::trace::parse_chrome_trace(&text).expect("fleet trace parses");
    // One schedule root per member per placement policy.
    let roots = events.iter().filter(|e| e.name == "schedule").count();
    assert_eq!(roots, 10, "5 members x 2 placements");
    telemetry::trace::check_well_nested(&events).expect("fleet trace is well-nested");
}

/// Streaming ingestion holds RSS flat: a 10x bigger fleet stream may
/// not cost 10x the memory. Compares the scheduler's peak RSS (VmHWM,
/// reported on stderr) between 100 K- and 1 M-job runs and allows only
/// a small constant-factor drift.
#[cfg(target_os = "linux")]
#[test]
fn fleet_memory_stays_flat_as_jobs_scale() {
    let peak_rss_kb = |fleet_jobs: &str| -> u64 {
        let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args([
                "fleet",
                "--seed",
                "7",
                "--quick",
                "--fleet-jobs",
                fleet_jobs,
                "--jobs",
                "2",
            ])
            .output()
            .expect("spawn experiments binary");
        assert!(
            out.status.success(),
            "fleet --fleet-jobs {fleet_jobs}: {out:?}"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        stderr
            .lines()
            .find_map(|l| l.split("peak RSS ").nth(1))
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|kb| kb.parse().ok())
            .unwrap_or_else(|| panic!("no peak RSS on stderr:\n{stderr}"))
    };
    let small = peak_rss_kb("100000");
    let large = peak_rss_kb("1000000");
    // Flat means bounded, not bit-equal: allocator noise moves peaks
    // by a few MB, but a materialized trace would cost ~50 MB/1M jobs.
    assert!(
        large < small * 2 + 16_384,
        "peak RSS grew from {small} kB (100K jobs) to {large} kB (1M jobs); streaming is broken"
    );
}

/// The node-model result cache must be output-invisible twice over:
/// with the cache enabled, `--jobs 1` and `--jobs 8` agree (hit/miss
/// order differs across schedules, but replayed snapshots record the
/// same values); and a cache-off run produces the same bytes as a
/// cache-on run.
#[test]
fn model_cache_is_output_invisible() {
    // fig5 and fig14 share node simulations, so a multi-target run
    // exercises real cross-target hits.
    let target = "fig5";
    let dir = tmp_dir("cache_on");
    let (on_serial_out, on_serial_jsonl) = run_with_jobs(target, "1", &dir);
    let (on_par_out, on_par_jsonl) = run_with_jobs(target, "8", &dir);
    assert_eq!(on_serial_out, on_par_out, "cache-on stdout jobs 1 vs 8");
    assert_eq!(on_serial_jsonl, on_par_jsonl, "cache-on JSONL jobs 1 vs 8");

    let dir_off = tmp_dir("cache_off");
    let (off_serial_out, off_serial_jsonl) =
        run_with_jobs_and(target, "1", &dir_off, &["--no-model-cache"]);
    let (off_par_out, off_par_jsonl) =
        run_with_jobs_and(target, "8", &dir_off, &["--no-model-cache"]);
    assert_eq!(off_serial_out, off_par_out, "cache-off stdout jobs 1 vs 8");
    assert_eq!(
        off_serial_jsonl, off_par_jsonl,
        "cache-off JSONL jobs 1 vs 8"
    );

    // The two stdouts differ only in the metrics-dir path they echo;
    // normalize before comparing across cache settings.
    let norm = |bytes: &[u8], dir: &std::path::Path| {
        String::from_utf8(bytes.to_vec())
            .expect("utf8 stdout")
            .replace(dir.to_str().unwrap(), "METRICS")
    };
    assert_eq!(
        norm(&on_serial_out, &dir),
        norm(&off_serial_out, &dir_off),
        "stdout differs between cache on and off"
    );
    assert_eq!(
        on_serial_jsonl, off_serial_jsonl,
        "metrics JSONL differs between cache on and off"
    );
}

/// Runs `target` with `--trace` and returns the Chrome trace bytes.
fn run_with_trace(target: &str, jobs: &str, dir: &std::path::Path) -> Vec<u8> {
    run_with_trace_and(target, jobs, dir, &[])
}

fn run_with_trace_and(target: &str, jobs: &str, dir: &std::path::Path, extra: &[&str]) -> Vec<u8> {
    let _ = std::fs::remove_dir_all(dir);
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            target,
            "--seed",
            "7",
            "--quick",
            "--ops",
            "1200",
            "--jobs",
            jobs,
            "--trace",
            dir.to_str().unwrap(),
        ])
        .args(extra)
        .output()
        .expect("spawn experiments binary");
    assert!(
        out.status.success(),
        "{target} --jobs {jobs} --trace failed: {out:?}"
    );
    let trace = std::fs::read(dir.join(format!("{target}.trace.json"))).expect("trace written");
    let _ = std::fs::remove_dir_all(dir);
    trace
}

/// Single-target traces are byte-identical across `--jobs`, parse as
/// Chrome trace-event JSON, and respect the span-nesting invariants.
/// Covers the three clock domains: fig5 (SimPs node sims + write
/// drains), fig12 (ECC detect→re-read chains + mode transitions) and
/// fig17 (SchedUs scheduler job spans), plus adaptive (epoch-aligned
/// governor.step/governor.retreat spans).
#[test]
fn single_target_traces_are_jobs_invariant_and_well_formed() {
    for target in ["fig5", "fig12", "fig17", "adaptive"] {
        let dir = tmp_dir(&format!("trace_{target}"));
        let serial = run_with_trace(target, "1", &dir);
        let parallel = run_with_trace(target, "8", &dir);
        assert_eq!(
            serial, parallel,
            "{target}: trace differs between --jobs 1 and --jobs 8"
        );
        let text = String::from_utf8(serial).expect("trace is utf8");
        let events = telemetry::trace::parse_chrome_trace(&text)
            .unwrap_or_else(|e| panic!("{target}: trace does not parse: {e}"));
        assert!(!events.is_empty(), "{target}: trace is empty");
        telemetry::trace::check_well_nested(&events).unwrap_or_else(|e| panic!("{target}: {e}"));
    }
}

/// Windowed execution (`--windows`) composes with every other
/// determinism contract: for a windowed node-simulation target,
/// stdout, the metrics JSONL, *and* the trace bytes agree between
/// `--jobs 1` and `--jobs 8`, and the windowed stdout/JSONL equal the
/// unwindowed run's bytes (windows may only change flush batching,
/// never observables).
#[test]
fn windowed_runs_are_jobs_invariant_and_match_unwindowed() {
    let target = "fig5";
    let windowed: &[&str] = &["--windows", "5"];
    let dir = tmp_dir("windowed");
    let (w_serial_out, w_serial_jsonl) = run_with_jobs_and(target, "1", &dir, windowed);
    let (w_par_out, w_par_jsonl) = run_with_jobs_and(target, "8", &dir, windowed);
    assert_eq!(w_serial_out, w_par_out, "windowed stdout jobs 1 vs 8");
    assert_eq!(w_serial_jsonl, w_par_jsonl, "windowed JSONL jobs 1 vs 8");

    let (plain_out, plain_jsonl) = run_with_jobs(target, "1", &dir);
    assert_eq!(
        w_serial_out, plain_out,
        "stdout differs between --windows 5 and unwindowed"
    );
    assert_eq!(
        w_serial_jsonl, plain_jsonl,
        "metrics JSONL differs between --windows 5 and unwindowed"
    );

    let trace_dir = tmp_dir("windowed_trace");
    let t_serial = run_with_trace_and(target, "1", &trace_dir, windowed);
    let t_parallel = run_with_trace_and(target, "8", &trace_dir, windowed);
    assert_eq!(t_serial, t_parallel, "windowed trace jobs 1 vs 8");
    let t_plain = run_with_trace(target, "1", &trace_dir);
    assert_eq!(
        t_serial, t_plain,
        "trace bytes differ between --windows 5 and unwindowed"
    );
}

/// The health plane's determinism contract is three-way: stdout, the
/// windowed series JSONL, and the incident ledger must all be
/// byte-identical between `--jobs 1` and `--jobs 8`, and `--windows`
/// (which only re-batches hot-loop telemetry flushes) must not move
/// a single byte of any of them. Both exports must also round-trip
/// through the telemetry parsers, and the headline — the CUSUM alarm
/// leading the governor's UE retreat — must be on stdout.
#[test]
fn health_series_and_incidents_are_jobs_invariant() {
    let dir = tmp_dir("health");
    let run = |jobs: &str, extra: &[&str]| -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let _ = std::fs::remove_dir_all(&dir);
        let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args([
                "health",
                "--seed",
                "7",
                "--quick",
                "--jobs",
                jobs,
                "--series",
                dir.to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .expect("spawn experiments binary");
        assert!(out.status.success(), "health --jobs {jobs} failed: {out:?}");
        let series = std::fs::read(dir.join("health.series.jsonl")).expect("series written");
        let incidents =
            std::fs::read(dir.join("health.incidents.jsonl")).expect("incidents written");
        let _ = std::fs::remove_dir_all(&dir);
        (out.stdout, series, incidents)
    };
    // The same dir for every run keeps the stdout `series:` summary
    // line (which echoes the path) directly comparable.
    let serial = run("1", &[]);
    let parallel = run("8", &[]);
    assert_eq!(serial.0, parallel.0, "health stdout jobs 1 vs 8");
    assert_eq!(serial.1, parallel.1, "health series JSONL jobs 1 vs 8");
    assert_eq!(serial.2, parallel.2, "health incident ledger jobs 1 vs 8");

    let windowed = run("1", &["--windows", "5"]);
    assert_eq!(serial.0, windowed.0, "health stdout --windows 5");
    assert_eq!(serial.1, windowed.1, "health series JSONL --windows 5");
    assert_eq!(serial.2, windowed.2, "health incident ledger --windows 5");

    let stdout = String::from_utf8(serial.0).expect("stdout is utf8");
    assert!(
        stdout.contains("before the governor's UE retreat"),
        "lead-time headline missing:\n{stdout}"
    );
    let text = String::from_utf8(serial.1).expect("series is utf8");
    let snap = telemetry::series::parse_series_jsonl(&text).expect("series export parses");
    assert!(
        snap.get("health.slow-degradation.ce").is_some(),
        "slow-degradation CE series missing from the export"
    );
    let text = String::from_utf8(serial.2).expect("ledger is utf8");
    let ledger = telemetry::monitor::parse_incidents_jsonl(&text).expect("ledger parses");
    assert!(!ledger.is_empty(), "health must open at least one incident");
}

/// Odd worker counts and a second pass over cheap whole-table targets:
/// task-level parallelism must merge per-target registries in
/// canonical order no matter which worker finishes first.
#[test]
fn multi_target_merge_is_jobs_invariant() {
    for target in ["table1", "fig1"] {
        let dir = tmp_dir(target);
        let (a_out, a_jsonl) = run_with_jobs(target, "1", &dir);
        let (b_out, b_jsonl) = run_with_jobs(target, "3", &dir);
        assert_eq!(a_out, b_out, "{target} stdout");
        assert_eq!(a_jsonl, b_jsonl, "{target} metrics");
    }
}
