//! End-to-end tests of the experiments binary: help/list/diagnostic
//! exit codes and the `--metrics` contracts — deterministic JSONL for
//! a fixed seed, and fig12 exports carrying controller latency
//! histograms, governor counters, and ECC tallies.
//!
//! Simulation sizes are shrunk (`--quick` plus a small `--ops`) so the
//! suite stays fast in the unoptimized test profile; determinism and
//! content are invariant to the op count.

use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("spawn experiments binary")
}

fn tmp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hdmr_cli_{name}_{}", std::process::id()))
}

#[test]
fn help_exits_zero_and_documents_the_flags() {
    let out = run(&["--help"]);
    assert!(out.status.success(), "--help must exit 0");
    let text = String::from_utf8_lossy(&out.stdout);
    for flag in ["--seed", "--ops", "--quick", "--csv", "--metrics", "--list"] {
        assert!(text.contains(flag), "help must mention {flag}");
    }
    assert!(run(&["-h"]).status.success(), "-h is an alias");
}

#[test]
fn list_prints_every_target() {
    let out = run(&["--list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let listed: Vec<&str> = text.lines().collect();
    for target in ["table1", "fig5", "fig12", "fig17", "extras"] {
        assert!(listed.contains(&target), "--list must include {target}");
    }
}

#[test]
fn unknown_target_fails_with_the_valid_list() {
    let out = run(&["fig99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown target 'fig99'"));
    assert!(err.contains("fig12"), "diagnostic lists valid targets");
}

#[test]
fn unknown_flag_points_at_help() {
    let out = run(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--frobnicate") && err.contains("--help"));
}

#[test]
fn fig5_metrics_snapshot_is_deterministic() {
    let dirs = [tmp_dir("det_a"), tmp_dir("det_b")];
    let mut snapshots = Vec::new();
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
        let out = run(&[
            "fig5",
            "--seed",
            "42",
            "--quick",
            "--ops",
            "1200",
            "--metrics",
            dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "fig5 run failed: {out:?}");
        snapshots.push(std::fs::read(dir.join("fig5.metrics.jsonl")).expect("metrics written"));
        assert!(dir.join("manifest.json").exists());
        let _ = std::fs::remove_dir_all(dir);
    }
    assert!(!snapshots[0].is_empty(), "snapshot must carry metrics");
    assert_eq!(
        snapshots[0], snapshots[1],
        "same seed must produce byte-identical metric snapshots"
    );
}

#[test]
fn fig12_metrics_carry_controller_governor_and_ecc_series() {
    let dir = tmp_dir("fig12");
    let _ = std::fs::remove_dir_all(&dir);
    let out = run(&[
        "fig12",
        "--quick",
        "--ops",
        "800",
        "--metrics",
        dir.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "fig12 run failed: {out:?}");
    let jsonl = std::fs::read_to_string(dir.join("fig12.metrics.jsonl")).unwrap();

    // Controller read-latency histograms from the timing simulator.
    assert!(jsonl
        .lines()
        .any(|l| l.contains("controller.read_latency_ps") && l.contains("\"type\":\"histogram\"")));
    // Governor / mode-switch counters and ECC tallies from the
    // protocol engine exercise.
    for series in [
        "\"name\":\"protocol.mode_switches\"",
        "\"name\":\"protocol.governor.errors\"",
        "\"name\":\"protocol.ecc.ce\"",
        "\"name\":\"protocol.ecc.ue\"",
        "\"name\":\"protocol.ecc.sdc\"",
    ] {
        assert!(jsonl.contains(series), "fig12 export missing {series}");
    }
    // Injected errors were all detected and recovered: CE > 0, and the
    // deterministic scenario produced no UE/SDC.
    let counter = |name: &str| -> u64 {
        jsonl
            .lines()
            .find(|l| l.contains(&format!("\"name\":\"{name}\"")))
            .and_then(|l| l.rsplit("\"value\":").next())
            .and_then(|v| v.trim_end_matches('}').trim().parse().ok())
            .unwrap_or(0)
    };
    assert!(counter("protocol.ecc.ce") > 0);
    assert_eq!(counter("protocol.ecc.ue"), 0);
    assert_eq!(counter("protocol.ecc.sdc"), 0);

    // The manifest is self-describing.
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    for field in [
        "\"target\": \"fig12\"",
        "\"ops_per_core\": \"800\"",
        "\"quick\": \"true\"",
        "\"metric_count\":",
    ] {
        assert!(manifest.contains(field), "manifest missing {field}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
